"""Shared configuration for the benchmark harness.

Every figure of the paper has one benchmark module that regenerates its
table/series at a smoke-test scale (``ExperimentConfig.tiny``) and prints
the rows.  For the EXPERIMENTS.md numbers the same experiments are run at
the ``small`` scale via ``examples/reproduce_paper.py``.
"""

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment scale used by the figure benchmarks."""
    return ExperimentConfig.tiny()


@pytest.fixture(scope="session")
def bench_anchors() -> dict:
    """Fixed design anchors so figure benchmarks need not rerun Fig. 5."""
    return {"q1": 90.0, "q2": 60.0, "q_min": 8.0}


def run_once(benchmark, function, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
