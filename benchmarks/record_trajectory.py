"""Append a pytest-benchmark JSON run to a machine-readable perf trajectory.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_runtime.py \
        -q --benchmark-json=bench.json
    python benchmarks/record_trajectory.py bench.json \
        --label PR3 --trajectory BENCH_PR3.json

Each invocation appends one entry — label, timestamp, machine shape and
the per-benchmark mean/min/stddev plus any ``extra_info`` the benchmark
recorded (worker counts, measured speedups) — to the trajectory file, a
JSON list that accumulates across PRs so perf history stays diffable
and machine-readable.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path


def summarize(report: dict) -> dict:
    """The per-benchmark summary stored in a trajectory entry."""
    benchmarks = {}
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        summary = {
            "mean_seconds": stats.get("mean"),
            "min_seconds": stats.get("min"),
            "stddev_seconds": stats.get("stddev"),
            "rounds": stats.get("rounds"),
        }
        extra = bench.get("extra_info") or {}
        if extra:
            summary["extra_info"] = extra
        benchmarks[bench["name"]] = summary
    return benchmarks


def usable_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware).

    ``machine_info`` reports the physical count, which overstates what a
    containerised runner can use; the affinity mask is what the pools
    see, so it is what makes a 1-CPU container entry distinguishable
    from a real multi-core run.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_entry(report: dict, label: str, backend: str = None) -> dict:
    machine = report.get("machine_info") or {}
    import numpy as np

    return {
        "label": label,
        "recorded": report.get("datetime"),
        # Stamped on every entry so trajectory consumers can filter
        # 1-CPU container noise without digging into machine blobs.
        "cpu_count": usable_cpus(),
        "backend": backend or os.environ.get("REPRO_BACKEND") or "auto",
        "dtype": np.dtype(float).name,
        "machine": {
            "node": machine.get("node"),
            "cpu_count": machine.get("cpu", {}).get("count")
            if isinstance(machine.get("cpu"), dict)
            else os.cpu_count(),
            "python": machine.get("python_version"),
        },
        "benchmarks": summarize(report),
    }


def append_entry(trajectory_path: Path, entry: dict) -> list:
    if trajectory_path.exists():
        history = json.loads(trajectory_path.read_text())
        if not isinstance(history, list):
            raise SystemExit(
                f"{trajectory_path} is not a JSON list; refusing to overwrite"
            )
    else:
        history = []
    history.append(entry)
    trajectory_path.write_text(json.dumps(history, indent=2) + "\n")
    return history


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "report", type=Path,
        help="pytest-benchmark --benchmark-json output file",
    )
    parser.add_argument(
        "--label", required=True,
        help="trajectory entry label, e.g. PR3 or PR3-ci",
    )
    parser.add_argument(
        "--trajectory", type=Path, default=Path("BENCH_PR3.json"),
        help="trajectory file to append to (created if missing)",
    )
    parser.add_argument(
        "--backend", default=None,
        help="backend the run used (default: $REPRO_BACKEND or 'auto')",
    )
    arguments = parser.parse_args()
    report = json.loads(arguments.report.read_text())
    entry = build_entry(report, arguments.label, backend=arguments.backend)
    history = append_entry(arguments.trajectory, entry)
    print(
        f"appended entry {arguments.label!r} "
        f"({len(entry['benchmarks'])} benchmarks) to {arguments.trajectory} "
        f"({len(history)} entries total)"
    )


if __name__ == "__main__":
    main()
