"""Backend benchmarks: per-transport dispatch overhead.

The ``ExecutorBackend`` refactor promises that backends are pure
transport — same results, different dispatch cost.  These benchmarks
measure that cost for a grid of trivial tasks so the trajectory records
what each transport charges per sweep: ``serial`` (in-process floor),
``forked`` (pool spawn every sweep), and ``persistent`` (pool spawned
once, then warm reuse).  The ``socket`` backend needs external daemons
and is exercised by ``tests/chaos/test_chaos_socket.py`` instead.
"""

import time

import pytest

from conftest import run_once

from repro.runtime.backends import get_backend, shutdown_backends
from repro.runtime.executor import fork_available, map_tasks

#: Enough tasks that per-task dispatch dominates, small enough that the
#: task body is negligible.
TASK_COUNT = 64
POOL_WORKERS = 2

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _square(value: int) -> int:
    return value * value


@pytest.fixture()
def reference():
    """Serial answer every backend must reproduce exactly."""
    return [index * index for index in range(TASK_COUNT)]


@pytest.fixture()
def fresh_backends():
    """Isolate pool singletons so warm/cold measurements are honest."""
    shutdown_backends()
    yield
    shutdown_backends()


def test_dispatch_serial(benchmark, reference):
    """In-process floor: no pickling, no processes, no supervision."""
    results = benchmark(
        map_tasks, _square, range(TASK_COUNT), workers=POOL_WORKERS,
        backend="serial",
    )
    assert results == reference
    benchmark.extra_info["tasks"] = TASK_COUNT


@needs_fork
def test_dispatch_forked(benchmark, reference, fresh_backends):
    """Legacy path: a fresh forked pool is spawned for every sweep."""
    results = run_once(
        benchmark, map_tasks, _square, range(TASK_COUNT),
        workers=POOL_WORKERS, backend="forked",
    )
    assert results == reference
    benchmark.extra_info["tasks"] = TASK_COUNT
    benchmark.extra_info["workers"] = POOL_WORKERS


@needs_fork
def test_dispatch_persistent_warm(benchmark, reference, fresh_backends):
    """Warm pool reuse: the fork tax is paid once, outside the timing."""
    warmup = map_tasks(
        _square, range(TASK_COUNT), workers=POOL_WORKERS,
        backend="persistent",
    )
    assert warmup == reference
    results = benchmark.pedantic(
        map_tasks, args=(_square, range(TASK_COUNT)),
        kwargs={"workers": POOL_WORKERS, "backend": "persistent"},
        rounds=5, iterations=1, warmup_rounds=0,
    )
    assert results == reference
    benchmark.extra_info["tasks"] = TASK_COUNT
    benchmark.extra_info["workers"] = POOL_WORKERS


@needs_fork
def test_persistent_cold_vs_warm(benchmark, reference, fresh_backends):
    """Report how much of a sweep the pool spawn itself costs."""
    started = time.perf_counter()
    cold = map_tasks(
        _square, range(TASK_COUNT), workers=POOL_WORKERS,
        backend="persistent",
    )
    cold_seconds = time.perf_counter() - started
    assert cold == reference

    warm = run_once(
        benchmark, map_tasks, _square, range(TASK_COUNT),
        workers=POOL_WORKERS, backend="persistent",
    )
    assert warm == reference

    backend = get_backend("persistent")
    assert backend._pool is not None
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["tasks"] = TASK_COUNT
    benchmark.extra_info["workers"] = POOL_WORKERS
    print(f"\npersistent backend: cold sweep {cold_seconds * 1e3:.1f} ms")


# ----------------------------------------------------------------------
# Array-result shipping: shared-memory segments vs pickle-over-pipe
# ----------------------------------------------------------------------

#: Per-task result: 512 KiB float64 — the decoded-stack shape class
#: the shm layer exists for (structure small, flat array data large).
ARRAY_TASKS = 16
ARRAY_SHAPE = (256, 256)


def _array_result(scale: int):
    import numpy as np

    return np.full(ARRAY_SHAPE, float(scale))


def _assert_arrays(results):
    import numpy as np

    assert len(results) == ARRAY_TASKS
    for scale, array in enumerate(results):
        assert array.shape == ARRAY_SHAPE
        assert array[0, 0] == float(scale)
        assert isinstance(array, np.ndarray)


@needs_fork
def test_array_results_warm_pool_shm(benchmark, fresh_backends, monkeypatch):
    """Warm persistent pool, results via shared-memory segments."""
    from repro.runtime import shm

    monkeypatch.delenv(shm.ENV_VAR, raising=False)
    warmup = map_tasks(
        _array_result, range(ARRAY_TASKS), workers=POOL_WORKERS,
        backend="persistent",
    )
    _assert_arrays(warmup)
    results = benchmark.pedantic(
        map_tasks, args=(_array_result, range(ARRAY_TASKS)),
        kwargs={"workers": POOL_WORKERS, "backend": "persistent"},
        rounds=9, iterations=1, warmup_rounds=1,
    )
    _assert_arrays(results)
    assert shm.list_segments(f"{shm.run_prefix()}-r-") == []  # no leaks
    benchmark.extra_info["tasks"] = ARRAY_TASKS
    benchmark.extra_info["bytes_per_result"] = 8 * ARRAY_SHAPE[0] * ARRAY_SHAPE[1]
    benchmark.extra_info["transport"] = "shm"


@needs_fork
def test_array_results_warm_pool_pickle(benchmark, fresh_backends, monkeypatch):
    """Same sweep with ``REPRO_SHM=0``: every byte pickles over the pipe."""
    from repro.runtime import shm

    monkeypatch.setenv(shm.ENV_VAR, "0")
    warmup = map_tasks(
        _array_result, range(ARRAY_TASKS), workers=POOL_WORKERS,
        backend="persistent",
    )
    _assert_arrays(warmup)
    results = benchmark.pedantic(
        map_tasks, args=(_array_result, range(ARRAY_TASKS)),
        kwargs={"workers": POOL_WORKERS, "backend": "persistent"},
        rounds=9, iterations=1, warmup_rounds=1,
    )
    _assert_arrays(results)
    benchmark.extra_info["tasks"] = ARRAY_TASKS
    benchmark.extra_info["bytes_per_result"] = 8 * ARRAY_SHAPE[0] * ARRAY_SHAPE[1]
    benchmark.extra_info["transport"] = "pickle"
