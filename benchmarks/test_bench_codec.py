"""Microbenchmarks of the JPEG codec substrate and the table-design path.

Not tied to a specific figure; these quantify the cost of the building
blocks every experiment relies on (per-image compression, Algorithm-1
statistics, quantization-table design).
"""

import numpy as np
import pytest

from repro.analysis.frequency import analyze_images
from repro.core import DeepNJpegTableDesigner
from repro.data import FreqNetConfig, generate_freqnet
from repro.jpeg import GrayscaleJpegCodec, QuantizationTable


@pytest.fixture(scope="module")
def sample_images():
    dataset = generate_freqnet(FreqNetConfig(images_per_class=4, seed=2))
    return dataset.images


def test_grayscale_compress_single_image(benchmark, sample_images):
    codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
    image = sample_images[0]
    result = benchmark(codec.compress, image)
    assert result.total_bytes > 0


def test_grayscale_encode_only(benchmark, sample_images):
    codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
    image = sample_images[0]
    encoded = benchmark(codec.encode, image)
    assert len(encoded.data) > 0


def test_grayscale_decode_only(benchmark, sample_images):
    codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
    encoded = codec.encode(sample_images[0])
    decoded = benchmark(codec.decode, encoded)
    assert decoded.shape == sample_images[0].shape


def test_grayscale_compress_batch(benchmark, sample_images):
    """Dataset-level compression: one coder shared across all images."""
    codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
    results = benchmark(codec.compress_batch, sample_images)
    assert len(results) == sample_images.shape[0]
    assert all(result.total_bytes > 0 for result in results)


def test_dataset_compression_with_table(benchmark, sample_images):
    """End-to-end dataset API (`compress_batch` + statistics)."""
    from repro.core.baselines import compress_batch

    table = QuantizationTable.standard_luminance(50)
    results = benchmark(compress_batch, sample_images, table)
    assert len(results) == sample_images.shape[0]


def test_frequency_analysis(benchmark, sample_images):
    statistics = benchmark(analyze_images, sample_images)
    assert statistics.std.shape == (8, 8)


def test_table_design(benchmark, sample_images):
    statistics = analyze_images(sample_images)
    designer = DeepNJpegTableDesigner()
    result = benchmark(designer.design, statistics)
    assert result.table.values.shape == (8, 8)


def test_block_dct_throughput(benchmark, rng=np.random.default_rng(0)):
    from repro.jpeg.dct import block_dct2d

    blocks = rng.normal(size=(1024, 8, 8))
    coefficients = benchmark(block_dct2d, blocks)
    assert coefficients.shape == blocks.shape
