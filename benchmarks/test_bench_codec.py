"""Microbenchmarks of the JPEG codec substrate and the table-design path.

Not tied to a specific figure; these quantify the cost of the building
blocks every experiment relies on (per-image compression, Algorithm-1
statistics, quantization-table design).
"""

import numpy as np
import pytest

from repro.analysis.frequency import analyze_images
from repro.core import DeepNJpegTableDesigner
from repro.data import FreqNetConfig, generate_freqnet
from repro.jpeg import GrayscaleJpegCodec, QuantizationTable


@pytest.fixture(scope="module")
def sample_images():
    dataset = generate_freqnet(FreqNetConfig(images_per_class=4, seed=2))
    return dataset.images


def test_grayscale_compress_single_image(benchmark, sample_images):
    codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
    image = sample_images[0]
    result = benchmark(codec.compress, image)
    assert result.total_bytes > 0


def test_grayscale_encode_only(benchmark, sample_images):
    codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
    image = sample_images[0]
    encoded = benchmark(codec.encode, image)
    assert len(encoded.data) > 0


def test_grayscale_decode_only(benchmark, sample_images):
    codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
    encoded = codec.encode(sample_images[0])
    decoded = benchmark(codec.decode, encoded)
    assert decoded.shape == sample_images[0].shape


def test_grayscale_compress_batch(benchmark, sample_images):
    """Dataset-level compression: one coder shared across all images."""
    codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
    results = benchmark(codec.compress_batch, sample_images)
    assert len(results) == sample_images.shape[0]
    assert all(result.total_bytes > 0 for result in results)


def test_dataset_compression_with_table(benchmark, sample_images):
    """End-to-end dataset API (`compress_batch` + statistics)."""
    from repro.core.baselines import compress_batch

    table = QuantizationTable.standard_luminance(50)
    results = benchmark(compress_batch, sample_images, table)
    assert len(results) == sample_images.shape[0]


def test_frequency_analysis(benchmark, sample_images):
    statistics = benchmark(analyze_images, sample_images)
    assert statistics.std.shape == (8, 8)


def test_table_design(benchmark, sample_images):
    statistics = analyze_images(sample_images)
    designer = DeepNJpegTableDesigner()
    result = benchmark(designer.design, statistics)
    assert result.table.values.shape == (8, 8)


def test_block_dct_throughput(benchmark, rng=np.random.default_rng(0)):
    from repro.jpeg.dct import block_dct2d

    blocks = rng.normal(size=(1024, 8, 8))
    coefficients = benchmark(block_dct2d, blocks)
    assert coefficients.shape == blocks.shape


# ----------------------------------------------------------------------
# Entropy decode: scalar walk vs the vectorized FSM (PR 8 tentpole)
# ----------------------------------------------------------------------

#: Dataset-scale stream count: large enough that the FSM's fixed NumPy
#: dispatch overhead amortises (the crossover sits near 20 streams).
DECODE_STREAMS = 512


@pytest.fixture(scope="module")
def entropy_streams():
    """Encoded scan data for ``DECODE_STREAMS`` small smooth images."""
    rng = np.random.default_rng(5)
    codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(60))
    coder = codec._standard_coder()
    y, x = np.mgrid[0:24, 0:24]
    datas, counts = [], []
    for _ in range(DECODE_STREAMS):
        image = (
            96.0
            + 80.0 * np.sin(x / rng.uniform(2.0, 9.0))
            + 60.0 * np.cos(y / rng.uniform(2.0, 9.0))
            + rng.normal(0.0, 6.0, size=(24, 24))
        ).clip(0.0, 255.0)
        zz_blocks, _grid = coder.quantized_blocks(image)
        datas.append(coder.encode_quantized(zz_blocks))
        counts.append(zz_blocks.shape[0])
    return coder, datas, counts


def test_entropy_decode_walk(benchmark, entropy_streams):
    """Reference scalar walk, stream by stream (the pre-FSM decoder)."""
    coder, datas, counts = entropy_streams

    def walk_all():
        return [
            coder.decode_to_zigzag_walk(data, count)
            for data, count in zip(datas, counts)
        ]

    results = benchmark(walk_all)
    assert len(results) == DECODE_STREAMS
    benchmark.extra_info["streams"] = DECODE_STREAMS


def test_entropy_decode_fsm_batch(benchmark, entropy_streams):
    """Vectorized FSM batch decode of the same streams (>= 3x the walk)."""
    coder, datas, counts = entropy_streams
    results = benchmark(coder.decode_to_zigzag_batch, datas, counts)
    assert len(results) == DECODE_STREAMS
    reference = coder.decode_to_zigzag_walk(datas[0], counts[0])
    np.testing.assert_array_equal(results[0], reference)
    benchmark.extra_info["streams"] = DECODE_STREAMS


def test_peek_words(benchmark):
    """The destuff + 64-bit peek-word precompute behind every decode."""
    from repro.jpeg.bitstream import peek_words

    rng = np.random.default_rng(9)
    payload = rng.integers(0, 256, size=64 * 1024, dtype=np.uint8).tobytes()
    words, bit_count = benchmark(peek_words, payload)
    assert isinstance(words, np.ndarray) and words.dtype == np.uint64
    assert bit_count > 0
