"""Microbenchmarks of the planned inference engine (``repro.nn.engine``).

Three axes, each compared against the dynamic layer-by-layer reference
path and recorded with a measured ``speedup`` in ``extra_info``:

- **single-image latency** — the per-request overhead the plan
  eliminates (no per-call allocation, no layer-list walk);
- **large-batch throughput** — GoogLeNet, whose dynamic path spends
  heavily on per-layer temporaries even at batch scale;
- **thread-count sweep** — planned predict under pinned BLAS thread
  counts (only meaningful on multi-core runners; recorded everywhere).

The speedup floors assert the ISSUE's acceptance numbers (planned
float32 ≥ 1.5× at single-image latency, ≥ 1.3× at large-batch
throughput).  ``REPRO_ENGINE_SPEEDUP_FLOOR`` scales both: shared CI
runners set it to 0 (record-only) because noisy vCPUs cannot give a
stable timing signal.
"""

import os
import time

import numpy as np
import pytest

from repro.nn import engine, models

#: Demanded planned-vs-dynamic speedups; 0 disables the assertions.
ENGINE_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_ENGINE_SPEEDUP_FLOOR", "1")
)
SINGLE_IMAGE_FLOOR = 1.5 * ENGINE_SPEEDUP_FLOOR
LARGE_BATCH_FLOOR = 1.3 * ENGINE_SPEEDUP_FLOOR


def _model(name="AlexNet"):
    return models.build_model(
        name, num_classes=8, input_shape=(1, 32, 32), seed=0, dtype="float32"
    )


def _images(count, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, 1, 32, 32)).astype(np.float32)


def _time(function, rounds):
    started = time.perf_counter()
    for _ in range(rounds):
        function()
    return (time.perf_counter() - started) / rounds


def test_single_image_latency(benchmark):
    """Planned single-image predict vs the dynamic path (AlexNet)."""
    model = _model()
    image = _images(1)
    engine.predict_proba(model, image)  # compile + warm the plan
    model.predict_proba_dynamic(image)  # warm the dynamic scratch caches

    dynamic_seconds = _time(
        lambda: model.predict_proba_dynamic(image), rounds=30
    )
    planned = benchmark(engine.predict_proba, model, image)
    assert planned.shape == (1, 8)

    planned_seconds = _time(
        lambda: engine.predict_proba(model, image), rounds=30
    )
    speedup = dynamic_seconds / planned_seconds
    benchmark.extra_info["dynamic_seconds"] = round(dynamic_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\nsingle-image: dynamic {dynamic_seconds * 1e3:.3f} ms, "
        f"planned {planned_seconds * 1e3:.3f} ms ({speedup:.2f}x)"
    )
    if SINGLE_IMAGE_FLOOR > 0:
        assert speedup >= SINGLE_IMAGE_FLOOR


def test_large_batch_throughput(benchmark):
    """Planned batch-256 predict vs the dynamic path (GoogLeNet)."""
    model = _model("GoogLeNet")
    images = _images(256)
    engine.predict_proba(model, images, batch_size=64)
    model.predict_proba_dynamic(images, batch_size=64)

    dynamic_seconds = _time(
        lambda: model.predict_proba_dynamic(images, batch_size=64), rounds=2
    )
    planned = benchmark.pedantic(
        engine.predict_proba, args=(model, images),
        kwargs={"batch_size": 64}, rounds=3, iterations=1, warmup_rounds=0,
    )
    assert planned.shape == (256, 8)

    planned_seconds = _time(
        lambda: engine.predict_proba(model, images, batch_size=64), rounds=2
    )
    speedup = dynamic_seconds / planned_seconds
    benchmark.extra_info["dynamic_seconds"] = round(dynamic_seconds, 6)
    benchmark.extra_info["images_per_second"] = round(
        256 / planned_seconds, 1
    )
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\nbatch-256: dynamic {dynamic_seconds * 1e3:.1f} ms, "
        f"planned {planned_seconds * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    if LARGE_BATCH_FLOOR > 0:
        assert speedup >= LARGE_BATCH_FLOOR


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_thread_count_sweep(benchmark, threads):
    """Planned batch predict under a pinned BLAS thread count.

    On a 1-CPU container every row measures the same thing (the pin is
    a no-op past the affinity mask); the sweep exists for the
    multi-core trajectory, where per-thread-count rows make BLAS
    scaling visible in the benchmark history.
    """
    usable = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    model = _model()
    model.blas_threads = threads
    images = _images(128)
    engine.predict_proba(model, images, batch_size=64)

    result = benchmark.pedantic(
        engine.predict_proba, args=(model, images),
        kwargs={"batch_size": 64}, rounds=3, iterations=1, warmup_rounds=0,
    )
    assert result.shape == (128, 8)
    benchmark.extra_info["blas_threads"] = threads
    benchmark.extra_info["cpus"] = usable
    control = engine._resolve_blas_control()
    benchmark.extra_info["blas_control"] = (
        control[0] if control is not None else "none"
    )


def test_float16_storage_batch(benchmark):
    """Batch predict with half-precision activation storage (VGG-16)."""
    model = _model("VGG-16")
    images = _images(128)
    reference = engine.predict_proba(model, images, batch_size=64)
    model.storage_dtype = "float16"
    engine.clear_plan_cache(model)
    engine.predict_proba(model, images, batch_size=64)

    half = benchmark.pedantic(
        engine.predict_proba, args=(model, images),
        kwargs={"batch_size": 64}, rounds=3, iterations=1, warmup_rounds=0,
    )
    np.testing.assert_allclose(half, reference, atol=5e-3)
    plan = engine.get_plan(
        model, (64, 1, 32, 32), np.dtype(np.float16)
    )
    full_plan = engine.get_plan(model, (64, 1, 32, 32))
    benchmark.extra_info["arena_bytes_float16"] = plan.arena_nbytes
    benchmark.extra_info["arena_bytes_float32"] = full_plan.arena_nbytes
