"""Fig. 2 benchmark: accuracy vs JPEG compression ratio (CASE 1 / CASE 2).

Paper reference: both cases lose accuracy as the quality factor falls from
100 to 20 (CASE 1 by ~9%, CASE 2 by ~5% on ImageNet/AlexNet), and CASE 2
degrades less than CASE 1 at the highest compression.
"""

from conftest import run_once

from repro.experiments import fig2_motivation


def test_fig2_accuracy_vs_compression(benchmark, bench_config):
    result = run_once(benchmark, fig2_motivation.run, bench_config)
    print("\n" + result.format_table())

    entries = {entry.quality: entry for entry in result.entries}
    # The compression ratio rises monotonically as quality drops.
    assert entries[100].compression_ratio == 1.0
    assert entries[20].compression_ratio > entries[50].compression_ratio > 1.0
    # Aggressive HVS compression costs CASE-1 accuracy (the paper's ~9% drop).
    assert entries[20].case1_accuracy <= entries[100].case1_accuracy
    # The per-epoch curves (Fig. 2b) exist for every quality factor.
    for curve in result.epoch_curves().values():
        assert len(curve) == bench_config.epochs
