"""Fig. 3 benchmark: removing high-frequency components flips predictions.

Paper reference: zeroing the six highest-frequency DCT components of the
"junco" image leaves it visually indistinguishable (high PSNR) but changes
the DNN prediction to "robin".
"""

from conftest import run_once

from repro.experiments import fig3_feature_removal


def test_fig3_feature_removal(benchmark, bench_config):
    result = run_once(benchmark, fig3_feature_removal.run, bench_config)
    print("\n" + result.format_table())

    baseline = result.entries[0]
    removed_six = next(
        entry for entry in result.entries if entry.removed_components == 6
    )
    # The degraded images stay visually close to the originals...
    assert removed_six.mean_psnr > 35.0
    # ...but the classes whose identity lives in high frequencies lose
    # accuracy, and some predictions flip — the junco-to-robin effect.
    assert (
        removed_six.high_frequency_class_accuracy
        <= baseline.high_frequency_class_accuracy
    )
    assert removed_six.accuracy <= baseline.accuracy
