"""Fig. 5 benchmark: accuracy vs quantization step per frequency group.

Paper reference: with the magnitude-based segmentation the MF and HF groups
tolerate larger quantization steps than with the position-based one, and
the LF group is the most sensitive (accuracy starts dropping at Qmin = 5 on
ImageNet).
"""

from conftest import run_once

from repro.experiments import fig5_band_sensitivity


def test_fig5_band_sensitivity(benchmark, bench_config):
    result = run_once(benchmark, fig5_band_sensitivity.run, bench_config)
    print("\n" + result.format_table())
    anchors = result.derived_anchors()
    print(f"\nDerived anchors: {anchors}")

    # Anchors are ordered as the mapping requires.
    assert anchors["q_min"] <= anchors["q2"] <= anchors["q1"]
    # The magnitude-based grouping never tolerates a *smaller* HF step than
    # the position-based grouping (the paper's headline for this figure).
    magnitude_hf = result.largest_neutral_step("magnitude", "HF")
    position_hf = result.largest_neutral_step("position", "HF")
    assert magnitude_hf >= position_hf
    # Every curve starts at normalized accuracy 1 at step 1.
    for method in ("magnitude", "position"):
        for group in ("LF", "MF", "HF"):
            first = result.entries_for(method, group)[0]
            assert first.step == 1.0
            assert first.normalized_accuracy >= 0.99
