"""Fig. 6 benchmark: LF slope k3 vs compression rate and accuracy.

Paper reference: a smaller k3 gives a better compression rate at a slight
accuracy cost; the paper selects k3 = 3 to maximise compression while
keeping the original accuracy.
"""

from conftest import run_once

from repro.experiments import fig6_k3_sweep


def test_fig6_k3_sweep(benchmark, bench_config, bench_anchors):
    result = run_once(
        benchmark, fig6_k3_sweep.run, bench_config, anchors=bench_anchors
    )
    print("\n" + result.format_table())
    print(f"\nSelected k3 = {result.best_k3():g}")

    compression_by_k3 = {
        entry.k3: entry.compression_ratio for entry in result.entries
    }
    # Smaller k3 -> larger LF steps -> at least as good a compression rate.
    assert compression_by_k3[1.0] >= compression_by_k3[5.0]
    # Every configuration compresses better than the QF=100 reference.
    assert all(entry.compression_ratio > 1.0 for entry in result.entries)
    # The selected k3 is one of the swept values.
    assert result.best_k3() in compression_by_k3
