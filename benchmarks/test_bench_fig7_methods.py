"""Fig. 7 benchmark: compression rate and accuracy of all candidates.

Paper reference: RM-HF gains little compression (1.1-1.3x) and loses
accuracy; SAME-Q reaches 1.5-2x with increasing accuracy loss; DeepN-JPEG
delivers the best compression (~3.5x on ImageNet) while keeping the
original accuracy.
"""

from conftest import run_once

from repro.experiments import fig7_methods
from repro.experiments.design_flow import derive_design_config


def test_fig7_methods_comparison(benchmark, bench_config, bench_anchors):
    deepn_config = derive_design_config(bench_config, anchors=bench_anchors)
    result = run_once(
        benchmark, fig7_methods.run, bench_config, deepn_config=deepn_config
    )
    print("\n" + result.format_table())

    original = result.original_entry()
    deepn = result.deepn_entry()
    # The Original dataset is the CR = 1 reference.
    assert original.compression_ratio == 1.0
    # DeepN-JPEG compresses best among all candidates.
    assert deepn.compression_ratio == max(
        entry.compression_ratio for entry in result.entries
    )
    # RM-HF buys very little compression (the paper reports 1.1-1.3x).
    for entry in result.entries:
        if entry.method.startswith("RM-HF"):
            assert entry.compression_ratio < 1.4
    # SAME-Q sits between RM-HF and DeepN-JPEG.
    for entry in result.entries:
        if entry.method.startswith("SAME-Q"):
            assert 1.0 < entry.compression_ratio < deepn.compression_ratio
