"""Fig. 8 benchmark: generality of DeepN-JPEG across DNN architectures.

Paper reference: DeepN-JPEG maintains the original accuracy for GoogLeNet,
VGG-16, ResNet-34 and ResNet-50 while offering a much higher compression
rate than the QF-scaled JPEG needed to reach similar sizes.

At benchmark (tiny) scale only two architecture families are trained to
keep the wall-clock time reasonable; the full sweep is produced by
``examples/reproduce_paper.py``.
"""

from conftest import run_once

from repro.experiments import fig8_generality
from repro.experiments.design_flow import derive_design_config

BENCH_MODELS = ("GoogLeNet", "ResNet-34")


def test_fig8_generality(benchmark, bench_config, bench_anchors):
    deepn_config = derive_design_config(bench_config, anchors=bench_anchors)
    result = run_once(
        benchmark,
        fig8_generality.run,
        bench_config,
        model_names=BENCH_MODELS,
        deepn_config=deepn_config,
        epochs=max(4, bench_config.epochs // 2),
    )
    print("\n" + result.format_table())

    assert result.models() == list(BENCH_MODELS)
    for model in BENCH_MODELS:
        # Every method was evaluated for every model.
        for method in ("Original", "DeepN-JPEG", "JPEG (QF=80)", "JPEG (QF=50)"):
            assert 0.0 <= result.accuracy(model, method) <= 1.0
    # DeepN-JPEG's compression rate exceeds both QF-scaled baselines.
    deepn_cr = [e.compression_ratio for e in result.entries
                if e.method == "DeepN-JPEG"][0]
    qf50_cr = [e.compression_ratio for e in result.entries
               if e.method == "JPEG (QF=50)"][0]
    assert deepn_cr > qf50_cr
