"""Fig. 9 benchmark: normalized data-offloading power of the candidates.

Paper reference: DeepN-JPEG consumes only ~30% of the original dataset's
offloading power, roughly 2x better than RM-HF3 and 3x better than SAME-Q4.
"""

from conftest import run_once

from repro.experiments import fig9_power
from repro.experiments.design_flow import derive_design_config


def test_fig9_power_breakdown(benchmark, bench_config, bench_anchors):
    deepn_config = derive_design_config(bench_config, anchors=bench_anchors)
    result = run_once(
        benchmark, fig9_power.run, bench_config, deepn_config=deepn_config
    )
    print("\n" + result.format_table())

    original = result.normalized_power("Original")
    deepn = result.normalized_power("DeepN-JPEG")
    rmhf = result.normalized_power("RM-HF3")
    sameq = result.normalized_power("SAME-Q4")
    # Normalisation anchor.
    assert original == 1.0
    # Ordering matches the paper: DeepN-JPEG uses the least offloading power,
    # RM-HF3 barely improves on the original, SAME-Q4 sits in between.
    assert deepn < sameq < rmhf <= 1.0
    # DeepN-JPEG saves a large fraction of the offloading power.
    assert deepn < 0.75
