"""Microbenchmarks of the NN training/inference engine.

Times the hot paths of the pure-NumPy network stack at the tiny
experiment scale (the same configuration the figure benchmarks train
at): one full training epoch through ``Trainer.fit``, a single conv
layer's forward and forward+backward, and inference-only ``predict`` —
each in the fast float32 mode and the float64 reference mode, so the
dtype-policy speedup stays visible in the benchmark history.
"""

import numpy as np
import pytest

from repro.data.synthetic import FreqNetConfig, generate_freqnet
from repro.data.transforms import prepare_for_network
from repro.nn import models
from repro.nn.conv import Conv2D
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer

from conftest import run_once


@pytest.fixture(scope="module")
def tiny_dataset():
    """FreqNet at the ``ExperimentConfig.tiny`` scale (128 images, 32x32)."""
    return generate_freqnet(
        FreqNetConfig(images_per_class=16, image_size=32, seed=7)
    )


def _trainer(dataset, dtype):
    model = models.build_model(
        "AlexNet",
        num_classes=dataset.num_classes,
        input_shape=(1, 32, 32),
        seed=0,
        dtype=dtype,
    )
    trainer = Trainer(model, optimizer=Adam(0.002), batch_size=32, seed=0)
    images = prepare_for_network(dataset.images, dtype=dtype)
    return trainer, images, dataset.labels


@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_fit_epoch(benchmark, tiny_dataset, dtype):
    """One full training epoch of AlexNet-mini on the tiny config."""
    trainer, images, labels = _trainer(tiny_dataset, dtype)
    trainer.fit(images, labels, epochs=1)  # warm scratch buffers

    def one_epoch():
        return trainer.fit(images, labels, epochs=1)

    history = benchmark(one_epoch)
    assert history.epochs == 1
    assert np.isfinite(history.train_loss[-1])


@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_predict(benchmark, tiny_dataset, dtype):
    """Inference-only classification of the whole tiny dataset."""
    trainer, images, labels = _trainer(tiny_dataset, dtype)
    predictions = benchmark(trainer.model.predict, images)
    assert predictions.shape == labels.shape


@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_conv_forward(benchmark, dtype):
    """Forward pass of a mid-network convolution (batch 32)."""
    rng = np.random.default_rng(0)
    layer = Conv2D(12, 24, 3, padding=1, rng=np.random.default_rng(1),
                   dtype=dtype)
    inputs = rng.normal(size=(32, 12, 16, 16)).astype(dtype)
    outputs = benchmark(layer.forward, inputs, training=True)
    assert outputs.shape == (32, 24, 16, 16)


@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_conv_forward_backward(benchmark, dtype):
    """Forward plus backward of the same convolution."""
    rng = np.random.default_rng(0)
    layer = Conv2D(12, 24, 3, padding=1, rng=np.random.default_rng(1),
                   dtype=dtype)
    inputs = rng.normal(size=(32, 12, 16, 16)).astype(dtype)
    grad = np.ones((32, 24, 16, 16), dtype=dtype)

    def step():
        layer.forward(inputs, training=True)
        return layer.backward(grad)

    grad_input = benchmark(step)
    assert grad_input.shape == inputs.shape


def test_fit_full_run(benchmark, tiny_dataset):
    """Ten-epoch tiny-config training, timed once (figure-benchmark scale)."""
    trainer, images, labels = _trainer(tiny_dataset, "float32")
    history = run_once(benchmark, trainer.fit, images, labels, epochs=10)
    assert history.epochs == 10
