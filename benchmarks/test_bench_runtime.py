"""Runtime benchmarks: serial vs multi-process experiment execution.

Measures the two shardings PR 3 introduced — the fig5 sweep grid over a
process pool and chunked dataset compression — against their serial
(``workers=1``) baselines, asserting result equality always and the
speedup floor when the machine actually has the cores to show it.
"""

import os
import time

import numpy as np

from conftest import run_once

from repro.core.baselines import compress_batch
from repro.experiments import fig5_band_sensitivity
from repro.jpeg.quantization import QuantizationTable
from repro.runtime.executor import available_workers, fork_available

#: Pool size used by the parallel benchmarks.
PARALLEL_WORKERS = 4
#: End-to-end fig5 speedup demanded of a 4+-core box.  Overridable via
#: REPRO_FIG5_SPEEDUP_FLOOR; shared CI runners set it to 0 (record-only)
#: because their 4 noisy vCPUs cannot give a stable timing signal, while
#: dedicated multi-core boxes keep the default hard floor.
FIG5_SPEEDUP_FLOOR = float(os.environ.get("REPRO_FIG5_SPEEDUP_FLOOR", "2.5"))


def _parallel_capable() -> bool:
    return fork_available() and available_workers() >= PARALLEL_WORKERS


def _mean_seconds(benchmark) -> float:
    """Measured mean of a benchmark, or None in --benchmark-disable mode."""
    try:
        return float(benchmark.stats.stats.mean)
    except AttributeError:
        return None


def test_fig5_sweep_serial_vs_parallel(benchmark, bench_config):
    """End-to-end fig5: full sweep with 4 workers vs the serial run."""
    fig5_band_sensitivity._STATE.clear()
    started = time.perf_counter()
    serial = fig5_band_sensitivity.run(bench_config)
    serial_seconds = time.perf_counter() - started

    fig5_band_sensitivity._STATE.clear()
    parallel = run_once(
        benchmark,
        fig5_band_sensitivity.run,
        bench_config.with_overrides(workers=PARALLEL_WORKERS),
    )

    assert parallel.entries == serial.entries
    assert parallel.baseline_accuracy == serial.baseline_accuracy

    parallel_seconds = _mean_seconds(benchmark)
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["workers"] = PARALLEL_WORKERS
    benchmark.extra_info["cpus"] = available_workers()
    if parallel_seconds:
        speedup = serial_seconds / parallel_seconds
        benchmark.extra_info["speedup"] = round(speedup, 2)
        print(
            f"\nfig5 sweep: serial {serial_seconds:.2f} s, "
            f"{PARALLEL_WORKERS} workers {parallel_seconds:.2f} s "
            f"({speedup:.2f}x, {available_workers()} cpus)"
        )
        if _parallel_capable() and FIG5_SPEEDUP_FLOOR > 0:
            assert speedup >= FIG5_SPEEDUP_FLOOR


def test_dataset_compression_serial_vs_parallel(benchmark):
    """Chunk-sharded compress_batch vs the serial whole-stack pass."""
    rng = np.random.default_rng(5)
    images = rng.uniform(0.0, 255.0, size=(512, 32, 32)).round()
    table = QuantizationTable.standard_luminance(90)

    started = time.perf_counter()
    serial = compress_batch(images, table, workers=1)
    serial_seconds = time.perf_counter() - started

    parallel = run_once(
        benchmark, compress_batch, images, table, workers=PARALLEL_WORKERS
    )

    assert [r.payload_bytes for r in parallel] == [
        r.payload_bytes for r in serial
    ]

    parallel_seconds = _mean_seconds(benchmark)
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["images"] = images.shape[0]
    benchmark.extra_info["workers"] = PARALLEL_WORKERS
    benchmark.extra_info["cpus"] = available_workers()
    if parallel_seconds:
        speedup = serial_seconds / parallel_seconds
        benchmark.extra_info["speedup"] = round(speedup, 2)
        print(
            f"\ncompress_batch x{images.shape[0]}: serial "
            f"{serial_seconds * 1e3:.1f} ms, {PARALLEL_WORKERS} workers "
            f"{parallel_seconds * 1e3:.1f} ms ({speedup:.2f}x)"
        )
