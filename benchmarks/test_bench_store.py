"""Artifact-store benchmarks: cold sweep vs warm-store resume.

Measures the PR 4 resume win: a fig5 sensitivity sweep that populates a
content-addressed artifact store on the first (cold) run, then replays
from the store on the second (warm) run without recompressing or
retraining anything.  The warm/cold ratio is recorded in ``extra_info``
so the perf-trajectory JSON keeps the resume speedup on record.
"""

import shutil
import tempfile
import time

from conftest import run_once

from repro.experiments import ArtifactStore, fig5_band_sensitivity


def _mean_seconds(benchmark):
    """Measured mean of a benchmark, or None in --benchmark-disable mode."""
    try:
        return float(benchmark.stats.stats.mean)
    except AttributeError:
        return None


def test_fig5_store_hit_vs_cold_run(benchmark, bench_config):
    """Warm-store fig5 replay vs the cold run that filled the store."""
    root = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        fig5_band_sensitivity._STATE.clear()
        started = time.perf_counter()
        cold = fig5_band_sensitivity.run(
            bench_config, store=ArtifactStore(root)
        )
        cold_seconds = time.perf_counter() - started

        warm_store = ArtifactStore(root)
        fig5_band_sensitivity._STATE.clear()
        warm = run_once(
            benchmark, fig5_band_sensitivity.run, bench_config,
            store=warm_store,
        )

        assert warm.entries == cold.entries
        assert warm.baseline_accuracy == cold.baseline_accuracy
        assert warm_store.misses == 0

        warm_seconds = _mean_seconds(benchmark)
        benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
        benchmark.extra_info["store_entries"] = len(warm_store)
        if warm_seconds is not None:
            benchmark.extra_info["warm_seconds"] = round(warm_seconds, 6)
            benchmark.extra_info["store_speedup"] = round(
                cold_seconds / warm_seconds, 2
            )
            # The replay must beat the cold run by a wide margin: it does
            # no compression, no training — only store reads.
            assert warm_seconds < cold_seconds / 5
    finally:
        shutil.rmtree(root, ignore_errors=True)
