"""Designing and deploying a custom DeepN-JPEG quantization table.

Shows the lower-level API: build a piece-wise linear mapping from explicit
anchor points (or the paper's published ImageNet parameters), generate the
quantization table for measured statistics, compare it with the standard
Annex-K table, and use it inside the JPEG codec directly for single-image
compression.

Run with::

    python examples/custom_quantization_table.py
"""

import numpy as np

from repro.analysis import analyze_dataset
from repro.core import PiecewiseLinearMapping
from repro.data import FreqNetConfig, generate_freqnet
from repro.jpeg import (
    GrayscaleJpegCodec,
    QuantizationTable,
    STANDARD_LUMINANCE_TABLE,
)


def main() -> None:
    dataset = generate_freqnet(FreqNetConfig(images_per_class=16, seed=5))
    statistics = analyze_dataset(dataset, interval=2)

    # The paper's published ImageNet parameters, for reference.
    paper_mapping = PiecewiseLinearMapping.paper_imagenet()
    print(
        "Paper ImageNet PLM: "
        f"a={paper_mapping.a:g} b={paper_mapping.b:g} c={paper_mapping.c:g} "
        f"k1={paper_mapping.k1:g} k2={paper_mapping.k2:g} k3={paper_mapping.k3:g}"
    )

    # A mapping fitted to this dataset's statistics from anchor points.
    sorted_std = np.sort(statistics.std, axis=None)[::-1]
    mapping = PiecewiseLinearMapping.from_anchors(
        t1=float(sorted_std[27]),
        t2=float(sorted_std[5]),
        q1=90.0,
        q2=40.0,
        q_min=5.0,
        k3=3.0,
    )
    table = mapping.table_from_statistics(statistics)
    standard = QuantizationTable(STANDARD_LUMINANCE_TABLE, name="annex-k")

    print("\nDesigned table:")
    print(table.values.astype(int))
    print("\nStandard Annex-K luminance table:")
    print(standard.values.astype(int))
    print(
        f"\nMean step: designed={table.mean_step():.1f} "
        f"standard={standard.mean_step():.1f}"
    )

    # Deploy both tables in the codec on one image.
    image = dataset.images[0]
    for name, quant_table in (("designed", table), ("standard", standard)):
        codec = GrayscaleJpegCodec(quant_table)
        result = codec.compress(image)
        print(
            f"{name:9s}: {result.total_bytes} bytes "
            f"(CR={result.compression_ratio:.2f}, "
            f"PSNR={result.psnr(image):.1f} dB)"
        )


if __name__ == "__main__":
    main()
