"""Edge-IoT offloading scenario: compress on-device, classify in the cloud.

This is the deployment the paper motivates: an edge sensor produces
images, compresses them before uploading over a constrained wireless
link, and a cloud-hosted DNN (trained on data that went through the same
compressor) classifies them.  The script compares standard JPEG and
DeepN-JPEG end to end: classification accuracy, upload volume, upload
latency and transmit energy per image on 3G / LTE / Wi-Fi.

The fitted DeepN-JPEG pipeline is also saved to / reloaded from a JSON
artifact — the ship-to-the-edge step: the server fits the table once,
every sensor loads the artifact and compresses bit-identically.

Run with::

    python examples/edge_iot_pipeline.py
"""

import os
import tempfile

from repro.core import DeepNJpeg, DeepNJpegConfig, JpegCompressor
from repro.data import train_test_split, generate_freqnet, FreqNetConfig
from repro.experiments.common import ExperimentConfig, format_table, train_classifier
from repro.jpeg import decode_image_bytes
from repro.power import WIRELESS_LINKS


def main() -> None:
    # workers=0 shards dataset compression over every CPU (results are
    # identical to the serial run; workers=1 keeps everything in-process).
    config = ExperimentConfig(images_per_class=24, epochs=14, workers=0)
    dataset = generate_freqnet(
        FreqNetConfig(
            images_per_class=config.images_per_class, seed=config.dataset_seed
        )
    )
    train_set, test_set = train_test_split(
        dataset, test_fraction=config.test_fraction, seed=config.split_seed
    )

    # Fit once (the cloud side), save the artifact, and hand every edge
    # device the reloaded pipeline — compression is bit-identical.
    fitted = DeepNJpeg(DeepNJpegConfig(sampling_interval=2)).fit(train_set)
    artifact_path = os.path.join(
        tempfile.gettempdir(), "deepn_jpeg_edge_artifact.json"
    )
    fitted.save(artifact_path)
    edge_pipeline = DeepNJpeg.load(artifact_path)
    sample = test_set.images[0]
    container = edge_pipeline.encode_to_bytes(sample)
    decoded = decode_image_bytes(container)
    print(
        f"fitted artifact: {artifact_path} "
        f"({os.path.getsize(artifact_path)} bytes); one {sample.shape} "
        f"sample ships as a {len(container)}-byte self-contained "
        f"container (decoded shape {decoded.shape})\n"
    )

    candidates = {
        "JPEG QF=100": JpegCompressor(100),
        "JPEG QF=50": JpegCompressor(50),
        "DeepN-JPEG": edge_pipeline,
    }

    rows = []
    for name, compressor in candidates.items():
        compressed_train = compressor.compress_dataset(
            train_set, workers=config.workers
        )
        compressed_test = compressor.compress_dataset(
            test_set, workers=config.workers
        )
        classifier = train_classifier(compressed_train, config)
        accuracy = classifier.accuracy_on(compressed_test)
        bytes_per_image = compressed_test.bytes_per_image
        link_columns = []
        for link_name in ("3G", "LTE", "WiFi"):
            link = WIRELESS_LINKS[link_name]
            energy_mj = 1e3 * link.transfer_energy_joules(bytes_per_image)
            link_columns.append(f"{energy_mj:.2f}")
        rows.append(
            [name, accuracy, round(bytes_per_image, 1)] + link_columns
        )

    print(format_table(
        [
            "Pipeline",
            "Cloud accuracy",
            "Upload bytes/image",
            "3G energy (mJ)",
            "LTE energy (mJ)",
            "WiFi energy (mJ)",
        ],
        rows,
    ))
    print(
        "\nDeepN-JPEG uploads the least data at the same accuracy level, "
        "which is the storage/energy saving the paper targets for edge "
        "devices."
    )


if __name__ == "__main__":
    main()
