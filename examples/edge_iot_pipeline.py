"""Edge-IoT offloading scenario: compress on-device, classify in the cloud.

This is the deployment the paper motivates: an edge sensor produces
images, compresses them before uploading over a constrained wireless
link, and a cloud-hosted DNN (trained on data that went through the same
compressor) classifies them.  The script compares standard JPEG and
DeepN-JPEG end to end: classification accuracy, upload volume, upload
latency and transmit energy per image on 3G / LTE / Wi-Fi.

The fitted DeepN-JPEG pipeline is also saved to / reloaded from a JSON
artifact — the ship-to-the-edge step: the server fits the table once,
every sensor loads the artifact and compresses bit-identically.

The comparison itself is a *custom declarative experiment*
(:class:`EdgeOffloadExperiment`): it declares one ``pipeline`` axis and
a cell function, registers under ``edge-offload``, and the framework
(:mod:`repro.experiments.api`) supplies the sweep loop, ``workers=``
sharding and deterministic assembly — the "declaring a new experiment"
pattern from the README, on a real workload.

Run with::

    python examples/edge_iot_pipeline.py
"""

import os
import tempfile

from repro.core import DeepNJpeg, DeepNJpegConfig, JpegCompressor
from repro.data import train_test_split, generate_freqnet, FreqNetConfig
from repro.experiments import api
from repro.experiments.common import ExperimentConfig, train_classifier
from repro.jpeg import decode_image_bytes
from repro.power import WIRELESS_LINKS

#: The wireless links whose per-image transmit energy the table reports.
LINK_NAMES = ("3G", "LTE", "WiFi")


class EdgeOffloadExperiment(api.Experiment):
    """Accuracy / upload-volume / energy of one compression pipeline.

    A minimal custom experiment: the candidates (which embed the fitted
    DeepN-JPEG artifact) live in parent-seeded state like Fig. 8's, each
    cell compresses the splits with one candidate and trains the cloud
    classifier, and ``assemble`` renders the comparison rows.
    """

    name = "edge-offload"
    title = "Edge-IoT offloading comparison (accuracy, bytes, energy)"
    headers = [
        "Pipeline", "Cloud accuracy", "Upload bytes/image",
        *(f"{link} energy (mJ)" for link in LINK_NAMES),
    ]
    defaults = {"candidates": None, "splits": None}

    def axes(self, ctx):
        return [api.Axis("pipeline", tuple(ctx.params["candidates"]))]

    def cell_identity(self, ctx, point):
        # Bind the candidate's codec spec() into the cache address (the
        # fig7/8/9 pattern): a cell computed from one fitted artifact
        # must never replay for a differently-fitted one.
        pipeline = point["pipeline"]
        return {
            "pipeline": pipeline,
            "codec": ctx.params["candidates"][pipeline].spec(),
        }

    def state_key(self, ctx):
        return (ctx.config.task_key(), id(ctx.params["candidates"]))

    def setup_state(self, ctx):
        train_set, test_set = ctx.params["splits"] or self._make_splits(
            ctx.config
        )
        return {
            "train_set": train_set,
            "test_set": test_set,
            "config": ctx.config.task_key(),
        }

    @staticmethod
    def _make_splits(config):
        dataset = generate_freqnet(
            FreqNetConfig(
                images_per_class=config.images_per_class,
                seed=config.dataset_seed,
            )
        )
        return train_test_split(
            dataset,
            test_fraction=config.test_fraction,
            seed=config.split_seed,
        )

    def task_extra(self, ctx, index, cell):
        return ctx.params["candidates"][cell["pipeline"]]

    def compute_cell(self, key, state, cell, extra):
        # One candidate pipeline per cell: the *grid* shards over
        # ``config.workers`` processes, so each cell compresses and
        # trains serially (``state["config"]`` is the task key, whose
        # workers knob is normalised to 1).
        compressor = extra
        config = state["config"]
        compressed_train = compressor.compress_dataset(state["train_set"])
        compressed_test = compressor.compress_dataset(state["test_set"])
        classifier = train_classifier(compressed_train, config)
        accuracy = classifier.accuracy_on(compressed_test)
        bytes_per_image = compressed_test.bytes_per_image
        link_columns = []
        for link_name in LINK_NAMES:
            link = WIRELESS_LINKS[link_name]
            energy_mj = 1e3 * link.transfer_energy_joules(bytes_per_image)
            link_columns.append(f"{energy_mj:.2f}")
        return (
            [cell["pipeline"], accuracy, round(bytes_per_image, 1)]
            + link_columns
        )

    def assemble(self, ctx, results, scalars):
        return api.TableResult(self.headers, list(results))


api.register_experiment(EdgeOffloadExperiment.name, EdgeOffloadExperiment)


def main() -> None:
    # workers=0 shards dataset compression over every CPU (results are
    # identical to the serial run; workers=1 keeps everything in-process).
    config = ExperimentConfig(images_per_class=24, epochs=14, workers=0)
    dataset = generate_freqnet(
        FreqNetConfig(
            images_per_class=config.images_per_class, seed=config.dataset_seed
        )
    )
    train_set, test_set = train_test_split(
        dataset, test_fraction=config.test_fraction, seed=config.split_seed
    )

    # Fit once (the cloud side), save the artifact, and hand every edge
    # device the reloaded pipeline — compression is bit-identical.
    fitted = DeepNJpeg(DeepNJpegConfig(sampling_interval=2)).fit(train_set)
    artifact_path = os.path.join(
        tempfile.gettempdir(), "deepn_jpeg_edge_artifact.json"
    )
    fitted.save(artifact_path)
    edge_pipeline = DeepNJpeg.load(artifact_path)
    sample = test_set.images[0]
    container = edge_pipeline.encode_to_bytes(sample)
    decoded = decode_image_bytes(container)
    print(
        f"fitted artifact: {artifact_path} "
        f"({os.path.getsize(artifact_path)} bytes); one {sample.shape} "
        f"sample ships as a {len(container)}-byte self-contained "
        f"container (decoded shape {decoded.shape})\n"
    )

    candidates = {
        "JPEG QF=100": JpegCompressor(100),
        "JPEG QF=50": JpegCompressor(50),
        "DeepN-JPEG": edge_pipeline,
    }

    # The registered custom experiment runs the candidate sweep — by
    # name, with the framework's sharding and ordering (the splits built
    # above are handed over so they are not regenerated).
    result = api.run_experiment(
        api.build_experiment("edge-offload"), config,
        candidates=candidates, splits=(train_set, test_set),
    )
    print(result.format_table())
    print(
        "\nDeepN-JPEG uploads the least data at the same accuracy level, "
        "which is the storage/energy saving the paper targets for edge "
        "devices."
    )


if __name__ == "__main__":
    main()
