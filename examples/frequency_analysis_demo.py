"""Frequency component analysis (Algorithm 1) walkthrough.

The script runs the paper's Algorithm 1 on the FreqNet dataset: sample
each class, block-DCT the samples, and characterise each of the 64
frequency bands by the standard deviation of its coefficients.  It then
shows how the magnitude-based band segmentation differs from the
position-based one, verifies the Laplace-vs-Gaussian coefficient model of
Reininger & Gibson, and prints the resulting piece-wise linear mapping
and quantization table.

Run with::

    python examples/frequency_analysis_demo.py
"""

import numpy as np

from repro.analysis import (
    analyze_dataset,
    fit_band_distribution,
    magnitude_based_segmentation,
    position_based_segmentation,
)
from repro.analysis.bands import segmentation_agreement
from repro.analysis.frequency import coefficients_by_band
from repro.core import DeepNJpegTableDesigner
from repro.data import FreqNetConfig, generate_freqnet


def main() -> None:
    dataset = generate_freqnet(FreqNetConfig(images_per_class=24, seed=11))

    # --- Algorithm 1: per-band standard deviations -----------------------
    statistics = analyze_dataset(dataset, interval=2)
    print("Per-band DCT coefficient standard deviation (Algorithm 1):")
    print(np.round(statistics.std, 1))
    print(
        f"\nAnalysed {statistics.image_count} sampled images "
        f"({statistics.block_count} blocks)."
    )

    # --- Magnitude-based vs position-based segmentation ------------------
    magnitude = magnitude_based_segmentation(statistics)
    position = position_based_segmentation()
    agreement = segmentation_agreement(magnitude, position)
    print("\nMagnitude-based LF/MF/HF groups:")
    print(magnitude.groups)
    print(
        f"\nAgreement with the position-based grouping: {agreement:.0%} of "
        "bands — the disagreement is exactly where DeepN-JPEG's data-driven "
        "table differs from the HVS table."
    )

    # --- Coefficient distribution check (Reininger & Gibson) -------------
    coefficients = coefficients_by_band(dataset.images[:32])
    band = (1, 1)
    fit = fit_band_distribution(coefficients[:, band[0], band[1]])
    print(
        f"\nBand {band}: std={fit.std:.1f}, Laplace scale={fit.laplace_scale:.1f}, "
        f"preferred model: {fit.preferred_model}"
    )

    # --- Resulting PLM and quantization table -----------------------------
    design = DeepNJpegTableDesigner().design(statistics)
    mapping = design.mapping
    print(
        f"\nPiece-wise linear mapping: T1={mapping.t1:.1f} T2={mapping.t2:.1f} "
        f"k1={mapping.k1:.2f} k2={mapping.k2:.2f} k3={mapping.k3:.2f} "
        f"Qmin={mapping.q_min:g}"
    )
    print("\nDesigned quantization table:")
    print(design.table.values.astype(int))


if __name__ == "__main__":
    main()
