"""Quickstart: design a DeepN-JPEG table and compare it against JPEG.

Run with::

    python examples/quickstart.py

The script generates the synthetic FreqNet dataset, fits the DeepN-JPEG
quantization table from its frequency statistics (Algorithm 1 + the
piece-wise linear mapping), compresses the dataset with DeepN-JPEG and
with standard JPEG at several quality factors, and prints the measured
compression ratios and reconstruction quality.
"""

from repro.core import DeepNJpeg, DeepNJpegConfig, JpegCompressor
from repro.data import FreqNetConfig, generate_freqnet
from repro.experiments.common import format_table


def main() -> None:
    dataset = generate_freqnet(FreqNetConfig(images_per_class=20, seed=3))
    print(
        f"FreqNet: {len(dataset)} images, {dataset.num_classes} classes, "
        f"{dataset.image_shape[0]}x{dataset.image_shape[1]} pixels"
    )

    # Fit DeepN-JPEG: Algorithm-1 statistics -> piece-wise linear mapping.
    deepn = DeepNJpeg(DeepNJpegConfig(sampling_interval=2)).fit(dataset)
    print("\nDesigned DeepN-JPEG quantization table:")
    print(deepn.table.values.astype(int))

    rows = []
    reference_bytes = None
    for quality in (100, 80, 50, 20):
        compressed = JpegCompressor(quality).compress_dataset(dataset)
        if reference_bytes is None:
            reference_bytes = compressed.total_bytes
        rows.append(
            [
                f"JPEG QF={quality}",
                compressed.compression_ratio,
                reference_bytes / compressed.total_bytes,
                compressed.mean_psnr,
            ]
        )
    deepn_compressed = deepn.compress_dataset(dataset)
    rows.append(
        [
            "DeepN-JPEG",
            deepn_compressed.compression_ratio,
            reference_bytes / deepn_compressed.total_bytes,
            deepn_compressed.mean_psnr,
        ]
    )
    print("\n" + format_table(
        ["Method", "CR (vs raw)", "CR (vs QF=100)", "PSNR (dB)"], rows
    ))


if __name__ == "__main__":
    main()
