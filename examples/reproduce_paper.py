"""Reproduce every table and figure of the paper's evaluation.

A loop over the experiment registry: each registered experiment (one per
figure) runs through :func:`repro.experiments.api.run_experiment` with
the same configuration — the declarative framework supplies grid
enumeration, caching/resume, ``workers=`` sharding and ordering, so this
script adds nothing but the loop.  The figures share work through the
artifact store: the Fig. 5 sweeps embedded in the Fig. 6/7/8 design
derivation and the fitted DeepN-JPEG design are store artifacts, so each
is computed once per invocation (a session-local store is created when
``--artifacts-dir`` is not given).

The ``python -m repro`` CLI is the canonical single-experiment entry
point; this script is the run-everything convenience.

* ``tiny``  — minutes; smoke-test scale used by the benchmarks.
* ``small`` — the default; the scale used for EXPERIMENTS.md.
* ``full``  — largest datasets / longest training.

``--workers N`` shards every experiment grid (and the dataset
compression behind it) over N processes; ``--workers 0`` uses every
CPU.  Results are identical for any worker count.

``--artifacts-dir DIR`` persists the content-addressed artifact store at
DIR: an interrupted or repeated invocation with the same configuration
resumes from the completed cells instead of recomputing them (at the
same scale a fully warm store replays all seven figures in seconds).

``--on-error collect --retries 2 --task-timeout 600`` engages the
supervised fault-tolerant runtime (:mod:`repro.runtime.supervision`):
failed cells retry with the same task payload (recovered sweeps are
bit-identical), hung workers are killed at the timeout, and under
``collect`` every healthy cell persists before the failure report — so
an overnight full-scale run survives flaky cells and a re-run finishes
only what's missing.

Run with::

    python examples/reproduce_paper.py --scale small --workers 4 \
        --artifacts-dir artifacts/ --on-error collect --retries 2
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.cli import SCALES
from repro.experiments import ArtifactStore
from repro.runtime.backends import BACKEND_NAMES
from repro.experiments.api import (
    SweepFailure,
    build_experiment,
    experiment_names,
    run_experiment,
)
from repro.experiments.design_flow import derive_design_config


def _banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="small",
        help="experiment scale (dataset size and training epochs)",
    )
    parser.add_argument(
        "--fig8-epochs", type=int, default=None,
        help="override training epochs for the Fig. 8 generality sweep",
    )
    parser.add_argument(
        "--skip", nargs="*", default=[],
        help="experiment names to skip, e.g. --skip fig8",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="processes per experiment sweep (1 = serial, 0 = all CPUs); "
        "results are identical for any worker count",
    )
    parser.add_argument(
        "--artifacts-dir", default=None,
        help="content-addressed artifact store directory; re-runs with the "
        "same configuration resume from completed grid cells (a throwaway "
        "session store is used when omitted, so the figures still share "
        "the fitted design and the embedded Fig. 5 sweeps)",
    )
    parser.add_argument(
        "--on-error", choices=("fail-fast", "retry", "collect"),
        default="fail-fast",
        help="failure policy per grid cell: fail-fast aborts on the first "
        "failure, retry re-runs failed cells up to --retries times, "
        "collect additionally finishes every healthy cell before failing",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="retry budget per cell under --on-error retry|collect",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-cell timeout in seconds; a hung worker is killed and "
        "the cell charged a failed attempt",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="execution backend for every sweep (default: automatic); "
        "'persistent' reuses one worker pool across all figures, "
        "'socket' farms cells out to `python -m repro.worker` daemons; "
        "results are identical for every backend",
    )
    arguments = parser.parse_args()
    config = SCALES[arguments.scale]().with_overrides(
        workers=arguments.workers,
        on_error=arguments.on_error,
        retries=arguments.retries,
        task_timeout=arguments.task_timeout,
        backend=arguments.backend,
    )
    artifacts_dir = arguments.artifacts_dir
    session_store = None
    if artifacts_dir is None:
        # Throwaway store so the figures still share the fitted design
        # and the embedded Fig. 5 sweeps; removed when the run ends.
        session_store = tempfile.TemporaryDirectory(
            prefix="repro-artifacts-"
        )
        artifacts_dir = session_store.name
        print(f"(session artifact store: {artifacts_dir})")
    store = ArtifactStore(artifacts_dir)
    # Per-experiment parameter overrides.  The paper's design flow runs
    # through the loop order: fig6 selects the LF slope k3, and the
    # derived design (anchored by the fig5 sweeps, resumed from the
    # shared store) is handed to fig7/8/9 — exactly the coupling the
    # pre-registry script wired by hand.
    params_by_name = {"fig8": {"epochs": arguments.fig8_epochs}}
    started = time.time()
    deepn_config = None

    try:
        for name in experiment_names():
            if name in arguments.skip:
                continue
            if name in ("fig7", "fig8", "fig9"):
                if deepn_config is None:
                    # fig6 was skipped: derive with the paper's default
                    # k3=3.0, as the pre-registry script did.
                    deepn_config = derive_design_config(config, store=store)
                params_by_name.setdefault(name, {})[
                    "deepn_config"
                ] = deepn_config
            experiment = build_experiment(name)
            _banner(f"{name} — {experiment.title}")
            try:
                result = run_experiment(
                    experiment, config, store=store,
                    **params_by_name.get(name, {}),
                )
            except SweepFailure as failure:
                # Healthy cells are already persisted (under collect);
                # re-running the same command finishes only the failures.
                print(f"error: {failure.report()}", file=sys.stderr)
                sys.exit(3)
            print(experiment.report(result))
            if name == "fig6":
                deepn_config = derive_design_config(
                    config, k3=result.best_k3(), store=store
                )
            if name == "fig7":
                # Fig. 9 normalises the sizes Fig. 7 already measured.
                sizes = result.bytes_per_image_by_method()
                bytes_per_method = {
                    method: sizes[method]
                    for method in (
                        "Original", "RM-HF3", "SAME-Q4", "DeepN-JPEG"
                    )
                    if method in sizes
                }
                if bytes_per_method:
                    params_by_name.setdefault("fig9", {})[
                        "bytes_per_method"
                    ] = bytes_per_method

        print(
            f"\nTotal wall-clock time: {time.time() - started:.0f} s "
            f"(store: {store.hits} hits, {store.misses} misses)"
        )
    finally:
        if session_store is not None:
            session_store.cleanup()


if __name__ == "__main__":
    main()
