"""Reproduce every table and figure of the paper's evaluation.

Runs the Fig. 2 / 3 / 5 / 6 / 7 / 8 / 9 experiments in sequence and prints
the regenerated tables.  The ``--scale`` option controls the dataset size
and training length:

* ``tiny``  — minutes; smoke-test scale used by the benchmarks.
* ``small`` — the default; the scale used for EXPERIMENTS.md.
* ``full``  — largest datasets / longest training.

``--workers N`` shards every experiment grid (and the dataset
compression behind it) over N processes; ``--workers 0`` uses every
CPU.  Results are identical for any worker count.

``--artifacts-dir DIR`` writes every grid-cell result through a
content-addressed artifact store rooted at DIR: an interrupted or
repeated invocation with the same configuration resumes from the
completed cells instead of recomputing them (at the same scale a fully
warm store replays all seven figures in seconds).

Run with::

    python examples/reproduce_paper.py --scale small --workers 4 \
        --artifacts-dir artifacts/
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import ArtifactStore, ExperimentConfig
from repro.experiments import (
    fig2_motivation,
    fig3_feature_removal,
    fig5_band_sensitivity,
    fig6_k3_sweep,
    fig7_methods,
    fig8_generality,
    fig9_power,
)
from repro.experiments.design_flow import derive_design_config

SCALES = {
    "tiny": ExperimentConfig.tiny,
    "small": ExperimentConfig.small,
    "full": ExperimentConfig.full,
}


def _banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="small",
        help="experiment scale (dataset size and training epochs)",
    )
    parser.add_argument(
        "--fig8-epochs", type=int, default=None,
        help="override training epochs for the Fig. 8 generality sweep",
    )
    parser.add_argument(
        "--skip", nargs="*", default=[],
        help="figure ids to skip, e.g. --skip fig8",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="processes per experiment sweep (1 = serial, 0 = all CPUs); "
        "results are identical for any worker count",
    )
    parser.add_argument(
        "--artifacts-dir", default=None,
        help="content-addressed artifact store directory; re-runs with the "
        "same configuration resume from completed grid cells",
    )
    arguments = parser.parse_args()
    config = SCALES[arguments.scale]().with_overrides(
        workers=arguments.workers
    )
    store = (
        ArtifactStore(arguments.artifacts_dir)
        if arguments.artifacts_dir else None
    )
    started = time.time()

    _banner("Fig. 2 — accuracy vs JPEG compression (CASE 1 / CASE 2)")
    if "fig2" not in arguments.skip:
        fig2 = fig2_motivation.run(config, store=store)
        print(fig2.format_table())
        print("\nCASE 2 accuracy per epoch (Fig. 2b):")
        for quality, curve in fig2.epoch_curves().items():
            print(f"  QF={quality}: " + ", ".join(f"{a:.2f}" for a in curve))

    _banner("Fig. 3 — removing high-frequency components flips predictions")
    if "fig3" not in arguments.skip:
        fig3 = fig3_feature_removal.run(config, store=store)
        print(fig3.format_table())

    _banner("Fig. 5 — per-band-group sensitivity (magnitude vs position)")
    anchors = None
    if "fig5" not in arguments.skip:
        fig5 = fig5_band_sensitivity.run(config, store=store)
        print(fig5.format_table())
        anchors = fig5.derived_anchors()
        print(f"\nDerived design anchors: {anchors}")

    _banner("Fig. 6 — LF slope k3 sweep")
    chosen_k3 = 3.0
    if "fig6" not in arguments.skip:
        fig6 = fig6_k3_sweep.run(config, anchors=anchors, store=store)
        print(fig6.format_table())
        chosen_k3 = fig6.best_k3()
        print(f"\nSelected k3 = {chosen_k3:g}")

    deepn_config = derive_design_config(
        config, anchors=anchors, k3=chosen_k3, store=store
    )

    _banner("Fig. 7 — compression rate and accuracy of all candidates")
    fig7 = None
    if "fig7" not in arguments.skip:
        fig7 = fig7_methods.run(config, deepn_config=deepn_config, store=store)
        print(fig7.format_table())

    _banner("Fig. 8 — generality across DNN architectures")
    if "fig8" not in arguments.skip:
        fig8 = fig8_generality.run(
            config, deepn_config=deepn_config, epochs=arguments.fig8_epochs,
            store=store,
        )
        print(fig8.format_table())

    _banner("Fig. 9 — normalized data-offloading power")
    if "fig9" not in arguments.skip:
        bytes_per_method = None
        if fig7 is not None:
            sizes = fig7.bytes_per_image_by_method()
            bytes_per_method = {
                method: sizes[method]
                for method in ("Original", "RM-HF3", "SAME-Q4", "DeepN-JPEG")
                if method in sizes
            }
        fig9 = fig9_power.run(
            config, deepn_config=deepn_config,
            bytes_per_method=bytes_per_method, store=store,
        )
        print(fig9.format_table())

    print(f"\nTotal wall-clock time: {time.time() - started:.0f} s")


if __name__ == "__main__":
    main()
