"""Setuptools shim.

The offline build environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs are unavailable; this ``setup.py``
lets ``pip install -e .`` fall back to the legacy ``setup.py develop``
path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
