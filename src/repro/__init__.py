"""DeepN-JPEG: a DNN-favourable JPEG-based image compression framework.

A from-scratch reproduction of *DeepN-JPEG: A Deep Neural Network
Favorable JPEG-based Image Compression Framework* (Liu et al., DAC 2018),
including every substrate the paper depends on:

* :mod:`repro.jpeg` — a complete JPEG-style codec (DCT, quantization,
  zig-zag, run-length + Huffman entropy coding) with real byte counts.
* :mod:`repro.nn` — a numpy neural-network framework with mini versions of
  the paper's evaluation architectures (AlexNet, VGG, GoogLeNet, ResNet).
* :mod:`repro.data` — FreqNet, a synthetic frequency-structured
  image-classification dataset standing in for ImageNet.
* :mod:`repro.analysis` — Algorithm 1 frequency statistics, band
  segmentation and gradient-based band saliency.
* :mod:`repro.core` — the DeepN-JPEG quantization-table design (piece-wise
  linear mapping) and the RM-HF / SAME-Q / JPEG baselines.
* :mod:`repro.power` — the wireless data-offloading energy model.
* :mod:`repro.experiments` — one module per figure of the evaluation.

Quickstart::

    from repro.core import DeepNJpeg
    from repro.data import generate_freqnet

    dataset = generate_freqnet()
    deepn = DeepNJpeg().fit(dataset)
    result = deepn.compress_dataset(dataset)
    print(result.compression_ratio, result.mean_psnr)
"""

__version__ = "1.0.0"

from repro.core import DeepNJpeg, DeepNJpegConfig
from repro.data import Dataset, FreqNetConfig, generate_freqnet
from repro.jpeg import QuantizationTable

__all__ = [
    "Dataset",
    "DeepNJpeg",
    "DeepNJpegConfig",
    "FreqNetConfig",
    "QuantizationTable",
    "__version__",
    "generate_freqnet",
]
