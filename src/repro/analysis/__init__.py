"""Frequency-domain analysis of image datasets.

Implements the statistical machinery behind DeepN-JPEG's quantization
table design:

* :mod:`repro.analysis.frequency` — Algorithm 1: block-wise DCT of the
  sampled images and the per-band standard deviation of the un-quantized
  coefficients.
* :mod:`repro.analysis.bands` — magnitude-based (DeepN-JPEG) and
  position-based (default JPEG) segmentation of the 64 bands into
  low/mid/high frequency groups.
* :mod:`repro.analysis.statistics` — Laplace/Gaussian fits of the
  coefficient distributions (Reininger & Gibson, 1983) used to justify
  the standard-deviation-as-energy argument.
* :mod:`repro.analysis.sensitivity` — the Eq. 2 gradient-based view of how
  much each frequency band contributes to a trained DNN's decision.
"""

from repro.analysis.bands import (
    BandSegmentation,
    magnitude_based_segmentation,
    position_based_segmentation,
)
from repro.analysis.frequency import FrequencyStatistics, analyze_dataset
from repro.analysis.sensitivity import frequency_band_saliency
from repro.analysis.statistics import fit_band_distribution

__all__ = [
    "BandSegmentation",
    "FrequencyStatistics",
    "analyze_dataset",
    "fit_band_distribution",
    "frequency_band_saliency",
    "magnitude_based_segmentation",
    "position_based_segmentation",
]
