"""Segmentation of the 64 DCT frequency bands into LF / MF / HF groups.

The paper divides the 64 bands into Low (6 bands), Middle (22 bands,
positions 7-28) and High (36 bands, positions 29-64) frequency groups, and
contrasts two ways of deciding which band belongs where:

* **magnitude based** (DeepN-JPEG): rank bands by the standard deviation
  of their DCT coefficients measured on the sampled dataset; the 6 bands
  with the largest standard deviation form the LF group, and so on.
* **position based** (default JPEG thinking): rank bands purely by their
  zig-zag position in the 8x8 grid.

Fig. 5 of the paper shows the magnitude-based grouping tolerates larger
quantization steps in the MF and HF groups at the same accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.frequency import FrequencyStatistics
from repro.jpeg.dct import BLOCK_SIZE
from repro.jpeg.zigzag import ZIGZAG_ORDER

#: Number of bands in each group, following the paper (Section 3.2.2),
#: which borrows the 6 / 22 / 36 split from the steganography literature.
LF_BAND_COUNT = 6
MF_BAND_COUNT = 22
HF_BAND_COUNT = 64 - LF_BAND_COUNT - MF_BAND_COUNT

_GROUPS = ("LF", "MF", "HF")


@dataclass(frozen=True)
class BandSegmentation:
    """Assignment of each of the 64 bands to the LF, MF or HF group.

    Attributes
    ----------
    groups:
        ``(8, 8)`` array of strings ``"LF"``, ``"MF"`` or ``"HF"``.
    method:
        ``"magnitude"`` or ``"position"``.
    """

    groups: np.ndarray
    method: str

    def __post_init__(self) -> None:
        groups = np.asarray(self.groups, dtype=object)
        if groups.shape != (BLOCK_SIZE, BLOCK_SIZE):
            raise ValueError(f"groups must be 8x8, got shape {groups.shape}")
        invalid = {g for g in groups.ravel()} - set(_GROUPS)
        if invalid:
            raise ValueError(f"invalid group labels: {invalid}")
        object.__setattr__(self, "groups", groups)

    def bands_in_group(self, group: str) -> "list[tuple]":
        """All ``(row, col)`` bands assigned to ``group``."""
        if group not in _GROUPS:
            raise ValueError(f"group must be one of {_GROUPS}, got {group!r}")
        rows, cols = np.nonzero(self.groups == group)
        return [(int(r), int(c)) for r, c in zip(rows, cols)]

    def group_of(self, row: int, col: int) -> str:
        """Group label of band ``(row, col)``."""
        return str(self.groups[row, col])

    def mask(self, group: str) -> np.ndarray:
        """Boolean 8x8 mask of the bands in ``group``."""
        if group not in _GROUPS:
            raise ValueError(f"group must be one of {_GROUPS}, got {group!r}")
        return self.groups == group

    def counts(self) -> dict:
        """Number of bands per group."""
        return {group: int((self.groups == group).sum()) for group in _GROUPS}

    def to_json(self) -> dict:
        """JSON-able payload round-tripping the segmentation exactly."""
        return {
            "groups": [[str(g) for g in row] for row in self.groups],
            "method": self.method,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "BandSegmentation":
        """Rebuild a segmentation from a :meth:`to_json` payload."""
        return cls(
            groups=np.asarray(payload["groups"], dtype=object),
            method=str(payload["method"]),
        )


def magnitude_based_segmentation(
    statistics: FrequencyStatistics,
    lf_count: int = LF_BAND_COUNT,
    mf_count: int = MF_BAND_COUNT,
) -> BandSegmentation:
    """DeepN-JPEG grouping: rank bands by coefficient standard deviation."""
    _check_counts(lf_count, mf_count)
    groups = np.empty((BLOCK_SIZE, BLOCK_SIZE), dtype=object)
    ranked = statistics.ranked_bands()
    for rank, (row, col) in enumerate(ranked):
        groups[row, col] = _group_for_rank(rank, lf_count, mf_count)
    return BandSegmentation(groups=groups, method="magnitude")


def position_based_segmentation(
    lf_count: int = LF_BAND_COUNT, mf_count: int = MF_BAND_COUNT
) -> BandSegmentation:
    """Default-JPEG grouping: rank bands by zig-zag position."""
    _check_counts(lf_count, mf_count)
    groups = np.empty((BLOCK_SIZE, BLOCK_SIZE), dtype=object)
    for rank, flat_index in enumerate(ZIGZAG_ORDER):
        row, col = divmod(int(flat_index), BLOCK_SIZE)
        groups[row, col] = _group_for_rank(rank, lf_count, mf_count)
    return BandSegmentation(groups=groups, method="position")


def segmentation_agreement(
    first: BandSegmentation, second: BandSegmentation
) -> float:
    """Fraction of the 64 bands assigned to the same group by both methods."""
    return float((first.groups == second.groups).mean())


def _group_for_rank(rank: int, lf_count: int, mf_count: int) -> str:
    if rank < lf_count:
        return "LF"
    if rank < lf_count + mf_count:
        return "MF"
    return "HF"


def _check_counts(lf_count: int, mf_count: int) -> None:
    if lf_count < 1 or mf_count < 1:
        raise ValueError("group sizes must be positive")
    if lf_count + mf_count >= BLOCK_SIZE * BLOCK_SIZE:
        raise ValueError("LF + MF groups must leave room for the HF group")
