"""Algorithm 1: frequency component analysis of a sampled dataset.

Every sampled image is level-shifted, partitioned into 8x8 blocks and
transformed with the block DCT.  For each of the 64 frequency bands the
standard deviation of the un-quantized coefficients across *all* blocks of
*all* sampled images is computed.  A band's standard deviation measures
its energy (Reininger & Gibson, 1983) and, per Section 3.1 of the paper,
its contribution to DNN feature learning — it is the signal the
piece-wise linear mapping converts into quantization steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.jpeg.blocks import level_shift, partition_blocks_batch
from repro.jpeg.dct import BLOCK_SIZE, block_dct2d
from repro.jpeg.zigzag import ZIGZAG_ORDER


@dataclass(frozen=True)
class FrequencyStatistics:
    """Per-band statistics of the block-DCT coefficients of a dataset.

    Attributes
    ----------
    std:
        ``(8, 8)`` array; ``std[i, j]`` is the standard deviation of the
        DCT coefficient at frequency band ``(i, j)``.
    mean:
        ``(8, 8)`` array of per-band means (close to zero for AC bands).
    block_count:
        Number of 8x8 blocks that entered the statistics.
    image_count:
        Number of images that were analysed.
    """

    std: np.ndarray
    mean: np.ndarray
    block_count: int
    image_count: int

    def __post_init__(self) -> None:
        for name in ("std", "mean"):
            value = np.asarray(getattr(self, name), dtype=np.float64)
            if value.shape != (BLOCK_SIZE, BLOCK_SIZE):
                raise ValueError(f"{name} must be 8x8, got {value.shape}")
            object.__setattr__(self, name, value)
        if self.block_count <= 0 or self.image_count <= 0:
            raise ValueError("block_count and image_count must be positive")

    def std_zigzag(self) -> np.ndarray:
        """The 64 standard deviations ordered by zig-zag position."""
        return self.std.reshape(-1)[ZIGZAG_ORDER]

    def ranked_bands(self) -> "list[tuple]":
        """Bands ``(i, j)`` sorted by descending standard deviation."""
        flat_order = np.argsort(self.std, axis=None)[::-1]
        return [
            (int(index // BLOCK_SIZE), int(index % BLOCK_SIZE))
            for index in flat_order
        ]

    def rank_of_band(self, row: int, col: int) -> int:
        """0-based rank of band ``(row, col)`` in descending std order.

        The ranking is computed once and cached (the statistics are
        frozen), so repeated per-band lookups are O(1) instead of
        re-sorting all 64 bands on every call.
        """
        ranks = getattr(self, "_band_ranks", None)
        if ranks is None:
            ranks = {
                band: rank for rank, band in enumerate(self.ranked_bands())
            }
            object.__setattr__(self, "_band_ranks", ranks)
        try:
            return ranks[(row, col)]
        except KeyError:
            raise ValueError(f"({row}, {col}) is not a frequency band") from None

    def to_json(self) -> dict:
        """JSON-able payload round-tripping the statistics exactly.

        Floats serialize via ``repr``-shortest JSON numbers, which
        Python parses back to the identical float64 bit patterns.
        """
        return {
            "std": [[float(v) for v in row] for row in self.std],
            "mean": [[float(v) for v in row] for row in self.mean],
            "block_count": int(self.block_count),
            "image_count": int(self.image_count),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FrequencyStatistics":
        """Rebuild statistics from a :meth:`to_json` payload."""
        return cls(
            std=np.asarray(payload["std"], dtype=np.float64),
            mean=np.asarray(payload["mean"], dtype=np.float64),
            block_count=int(payload["block_count"]),
            image_count=int(payload["image_count"]),
        )

    def ac_energy_fraction_above(self, zigzag_position: int) -> float:
        """Fraction of AC energy (variance) in zig-zag bands >= ``position``."""
        if not 1 <= zigzag_position < 64:
            raise ValueError("zigzag_position must be in [1, 63]")
        variances = self.std_zigzag() ** 2
        ac = variances[1:]
        tail = variances[zigzag_position:]
        total = float(ac.sum())
        if total == 0.0:
            return 0.0
        return float(tail.sum() / total)


def coefficients_by_band(images: np.ndarray) -> np.ndarray:
    """Block-DCT coefficients of ``images`` grouped by frequency band.

    Parameters
    ----------
    images:
        Grayscale images ``(N, H, W)`` with intensities in [0, 255].

    Returns
    -------
    numpy.ndarray
        Array of shape ``(total_blocks, 8, 8)`` holding the un-quantized
        coefficients of every block of every image.
    """
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 3:
        raise ValueError(f"expected (N, H, W) grayscale images, got {images.shape}")
    # One batched partition + DCT over every block of every image instead
    # of a per-image Python loop.
    blocked, (rows, cols) = partition_blocks_batch(level_shift(images))
    blocks = blocked.reshape(
        images.shape[0] * rows * cols, BLOCK_SIZE, BLOCK_SIZE
    )
    return block_dct2d(blocks)


def analyze_images(images: np.ndarray) -> FrequencyStatistics:
    """Run the frequency component analysis on raw grayscale images."""
    coefficients = coefficients_by_band(images)
    return FrequencyStatistics(
        std=coefficients.std(axis=0),
        mean=coefficients.mean(axis=0),
        block_count=int(coefficients.shape[0]),
        image_count=int(np.asarray(images).shape[0]),
    )


def analyze_dataset(
    dataset: Dataset, interval: int = 1, max_per_class: Optional[int] = None
) -> FrequencyStatistics:
    """Algorithm 1 end-to-end: sample each class, then analyse the sample.

    ``interval`` and ``max_per_class`` are forwarded to
    :func:`repro.data.sampling.sample_class_representatives`.
    For colour datasets the analysis runs on the luma channel, matching
    how the quantization table is shared between components.
    """
    from repro.data.sampling import sample_class_representatives

    sampled = sample_class_representatives(
        dataset, interval=interval, max_per_class=max_per_class
    )
    images = sampled.images
    if images.ndim == 4:
        from repro.jpeg.color import rgb_to_luma

        # One vectorized luma pass over the whole stack instead of a
        # per-image loop (and without materializing the chroma planes).
        images = rgb_to_luma(images)
    return analyze_images(images)
