"""``repro lint``: an AST-based checker for the repo's own invariants.

Nine PRs of growth rest on correctness rules that, until now, existed
only as reviewer discipline: every fast path keeps a bit-exact scalar
reference, runtime knobs never leak into store addresses, plan kernels
stay allocation-free after warmup, worker-importable code draws
randomness from :class:`~numpy.random.SeedSequence` flows, shared-memory
segments always reach an unlink path, and failure envelopes/wire headers
stay JSON/pickle-safe.  This module is the *framework* that mechanizes
those rules; the rules themselves live in
:mod:`repro.analysis.lint_rules` (and ``INVARIANTS.md`` states each
invariant with its rationale).

Architecture
------------

* :class:`Checker` — base class of a per-file rule: receives a parsed
  :class:`SourceFile` (source text + AST + suppression table) and yields
  :class:`Finding`\\ s.  ``paths`` scopes which repo-relative prefixes
  the rule enforces during discovery; files named explicitly on the
  command line are checked by every selected rule regardless (that is
  what lets the fixture tests exercise rules on out-of-tree snippets).
* :class:`ProjectChecker` — a repo-level rule (e.g. the parity-reference
  guard R1 cross-references modules *and* test files); receives the
  whole :class:`Project`.
* :func:`run_lint` — discovery over ``src/`` and ``tests/`` (or an
  explicit/``--changed`` file list), rule dispatch, suppression
  filtering, deterministic ordering.

Suppression
-----------

A finding is silenced by a same-line comment::

    some_violation()  # repro: lint-ignore[R3] fallback is parent-seeded

The bracket names one or more rule ids (comma-separated); the trailing
free text is the mandatory human reason.  ``--strict`` additionally
reports suppression hygiene: unknown rule ids, missing reasons, and
ignores that no longer suppress anything (rule id ``LINT-IGNORE``).

Exit statuses: ``0`` clean, ``5`` findings, ``2`` usage errors —
distinct from the CLI's existing 3 (sweep failure) and 4 (bench
regression).
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import os
import re
import subprocess
import sys
import tokenize
from dataclasses import dataclass
from typing import Iterator, Optional

#: Exit status of a lint run that reported findings.
EXIT_FINDINGS = 5

#: Repo-relative directories scanned when no explicit paths are given.
DEFAULT_ROOTS = ("src", "tests")

#: Path fragments never discovered: the rule fixtures are known-bad on
#: purpose, so self-linting the repo must not trip over them.
EXCLUDED_FRAGMENTS = ("tests/analysis/fixtures",)

#: Rule id attached to files the parser rejects.
SYNTAX_RULE = "LINT-SYNTAX"

#: Rule id of suppression-hygiene findings (reported under ``--strict``).
IGNORE_RULE = "LINT-IGNORE"

_IGNORE_RE = re.compile(
    r"repro:\s*lint-ignore\[(?P<rules>[A-Za-z0-9_.\-, ]+)\]"
    r"(?:\s+(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One reported violation, addressed to a repo-relative line."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Finding":
        return cls(
            rule=payload["rule"],
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            message=payload["message"],
        )


@dataclass
class Suppression:
    """One ``# repro: lint-ignore[...]`` comment."""

    line: int
    rules: tuple
    reason: str
    used: bool = False


def parse_suppressions(source: str) -> "dict[int, Suppression]":
    """The per-line suppression table of ``source``.

    Comments are found with :mod:`tokenize` (never inside string
    literals — this file's own docstring would otherwise register one).
    An unreadable file yields an empty table; the parse error surfaces
    through the AST pass instead.
    """
    table: "dict[int, Suppression]" = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _IGNORE_RE.search(token.string)
            if not match:
                continue
            rules = tuple(
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            table[token.start[0]] = Suppression(
                line=token.start[0],
                rules=rules,
                reason=(match.group("reason") or "").strip(),
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return table


class SourceFile:
    """A lazily parsed file under check."""

    def __init__(self, root: str, relpath: str) -> None:
        self.root = root
        self.relpath = relpath.replace(os.sep, "/")
        self._source: Optional[str] = None
        self._tree: Optional[ast.AST] = None
        self._parse_error: Optional[SyntaxError] = None
        self._suppressions: Optional[dict] = None

    @property
    def abspath(self) -> str:
        return os.path.join(self.root, self.relpath)

    @property
    def source(self) -> str:
        if self._source is None:
            with open(self.abspath, "r", encoding="utf-8") as handle:
                self._source = handle.read()
        return self._source

    @property
    def tree(self) -> Optional[ast.AST]:
        """The module AST, or ``None`` when the file does not parse."""
        if self._tree is None and self._parse_error is None:
            try:
                self._tree = ast.parse(self.source, filename=self.relpath)
            except SyntaxError as error:
                self._parse_error = error
        return self._tree

    @property
    def parse_error(self) -> Optional[SyntaxError]:
        self.tree  # noqa: B018 — force the parse attempt
        return self._parse_error

    @property
    def suppressions(self) -> "dict[int, Suppression]":
        if self._suppressions is None:
            self._suppressions = parse_suppressions(self.source)
        return self._suppressions


class Project:
    """The repo under check: a root plus a cache of parsed files."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self._files: "dict[str, SourceFile]" = {}

    def file(self, relpath: str) -> SourceFile:
        relpath = relpath.replace(os.sep, "/")
        if relpath not in self._files:
            self._files[relpath] = SourceFile(self.root, relpath)
        return self._files[relpath]

    def module(self, relpath: str) -> Optional[SourceFile]:
        """The file at ``relpath``, or ``None`` when it does not exist."""
        if not os.path.isfile(os.path.join(self.root, relpath)):
            return None
        return self.file(relpath)

    def test_files(self) -> "list[SourceFile]":
        """Every Python file under ``tests/`` (fixtures excluded)."""
        return [
            self.file(relpath)
            for relpath in discover_files(self.root, roots=("tests",))
        ]


class Checker:
    """Base class of a per-file rule."""

    #: Stable rule id (``R1`` .. ``R6`` for the project rules).
    rule_id: str = "R?"
    #: Short kebab-case name shown in ``--list-rules``.
    name: str = "unnamed"
    #: One-line statement of the enforced invariant.
    description: str = ""
    #: Repo-relative path prefixes the rule enforces during discovery.
    paths: tuple = ("src/",)
    #: Whether :meth:`check_project` replaces per-file checking.
    project_wide: bool = False

    def applies_to(self, relpath: str) -> bool:
        return any(relpath.startswith(prefix) for prefix in self.paths)

    def check(self, module: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceFile, node, message: str) -> Finding:
        """A :class:`Finding` addressed to ``node`` (or a bare line int)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = node.lineno, getattr(node, "col_offset", 0)
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
        )


class ProjectChecker(Checker):
    """Base class of a repo-level rule."""

    project_wide = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, module: SourceFile) -> Iterator[Finding]:
        return iter(())


def discover_files(
    root: str, roots: tuple = DEFAULT_ROOTS
) -> "list[str]":
    """Repo-relative Python files under ``roots``, sorted, fixtures excluded."""
    found = []
    for base in roots:
        base_dir = os.path.join(root, base)
        if not os.path.isdir(base_dir):
            continue
        for dirpath, dirnames, filenames in os.walk(base_dir):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                relpath = os.path.relpath(
                    os.path.join(dirpath, filename), root
                ).replace(os.sep, "/")
                if any(part in relpath for part in EXCLUDED_FRAGMENTS):
                    continue
                found.append(relpath)
    return sorted(found)


def changed_files(
    root: str, base: Optional[str] = None, roots: tuple = DEFAULT_ROOTS
) -> "list[str]":
    """Git-diff-scoped discovery: the Python files this change touches.

    The union of (a) commits since the merge base with ``base`` when one
    is given, (b) uncommitted working-tree changes, and (c) untracked
    files — filtered to existing ``.py`` files under ``roots``.  Keeps
    ``repro lint --changed`` proportional to the diff, not the tree.
    """
    commands = [["git", "diff", "--name-only", "-z", "HEAD", "--"]]
    if base:
        commands.append(
            ["git", "diff", "--name-only", "-z", f"{base}...HEAD", "--"]
        )
    commands.append(
        ["git", "ls-files", "--others", "--exclude-standard", "-z"]
    )
    names: "set[str]" = set()
    for command in commands:
        result = subprocess.run(
            command, cwd=root, capture_output=True, text=True, check=True
        )
        names.update(part for part in result.stdout.split("\0") if part)
    prefixes = tuple(base.rstrip("/") + "/" for base in roots)
    selected = [
        name.replace(os.sep, "/")
        for name in names
        if name.endswith(".py")
        and name.replace(os.sep, "/").startswith(prefixes)
        and not any(
            part in name.replace(os.sep, "/") for part in EXCLUDED_FRAGMENTS
        )
        and os.path.isfile(os.path.join(root, name))
    ]
    return sorted(selected)


def _syntax_finding(module: SourceFile) -> Finding:
    error = module.parse_error
    return Finding(
        rule=SYNTAX_RULE,
        path=module.relpath,
        line=error.lineno or 1,
        col=(error.offset or 1) - 1,
        message=f"file does not parse: {error.msg}",
    )


def _apply_suppressions(
    findings: "list[Finding]", project: Project
) -> "list[Finding]":
    kept = []
    for item in findings:
        if item.rule in (SYNTAX_RULE, IGNORE_RULE):
            kept.append(item)  # meta findings are not suppressible
            continue
        suppression = project.file(item.path).suppressions.get(item.line)
        if suppression is not None and item.rule in suppression.rules:
            suppression.used = True
            continue
        kept.append(item)
    return kept


def _suppression_hygiene(
    project: Project,
    files: "list[SourceFile]",
    known_rules: "set[str]",
) -> "list[Finding]":
    findings = []
    for module in files:
        for suppression in module.suppressions.values():
            unknown = [
                rule for rule in suppression.rules if rule not in known_rules
            ]
            for rule in unknown:
                findings.append(Finding(
                    rule=IGNORE_RULE,
                    path=module.relpath,
                    line=suppression.line,
                    col=0,
                    message=f"lint-ignore names unknown rule {rule!r}",
                ))
            if not suppression.reason:
                findings.append(Finding(
                    rule=IGNORE_RULE,
                    path=module.relpath,
                    line=suppression.line,
                    col=0,
                    message="lint-ignore requires a reason after the bracket",
                ))
            if not suppression.used and not unknown:
                findings.append(Finding(
                    rule=IGNORE_RULE,
                    path=module.relpath,
                    line=suppression.line,
                    col=0,
                    message=(
                        "lint-ignore suppresses nothing on this line; "
                        "remove it"
                    ),
                ))
    return findings


def run_lint(
    root: str,
    files: Optional["list[str]"] = None,
    rules: Optional["list[Checker]"] = None,
    strict: bool = False,
) -> "list[Finding]":
    """Run ``rules`` over the project at ``root``.

    ``files`` is an explicit repo-relative file list (``--changed`` or
    positional paths); ``None`` discovers ``src/`` and ``tests/``.
    Explicitly listed files bypass each rule's ``paths`` scoping so
    fixtures and one-off snippets can be linted directly.
    """
    if rules is None:
        from repro.analysis.lint_rules import all_checkers

        rules = all_checkers()
    project = Project(root)
    explicit = files is not None
    relpaths = files if explicit else discover_files(project.root)
    modules = [project.file(relpath) for relpath in relpaths]

    findings: "list[Finding]" = []
    checked: "list[SourceFile]" = []
    for module in modules:
        if module.parse_error is not None:
            findings.append(_syntax_finding(module))
            continue
        checked.append(module)
        for checker in rules:
            if checker.project_wide:
                continue
            if not explicit and not checker.applies_to(module.relpath):
                continue
            findings.extend(checker.check(module))
    for checker in rules:
        if checker.project_wide:
            findings.extend(checker.check_project(project))

    findings = _apply_suppressions(findings, project)
    if strict:
        known = {checker.rule_id for checker in rules}
        findings.extend(_suppression_hygiene(project, checked, known))
    return sorted(findings, key=Finding.sort_key)


def find_root(start: Optional[str] = None) -> str:
    """Walk up from ``start`` to the directory containing ``src/repro``."""
    path = os.path.abspath(start or os.getcwd())
    while True:
        if os.path.isdir(os.path.join(path, "src", "repro")):
            return path
        parent = os.path.dirname(path)
        if parent == path:
            return os.path.abspath(start or os.getcwd())
        path = parent


def json_payload(
    findings: "list[Finding]", rules: "list[Checker]"
) -> dict:
    """The machine-readable report ``repro lint --json`` emits."""
    return {
        "count": len(findings),
        "findings": [item.to_json() for item in findings],
        "rules": {
            checker.rule_id: {
                "name": checker.name,
                "description": checker.description,
            }
            for checker in rules
        },
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Check the repo against its own correctness invariants "
            "(see INVARIANTS.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="explicit files to lint (default: discover src/ and tests/)",
    )
    parser.add_argument(
        "--root", default=None,
        help="project root (default: walk up from the cwd to src/repro)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only files the git diff touches (working tree, "
        "commits past --base, and untracked files)",
    )
    parser.add_argument(
        "--base", default=None,
        help="merge-base ref for --changed (e.g. origin/main)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also report suppression hygiene: unknown rule ids, "
        "missing reasons, and ignores that suppress nothing",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the findings as JSON on stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true", dest="list_rules",
        help="list the active rules and exit",
    )
    return parser


def main(argv: Optional["list[str]"] = None) -> int:
    from repro.analysis.lint_rules import all_checkers

    arguments = build_parser().parse_args(argv)
    rules = all_checkers()
    if arguments.select:
        wanted = {part.strip() for part in arguments.select.split(",")}
        known = {checker.rule_id for checker in rules}
        unknown = sorted(wanted - known)
        if unknown:
            print(
                f"error: unknown rule id(s) {unknown}; "
                f"known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
        rules = [
            checker for checker in rules if checker.rule_id in wanted
        ]
    if arguments.list_rules:
        for checker in rules:
            print(
                f"{checker.rule_id}  {checker.name}: {checker.description}"
            )
        return 0

    root = os.path.abspath(arguments.root) if arguments.root else find_root()
    files: Optional["list[str]"] = None
    if arguments.paths:
        files = []
        for path in arguments.paths:
            abspath = os.path.abspath(path)
            if not os.path.isfile(abspath):
                print(f"error: no such file: {path}", file=sys.stderr)
                return 2
            files.append(os.path.relpath(abspath, root).replace(os.sep, "/"))
        if arguments.changed:
            print(
                "error: --changed and explicit paths are mutually exclusive",
                file=sys.stderr,
            )
            return 2
    elif arguments.changed:
        try:
            files = changed_files(root, base=arguments.base)
        except (subprocess.CalledProcessError, OSError) as error:
            print(f"error: git discovery failed: {error}", file=sys.stderr)
            return 2

    findings = run_lint(
        root, files=files, rules=rules, strict=arguments.strict
    )
    if arguments.as_json:
        json.dump(json_payload(findings, rules), sys.stdout, indent=2)
        print()
    else:
        for item in findings:
            print(item.format())
        scope = (
            f"{len(files)} changed/selected file(s)"
            if files is not None else "src/ and tests/"
        )
        summary = (
            f"repro lint: {len(findings)} finding(s) over {scope} "
            f"({len(rules)} rule(s) active)"
        )
        print(summary, file=sys.stderr)
    return EXIT_FINDINGS if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
