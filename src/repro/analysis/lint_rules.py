"""The project-specific lint rules: this repo's invariants, mechanized.

Each rule guards one correctness rule the codebase has relied on since
the PR that introduced it (rationale and history in ``INVARIANTS.md``):

====  ====================  ==============================================
id    name                  invariant
====  ====================  ==============================================
R1    parity-reference      every registered fast path keeps its bit-exact
                            scalar reference and is pinned by a parity test
R2    task-key-hygiene      every ``ExperimentConfig`` field is classified:
                            normalised in ``task_key()`` (runtime knob) or
                            declared numbers-affecting — never unclassified
R3    worker-seeding        worker-importable code never touches legacy
                            ``np.random`` globals or unseeded
                            ``default_rng()``; randomness flows from
                            ``SeedSequence``/``spawn_seeds``
R4    plan-kernel-alloc     plan kernel closures (``step`` inside a
                            ``plan_*``/``_plan*`` hook) are allocation-free:
                            no allocating numpy constructors, no ufuncs
                            without ``out=``, no ``.astype``/``.copy``
R5    shm-lifetime          a module creating shared-memory segments must
                            also reach an unlink/sweep path
R6    envelope-wire-safety  ``TaskFailure`` envelopes carry strings, never
                            bare exception objects; wire frame headers use
                            literal string keys
====  ====================  ==============================================

The rules are deliberately declarative where possible — the fast-path
table of R1 and the numbers-affecting allowlist of R2 are the points a
reviewer edits when the architecture legitimately changes, and the lint
failure is the prompt to think about it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.analysis.lint import (
    Checker,
    Finding,
    Project,
    ProjectChecker,
    SourceFile,
)


def _defined_names(tree: ast.AST) -> "set[str]":
    """Every function/class name defined anywhere in ``tree``."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    }


def _call_name(func: ast.expr) -> Optional[str]:
    """The trailing name of a call target (``x.y.z(...)`` -> ``"z"``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _word_in(name: str, text: str) -> bool:
    return re.search(rf"\b{re.escape(name)}\b", text) is not None


# ----------------------------------------------------------------------
# R1 — parity-reference guard.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FastPathSpec:
    """One registered fast path and the reference that pins it.

    ``fast_defs`` must be defined in ``fast_module`` and
    ``reference_defs`` in ``reference_module``; at least one test file
    must name one of ``test_fast_names`` *and* one of
    ``test_reference_names`` (word-boundary match) — that is the parity
    test.  Renaming or deleting any of these fails R1, which is the
    point: the lint failure is where the reviewer decides the parity
    story for the new shape of the code.
    """

    key: str
    fast_module: str
    fast_defs: tuple
    reference_module: str
    reference_defs: tuple
    test_fast_names: tuple
    test_reference_names: tuple


#: The registered fast paths.  Editing this table is the sanctioned way
#: to teach R1 about a new fast path (or a renamed reference).
FAST_PATHS = (
    FastPathSpec(
        key="fsm-decode",
        fast_module="src/repro/jpeg/fsm_decode.py",
        fast_defs=("decode_streams",),
        reference_module="src/repro/jpeg/codec.py",
        reference_defs=("decode_to_zigzag_walk",),
        test_fast_names=("decode_streams",),
        test_reference_names=("decode_to_zigzag_walk",),
    ),
    FastPathSpec(
        key="entropy-code",
        fast_module="src/repro/jpeg/codec.py",
        fast_defs=("entropy_code", "_ChannelCoder"),
        reference_module="src/repro/jpeg/codec.py",
        reference_defs=("encode_scalar", "decode_scalar"),
        test_fast_names=("_ChannelCoder", "entropy_code"),
        test_reference_names=("encode_scalar", "decode_scalar"),
    ),
    FastPathSpec(
        key="inference-plan",
        fast_module="src/repro/nn/engine.py",
        fast_defs=("InferencePlan", "PlanBuilder"),
        reference_module="src/repro/nn/base.py",
        reference_defs=("predict_proba_dynamic",),
        test_fast_names=("InferencePlan", "PlanError", "engine"),
        test_reference_names=("predict_proba_dynamic",),
    ),
    FastPathSpec(
        key="im2col",
        fast_module="src/repro/nn/im2col.py",
        fast_defs=("im2col", "col2im"),
        reference_module="src/repro/nn/im2col.py",
        reference_defs=("im2col_scalar", "col2im_scalar"),
        test_fast_names=("im2col",),
        test_reference_names=("im2col_scalar", "col2im_scalar"),
    ),
)


class ParityReferenceRule(ProjectChecker):
    """R1: every registered fast path keeps its scalar reference."""

    rule_id = "R1"
    name = "parity-reference"
    description = (
        "a registered fast path must keep its bit-exact scalar reference "
        "and be pinned by at least one parity test"
    )
    paths = ("src/",)

    specs = FAST_PATHS

    def check_project(self, project: Project) -> Iterator[Finding]:
        test_sources = None
        for spec in self.specs:
            fast = project.module(spec.fast_module)
            if fast is None:
                yield Finding(
                    rule=self.rule_id, path=spec.fast_module, line=1, col=0,
                    message=(
                        f"[{spec.key}] declared fast-path module is missing; "
                        f"update the FAST_PATHS table if it moved"
                    ),
                )
                continue
            if fast.tree is None:
                continue  # unparsable files are reported as LINT-SYNTAX
            defined = _defined_names(fast.tree)
            for symbol in spec.fast_defs:
                if symbol not in defined:
                    yield Finding(
                        rule=self.rule_id, path=spec.fast_module,
                        line=1, col=0,
                        message=(
                            f"[{spec.key}] fast-path symbol {symbol!r} is "
                            f"no longer defined here; update FAST_PATHS if "
                            f"it moved"
                        ),
                    )
            reference = project.module(spec.reference_module)
            if reference is None or reference.tree is None:
                yield Finding(
                    rule=self.rule_id, path=spec.reference_module,
                    line=1, col=0,
                    message=(
                        f"[{spec.key}] reference module is missing; the "
                        f"fast path has lost its scalar reference"
                    ),
                )
                continue
            reference_defined = _defined_names(reference.tree)
            missing = [
                symbol for symbol in spec.reference_defs
                if symbol not in reference_defined
            ]
            for symbol in missing:
                yield Finding(
                    rule=self.rule_id, path=spec.reference_module,
                    line=1, col=0,
                    message=(
                        f"[{spec.key}] scalar reference {symbol!r} was "
                        f"removed; parity is sacred — every fast path keeps "
                        f"its bit-exact reference"
                    ),
                )
            if test_sources is None:
                test_sources = [
                    (module.relpath, module.source)
                    for module in project.test_files()
                ]
            pinned = any(
                any(_word_in(name, source) for name in spec.test_fast_names)
                and any(
                    _word_in(name, source)
                    for name in spec.test_reference_names
                )
                for _, source in test_sources
            )
            if not pinned:
                yield Finding(
                    rule=self.rule_id, path=spec.fast_module, line=1, col=0,
                    message=(
                        f"[{spec.key}] no test under tests/ names both the "
                        f"fast path ({'/'.join(spec.test_fast_names)}) and "
                        f"its reference "
                        f"({'/'.join(spec.test_reference_names)}); add or "
                        f"restore the parity test"
                    ),
                )


# ----------------------------------------------------------------------
# R2 — task-key hygiene.
# ----------------------------------------------------------------------

#: Fields that legitimately change experiment numbers (and therefore
#: store addresses).  A new ``ExperimentConfig`` field must either be
#: normalised away in ``task_key()`` (a pure runtime knob) or added
#: here — R2 refuses unclassified fields, so a knob can neither
#: silently change store addresses nor silently fail to.
NUMBERS_AFFECTING_FIELDS = frozenset({
    "images_per_class",
    "image_size",
    "noise_std",
    "test_fraction",
    "epochs",
    "batch_size",
    "learning_rate",
    "model_name",
    "compute_dtype",
    "dataset_seed",
    "split_seed",
    "model_seed",
    "sampling_interval",
    "storage_dtype",
})


class TaskKeyHygieneRule(Checker):
    """R2: every ``ExperimentConfig`` field is explicitly classified."""

    rule_id = "R2"
    name = "task-key-hygiene"
    description = (
        "every ExperimentConfig field must be either normalised in "
        "task_key() or declared in the numbers-affecting allowlist"
    )
    paths = ("src/",)

    #: Overridable for fixtures; the repo allowlist is module-level so
    #: editing it is a reviewed diff.
    allowlist = NUMBERS_AFFECTING_FIELDS

    def check(self, module: SourceFile) -> Iterator[Finding]:
        if module.tree is None:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name == "ExperimentConfig"
            ):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: SourceFile, node: ast.ClassDef
    ) -> Iterator[Finding]:
        fields = {}
        task_key = None
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                annotation = ast.dump(statement.annotation)
                if "ClassVar" in annotation:
                    continue
                fields[statement.target.id] = statement
            elif (
                isinstance(statement, ast.FunctionDef)
                and statement.name == "task_key"
            ):
                task_key = statement
        if task_key is None:
            yield self.finding(
                module, node,
                "ExperimentConfig must define task_key() normalising its "
                "runtime knobs",
            )
            return
        normalised, opaque = self._normalised_fields(task_key)
        if opaque:
            yield self.finding(
                module, task_key,
                "task_key() must normalise with literal keyword arguments "
                "to replace(); **kwargs cannot be cross-referenced",
            )
            return
        if normalised is None:
            yield self.finding(
                module, task_key,
                "task_key() does not call replace(); the runtime knobs are "
                "not being normalised",
            )
            return
        for name in sorted(normalised - set(fields)):
            yield self.finding(
                module, task_key,
                f"task_key() normalises {name!r}, which is not an "
                f"ExperimentConfig field",
            )
        for name, statement in fields.items():
            in_allowlist = name in self.allowlist
            is_normalised = name in normalised
            if in_allowlist and is_normalised:
                yield self.finding(
                    module, statement,
                    f"field {name!r} is both normalised in task_key() and "
                    f"declared numbers-affecting; it must be exactly one",
                )
            elif not in_allowlist and not is_normalised:
                yield self.finding(
                    module, statement,
                    f"field {name!r} is unclassified: normalise it in "
                    f"task_key() (runtime knob) or add it to the "
                    f"numbers-affecting allowlist "
                    f"(lint_rules.NUMBERS_AFFECTING_FIELDS)",
                )
        for name in sorted(self.allowlist - set(fields)):
            yield self.finding(
                module, node,
                f"allowlisted field {name!r} is not an ExperimentConfig "
                f"field; remove it from NUMBERS_AFFECTING_FIELDS",
            )

    @staticmethod
    def _normalised_fields(task_key: ast.FunctionDef):
        """Keyword names of the ``replace(self, ...)`` call, if any."""
        normalised = None
        opaque = False
        for node in ast.walk(task_key):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node.func) != "replace":
                continue
            names = set()
            for keyword in node.keywords:
                if keyword.arg is None:
                    opaque = True
                else:
                    names.add(keyword.arg)
            normalised = names if normalised is None else normalised | names
        return normalised, opaque


# ----------------------------------------------------------------------
# R3 — fork/worker seeding discipline.
# ----------------------------------------------------------------------

#: ``np.random`` attributes that are legitimate in worker-importable
#: code: the modern generator constructors and seeding types.  Anything
#: else on the module is the legacy global-state API.
_BLESSED_RANDOM_ATTRS = frozenset({
    "default_rng",
    "SeedSequence",
    "Generator",
    "BitGenerator",
    "PCG64",
    "Philox",
    "SFC64",
    "MT19937",
})


class _NumpyAliasVisitor(ast.NodeVisitor):
    """Track how ``numpy`` and ``numpy.random`` are bound in a module."""

    def __init__(self) -> None:
        self.numpy_names: "set[str]" = set()
        self.random_names: "set[str]" = set()
        self.direct: "dict[str, str]" = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                self.numpy_names.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.random_names.add(alias.asname)
                else:
                    self.numpy_names.add("numpy")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.random_names.add(alias.asname or "random")
        elif node.module == "numpy.random":
            for alias in node.names:
                self.direct[alias.asname or alias.name] = alias.name


def _np_random_symbol(
    func: ast.expr, aliases: _NumpyAliasVisitor
) -> Optional[str]:
    """The ``numpy.random`` attribute a call targets, or ``None``."""
    if isinstance(func, ast.Name):
        return aliases.direct.get(func.id)
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name) and value.id in aliases.random_names:
        return func.attr
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in aliases.numpy_names
    ):
        return func.attr
    return None


class WorkerSeedingRule(Checker):
    """R3: worker-importable randomness flows from ``SeedSequence``."""

    rule_id = "R3"
    name = "worker-seeding"
    description = (
        "no legacy np.random globals and no unseeded default_rng() in "
        "worker-importable code; seed via spawn_seeds/SeedSequence"
    )
    paths = ("src/",)

    def check(self, module: SourceFile) -> Iterator[Finding]:
        if module.tree is None:
            return
        aliases = _NumpyAliasVisitor()
        aliases.visit(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            symbol = _np_random_symbol(node.func, aliases)
            if symbol is None:
                continue
            if symbol == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        "unseeded default_rng() in worker-importable code: "
                        "seed it from spawn_seeds/SeedSequence (or thread "
                        "an explicit rng through)",
                    )
            elif symbol not in _BLESSED_RANDOM_ATTRS:
                yield self.finding(
                    module, node,
                    f"legacy np.random.{symbol}() shares global RNG state "
                    f"across forked workers; use a Generator seeded from "
                    f"spawn_seeds/SeedSequence",
                )


# ----------------------------------------------------------------------
# R4 — zero-allocation plan kernels.
# ----------------------------------------------------------------------

#: numpy constructors that always allocate a fresh data buffer.
_ALLOCATING_CALLS = frozenset({
    "empty", "zeros", "ones", "full",
    "empty_like", "zeros_like", "ones_like", "full_like",
    "array", "asarray", "ascontiguousarray", "asfortranarray",
    "arange", "linspace",
    "concatenate", "stack", "hstack", "vstack", "dstack", "column_stack",
    "tile", "repeat", "pad", "copy", "where", "outer", "kron", "meshgrid",
})

#: numpy functions a kernel may call only with an explicit ``out=``
#: destination (arena slot or scratch); without it they allocate the
#: result on every forward pass.
_OUT_REQUIRED_CALLS = frozenset({
    "matmul", "dot", "einsum",
    "add", "subtract", "multiply", "divide", "true_divide", "power",
    "maximum", "minimum", "clip",
    "exp", "tanh", "sqrt", "square", "negative", "abs", "absolute",
    "reciprocal", "log",
    "sum", "mean", "max", "min", "amax", "amin", "prod",
})

#: ndarray methods that copy the data buffer.
_ALLOCATING_METHODS = frozenset({"astype", "copy", "flatten", "tolist"})

#: Names marking a plan-emission hook: kernels (``step`` closures)
#: defined anywhere below one of these must be allocation-free.
_PLAN_PREFIXES = ("plan_inference", "plan_fused_relu", "_plan")


class PlanKernelAllocationRule(Checker):
    """R4: plan kernel closures never allocate after warmup."""

    rule_id = "R4"
    name = "plan-kernel-alloc"
    description = (
        "kernel closures (def step) inside plan_inference/plan_fused_relu "
        "hooks must be allocation-free: no allocating numpy constructors, "
        "no out=-less ufuncs, no .astype/.copy"
    )
    paths = ("src/repro/nn/",)

    def check(self, module: SourceFile) -> Iterator[Finding]:
        if module.tree is None:
            return
        aliases = _NumpyAliasVisitor()
        aliases.visit(module.tree)
        for kernel in self._kernels(module.tree):
            yield from self._check_kernel(module, kernel, aliases)

    @staticmethod
    def _kernels(tree: ast.AST) -> "list[ast.FunctionDef]":
        """``step`` closures nested below a plan-emission hook."""
        kernels = []

        def walk(node: ast.AST, in_plan: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_in_plan = in_plan
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    if child.name.startswith(_PLAN_PREFIXES):
                        child_in_plan = True
                    if in_plan and child.name == "step":
                        kernels.append(child)
                        continue  # never collect a step nested in a step
                walk(child, child_in_plan)

        walk(tree, False)
        return kernels

    def _check_kernel(
        self,
        module: SourceFile,
        kernel: ast.FunctionDef,
        aliases: _NumpyAliasVisitor,
    ) -> Iterator[Finding]:
        for node in ast.walk(kernel):
            if not isinstance(node, ast.Call):
                continue
            method = (
                node.func.attr
                if isinstance(node.func, ast.Attribute) else None
            )
            numpy_symbol = self._numpy_symbol(node.func, aliases)
            if numpy_symbol in _ALLOCATING_CALLS:
                yield self.finding(
                    module, node,
                    f"np.{numpy_symbol}() allocates inside a plan kernel; "
                    f"allocate at build time (builder.scratch/activation) "
                    f"and write through out=/views",
                )
            elif numpy_symbol in _OUT_REQUIRED_CALLS:
                keywords = {keyword.arg for keyword in node.keywords}
                if "out" not in keywords:
                    yield self.finding(
                        module, node,
                        f"np.{numpy_symbol}() without out= allocates its "
                        f"result on every kernel run; write into an arena "
                        f"slot or scratch buffer",
                    )
            elif numpy_symbol is None and method in _ALLOCATING_METHODS:
                yield self.finding(
                    module, node,
                    f".{method}() copies the data buffer inside a plan "
                    f"kernel; stage through a preallocated buffer instead",
                )

    @staticmethod
    def _numpy_symbol(
        func: ast.expr, aliases: _NumpyAliasVisitor
    ) -> Optional[str]:
        if isinstance(func, ast.Name):
            # Direct imports (from numpy import matmul) are rare here;
            # treat a name as numpy's only when explicitly imported.
            return None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            if func.value.id in aliases.numpy_names:
                return func.attr
        return None


# ----------------------------------------------------------------------
# R5 — shared-memory lifetime pairing.
# ----------------------------------------------------------------------


class ShmLifetimeRule(Checker):
    """R5: segment creation and unlink/sweep live in the same module."""

    rule_id = "R5"
    name = "shm-lifetime"
    description = (
        "a module creating shared-memory segments (SharedMemory "
        "create=True / create_stack) must also reach an unlink, "
        "sweep_orphans or finally-guarded close path"
    )
    paths = ("src/",)

    _release_names = frozenset({"unlink", "sweep_orphans", "_unlink_quiet"})

    def check(self, module: SourceFile) -> Iterator[Finding]:
        if module.tree is None:
            return
        creations = self._creation_sites(module.tree)
        if not creations:
            return
        if self._has_release(module.tree):
            return
        for node, what in creations:
            yield self.finding(
                module, node,
                f"{what} creates a shared-memory segment but this module "
                f"has no unlink/sweep_orphans/finally-close path; a crash "
                f"here leaks /dev/shm segments",
            )

    @staticmethod
    def _creation_sites(tree: ast.AST) -> "list[tuple]":
        sites = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name == "SharedMemory":
                creating = any(
                    keyword.arg == "create"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords
                )
                if creating:
                    sites.append((node, "SharedMemory(create=True)"))
            elif name == "create_stack":
                sites.append((node, "create_stack()"))
        return sites

    def _has_release(self, tree: ast.AST) -> bool:
        release = False

        def walk(node: ast.AST, in_finally: bool) -> None:
            nonlocal release
            if release:
                return
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in self._release_names:
                    release = True
                    return
                if name == "close" and in_finally:
                    release = True
                    return
            if isinstance(node, ast.Try):
                for child in node.body + node.orelse:
                    walk(child, in_finally)
                for handler in node.handlers:
                    walk(handler, in_finally)
                for child in node.finalbody:
                    walk(child, True)
                return
            for child in ast.iter_child_nodes(node):
                walk(child, in_finally)

        walk(tree, False)
        return release


# ----------------------------------------------------------------------
# R6 — envelope and wire-header safety.
# ----------------------------------------------------------------------

#: ``TaskFailure`` fields that must hold JSON-safe strings — assigning a
#: live exception object here would pickle (or JSON-fail) across the
#: runtime boundary.
_ENVELOPE_STRING_FIELDS = frozenset({
    "kind", "error_type", "message", "traceback",
})

#: Functions whose header argument crosses the socket wire.
_WIRE_SENDERS = frozenset({"send_frame", "encode_frame"})


class EnvelopeWireSafetyRule(Checker):
    """R6: envelopes carry strings; wire headers use literal keys."""

    rule_id = "R6"
    name = "envelope-wire-safety"
    description = (
        "TaskFailure string fields must not receive bare exception "
        "objects, and wire frame headers must use literal string keys"
    )
    paths = ("src/",)

    def check(self, module: SourceFile) -> Iterator[Finding]:
        if module.tree is None:
            return
        yield from self._walk(module, module.tree, frozenset())

    def _walk(
        self, module: SourceFile, node: ast.AST, caught: frozenset
    ) -> Iterator[Finding]:
        if isinstance(node, ast.ExceptHandler) and node.name:
            caught = caught | {node.name}
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name == "TaskFailure":
                yield from self._check_envelope(module, node, caught)
            elif name in _WIRE_SENDERS:
                yield from self._check_wire_call(module, node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_header_dicts(module, node)
        for child in ast.iter_child_nodes(node):
            yield from self._walk(module, child, caught)

    def _check_envelope(
        self, module: SourceFile, node: ast.Call, caught: frozenset
    ) -> Iterator[Finding]:
        if node.args:
            yield self.finding(
                module, node,
                "construct TaskFailure with keyword arguments only, so "
                "the envelope fields stay auditable",
            )
        for keyword in node.keywords:
            if keyword.arg not in _ENVELOPE_STRING_FIELDS:
                continue
            value = keyword.value
            if isinstance(value, ast.Name) and value.id in caught:
                yield self.finding(
                    module, value,
                    f"TaskFailure field {keyword.arg!r} receives the bare "
                    f"caught exception {value.id!r}; envelopes must carry "
                    f"JSON/pickle-safe strings — use str({value.id}) or "
                    f"type({value.id}).__name__",
                )

    def _check_wire_call(
        self, module: SourceFile, node: ast.Call
    ) -> Iterator[Finding]:
        header = None
        for keyword in node.keywords:
            if keyword.arg == "header":
                header = keyword.value
        if header is None and node.args:
            name = _call_name(node.func)
            index = 1 if name == "send_frame" else 0
            if len(node.args) > index:
                header = node.args[index]
        if isinstance(header, ast.Dict):
            yield from self._check_header_literal(module, header)

    def _check_header_dicts(
        self, module: SourceFile, function: ast.FunctionDef
    ) -> Iterator[Finding]:
        """Check dict literals bound to names used as wire headers.

        Convention-based: within one function, any assignment to a name
        called ``header`` (or to a name later passed to a wire sender)
        must be a literal-keyed dict, and subscript stores into it must
        use constant string keys.
        """
        header_names = {"header"}
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                if _call_name(node.func) in _WIRE_SENDERS:
                    for argument in list(node.args) + [
                        keyword.value for keyword in node.keywords
                    ]:
                        if isinstance(argument, ast.Name):
                            header_names.add(argument.id)
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                targets = [
                    target.id for target in node.targets
                    if isinstance(target, ast.Name)
                ]
                if any(name in header_names for name in targets):
                    if isinstance(node.value, ast.Dict):
                        yield from self._check_header_literal(
                            module, node.value
                        )
                subscripts = [
                    target for target in node.targets
                    if isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in header_names
                ]
                for target in subscripts:
                    key = target.slice
                    if not (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ):
                        yield self.finding(
                            module, target,
                            "wire header keys must be literal strings; a "
                            "computed key cannot be audited against the "
                            "frame schema",
                        )

    def _check_header_literal(
        self, module: SourceFile, literal: ast.Dict
    ) -> Iterator[Finding]:
        for key in literal.keys:
            if key is None:
                yield self.finding(
                    module, literal,
                    "wire header built with **-expansion; spell the keys "
                    "out as literals so the frame schema stays auditable",
                )
            elif not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                yield self.finding(
                    module, key,
                    "wire header keys must be literal strings; a computed "
                    "key cannot be audited against the frame schema",
                )


def all_checkers() -> "list[Checker]":
    """Fresh instances of every project rule, in rule-id order."""
    return [
        ParityReferenceRule(),
        TaskKeyHygieneRule(),
        WorkerSeedingRule(),
        PlanKernelAllocationRule(),
        ShmLifetimeRule(),
        EnvelopeWireSafetyRule(),
    ]
