"""Gradient-based frequency-band saliency (Eq. 2 of the paper).

Section 3.1 argues that the contribution of the frequency basis function
``b(i, j)`` of pixel block ``k`` to the DNN decision is

    dF / db(i, j) = dF / dx_k * c(k, i, j)

i.e. the product of the pixel-space gradient and the block's DCT
coefficient at that band.  :func:`frequency_band_saliency` computes this
for a trained model, producing an 8x8 importance map that can be compared
with the data-driven standard-deviation statistic used for table design.
"""

from __future__ import annotations

import numpy as np

from repro.jpeg.blocks import level_shift, partition_blocks
from repro.jpeg.dct import BLOCK_SIZE, block_dct2d
from repro.nn.base import Sequential
from repro.nn.losses import softmax


def input_gradient(
    model: Sequential, inputs: np.ndarray, target_classes: np.ndarray
) -> np.ndarray:
    """Gradient of the target-class probability w.r.t. the network input.

    ``inputs`` is an NCHW tensor (already normalised for the network),
    ``target_classes`` the class whose score is differentiated for each
    sample.  The model runs in inference mode.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    target_classes = np.asarray(target_classes, dtype=np.intp)
    if inputs.ndim != 4:
        raise ValueError(f"expected NCHW inputs, got shape {inputs.shape}")
    if target_classes.shape != (inputs.shape[0],):
        raise ValueError("target_classes must have one entry per sample")
    logits = model.forward(inputs, training=False)
    probabilities = softmax(logits)
    # d p_t / d logits for each sample: p_t * (one_hot(t) - p).
    one_hot = np.zeros_like(probabilities)
    one_hot[np.arange(target_classes.shape[0]), target_classes] = 1.0
    target_probability = probabilities[
        np.arange(target_classes.shape[0]), target_classes
    ][:, None]
    grad_logits = target_probability * (one_hot - probabilities)
    for parameter in model.parameters():
        parameter.zero_grad()
    return model.backward(grad_logits)


def frequency_band_saliency(
    model: Sequential,
    images: np.ndarray,
    network_inputs: np.ndarray,
    target_classes: np.ndarray,
) -> np.ndarray:
    """Average |dF/db(i, j)| over all blocks of all images (Eq. 2).

    Parameters
    ----------
    model:
        A trained classifier.
    images:
        The raw grayscale images ``(N, H, W)`` in [0, 255], used for the
        DCT coefficients ``c(k, i, j)``.
    network_inputs:
        The same images preprocessed into the NCHW tensor the model was
        trained on (see :func:`repro.data.transforms.prepare_for_network`).
    target_classes:
        The class whose score is differentiated for each image (typically
        the true label).

    Returns
    -------
    numpy.ndarray
        ``(8, 8)`` array of mean absolute band contributions.
    """
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 3:
        raise ValueError(f"expected (N, H, W) images, got shape {images.shape}")
    gradients = input_gradient(model, network_inputs, target_classes)
    if gradients.shape[1] != 1:
        # Colour inputs: reduce the gradient over channels (luma-style mean),
        # because the DCT analysis below runs on the grayscale image.
        gradients = gradients.mean(axis=1, keepdims=True)
    saliency = np.zeros((BLOCK_SIZE, BLOCK_SIZE))
    total_blocks = 0
    for image, gradient in zip(images, gradients[:, 0]):
        image_blocks, _ = partition_blocks(level_shift(image))
        gradient_blocks, _ = partition_blocks(gradient)
        image_coefficients = block_dct2d(image_blocks)
        gradient_coefficients = block_dct2d(gradient_blocks)
        saliency += np.abs(image_coefficients * gradient_coefficients).sum(axis=0)
        total_blocks += image_blocks.shape[0]
    return saliency / max(total_blocks, 1)
