"""Distribution fits for DCT coefficients.

Reininger & Gibson (1983) — reference [24] of the paper — showed that the
un-quantized AC DCT coefficients of natural images are well modelled by
zero-mean Laplace (or Gaussian) distributions whose only free parameter
is the per-band standard deviation.  This module fits both models and
compares them, supporting the paper's use of the standard deviation as
the per-band energy statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class BandDistributionFit:
    """Maximum-likelihood fits of one band's coefficient distribution.

    Attributes
    ----------
    std:
        Sample standard deviation of the coefficients.
    laplace_scale:
        MLE scale ``b`` of the zero-mean Laplace fit.
    gaussian_log_likelihood / laplace_log_likelihood:
        Total log-likelihood of the data under each zero-mean model.
    preferred_model:
        ``"laplace"`` or ``"gaussian"``, whichever has higher likelihood.
    """

    std: float
    laplace_scale: float
    gaussian_log_likelihood: float
    laplace_log_likelihood: float

    @property
    def preferred_model(self) -> str:
        if self.laplace_log_likelihood >= self.gaussian_log_likelihood:
            return "laplace"
        return "gaussian"


def fit_band_distribution(coefficients: np.ndarray) -> BandDistributionFit:
    """Fit zero-mean Gaussian and Laplace models to one band's coefficients."""
    coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
    if coefficients.size < 2:
        raise ValueError("need at least two coefficients to fit a distribution")
    std = float(coefficients.std())
    # Zero-mean MLEs: Gaussian sigma^2 = E[c^2], Laplace b = E[|c|].
    gaussian_sigma = float(np.sqrt(np.mean(coefficients ** 2)))
    laplace_scale = float(np.mean(np.abs(coefficients)))
    gaussian_sigma = max(gaussian_sigma, 1e-12)
    laplace_scale = max(laplace_scale, 1e-12)
    gaussian_ll = float(
        scipy_stats.norm.logpdf(coefficients, loc=0.0, scale=gaussian_sigma).sum()
    )
    laplace_ll = float(
        scipy_stats.laplace.logpdf(coefficients, loc=0.0, scale=laplace_scale).sum()
    )
    return BandDistributionFit(
        std=std,
        laplace_scale=laplace_scale,
        gaussian_log_likelihood=gaussian_ll,
        laplace_log_likelihood=laplace_ll,
    )


def band_kurtosis(coefficients: np.ndarray) -> float:
    """Excess kurtosis of a band's coefficients.

    Natural-image AC bands are leptokurtic (positive excess kurtosis),
    which is why the Laplace model usually wins the likelihood comparison.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
    if coefficients.size < 4:
        raise ValueError("need at least four coefficients for kurtosis")
    return float(scipy_stats.kurtosis(coefficients, fisher=True, bias=False))
