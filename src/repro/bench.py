"""The ``repro bench`` subcommand: run, record and gate benchmarks.

Runs the pytest-benchmark suite (or ingests an existing
``--benchmark-json`` report), appends a summarized entry to the perf
trajectory via :mod:`benchmarks.record_trajectory`, and — with
``--check`` — compares the fresh numbers against the last recorded
entry from a machine with the same usable-CPU count, exiting with
status :data:`EXIT_BENCH_REGRESSION` when any shared benchmark slowed
down beyond the threshold.

The comparison uses each benchmark's ``min_seconds``: the minimum is
the least noisy location statistic for timing benchmarks (it bounds the
true cost from above with the least scheduler interference), and
matching on ``cpu_count`` keeps 1-CPU container entries from being
gated against multi-core runs.

``record_trajectory.py`` stays a standalone script (CI invokes it
without ``PYTHONPATH``), so it is loaded here by file path rather than
imported as a package module.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
import time
from pathlib import Path

#: Exit status of ``repro bench --check`` when a regression is found.
EXIT_BENCH_REGRESSION = 4


def _load_record_trajectory(repo_root: Path):
    """Load ``benchmarks/record_trajectory.py`` as a module by path."""
    path = repo_root / "benchmarks" / "record_trajectory.py"
    if not path.exists():
        raise FileNotFoundError(f"{path} not found")
    spec = importlib.util.spec_from_file_location("record_trajectory", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _repo_root() -> Path:
    """The repository root: the directory holding ``benchmarks/``.

    Resolved from the current directory first (the normal invocation),
    falling back to the package checkout for out-of-tree working dirs.
    """
    cwd = Path.cwd()
    for candidate in (cwd, *cwd.parents):
        if (candidate / "benchmarks" / "record_trajectory.py").exists():
            return candidate
    package_root = Path(__file__).resolve().parents[2]
    if (package_root / "benchmarks" / "record_trajectory.py").exists():
        return package_root
    raise FileNotFoundError(
        "could not locate benchmarks/record_trajectory.py from "
        f"{cwd} or the package checkout"
    )


def _run_suite(benchmarks: str, report_path: Path) -> int:
    """Run the benchmark suite, writing the pytest-benchmark report."""
    command = [
        sys.executable, "-m", "pytest", benchmarks, "-q",
        f"--benchmark-json={report_path}",
    ]
    return subprocess.call(command)


def _last_comparable(history: list, cpu_count: int, skip_last: bool) -> dict:
    """The most recent prior entry recorded with the same CPU count."""
    entries = history[:-1] if skip_last else history
    for entry in reversed(entries):
        if entry.get("cpu_count") == cpu_count:
            return entry
    return None


def check_regressions(entry: dict, baseline: dict, threshold: float) -> list:
    """Benchmarks in ``entry`` slower than ``baseline`` beyond ``threshold``.

    Only benchmarks present in both entries are compared (new benchmarks
    cannot regress; removed ones cannot be measured).  Returns a list of
    ``(name, baseline_min, current_min, slowdown)`` tuples.
    """
    regressions = []
    current = entry.get("benchmarks", {})
    previous = baseline.get("benchmarks", {})
    for name in sorted(set(current) & set(previous)):
        new_min = current[name].get("min_seconds")
        old_min = previous[name].get("min_seconds")
        if not new_min or not old_min:
            continue
        slowdown = new_min / old_min - 1.0
        if slowdown > threshold:
            regressions.append((name, old_min, new_min, slowdown))
    return regressions


def run_bench(arguments) -> int:
    """Entry point behind ``repro bench`` (see :mod:`repro.cli`)."""
    try:
        repo_root = _repo_root()
        recorder = _load_record_trajectory(repo_root)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if arguments.from_json is not None:
        report_path = Path(arguments.from_json)
        if not report_path.exists():
            print(f"error: {report_path} not found", file=sys.stderr)
            return 2
    else:
        report_path = repo_root / f"bench-{int(time.time())}.json"
        status = _run_suite(arguments.benchmarks, report_path)
        if status != 0:
            print(
                f"error: benchmark suite failed with status {status}",
                file=sys.stderr,
            )
            return status if status else 1

    try:
        report = json.loads(report_path.read_text())
    except json.JSONDecodeError as error:
        print(
            f"error: {report_path} is not valid JSON: {error}",
            file=sys.stderr,
        )
        return 2
    label = arguments.label or f"bench-{int(time.time())}"
    entry = recorder.build_entry(report, label)
    trajectory_path = Path(arguments.trajectory)
    if not trajectory_path.is_absolute():
        trajectory_path = repo_root / trajectory_path

    if trajectory_path.exists():
        history = json.loads(trajectory_path.read_text())
        if not isinstance(history, list):
            print(
                f"error: {trajectory_path} is not a JSON list",
                file=sys.stderr,
            )
            return 2
    else:
        history = []

    recorded = False
    if not arguments.no_record:
        recorder.append_entry(trajectory_path, entry)
        recorded = True
        print(
            f"recorded {label!r} ({len(entry['benchmarks'])} benchmarks) "
            f"to {trajectory_path}"
        )

    if arguments.check:
        baseline = _last_comparable(
            history + [entry] if recorded else history,
            entry["cpu_count"],
            skip_last=recorded,
        )
        if baseline is None:
            print(
                f"check: no prior entry with cpu_count="
                f"{entry['cpu_count']} to compare against; passing"
            )
            return 0
        regressions = check_regressions(entry, baseline, arguments.threshold)
        if regressions:
            print(
                f"check: {len(regressions)} regression(s) vs "
                f"{baseline.get('label')!r} "
                f"(threshold {arguments.threshold:.0%}):",
                file=sys.stderr,
            )
            for name, old_min, new_min, slowdown in regressions:
                print(
                    f"  {name}: {old_min * 1e3:.3f} ms -> "
                    f"{new_min * 1e3:.3f} ms (+{slowdown:.0%})",
                    file=sys.stderr,
                )
            return EXIT_BENCH_REGRESSION
        print(
            f"check: no regressions vs {baseline.get('label')!r} "
            f"(threshold {arguments.threshold:.0%})"
        )
    return 0
