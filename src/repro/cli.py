"""The ``python -m repro`` command line: the canonical experiment entry point.

Three subcommands over the experiment registry
(:mod:`repro.experiments.api`):

``list``
    Every registered experiment with its one-line description.
``run <name>``
    Run one experiment end to end — ``--scale`` picks the
    :class:`~repro.experiments.common.ExperimentConfig` preset,
    ``--workers`` shards the grid, ``--artifacts-dir`` caches/resumes
    grid cells, ``--progress`` streams cell completion, ``--json`` emits
    a machine-readable result instead of the table.  ``--on-error``,
    ``--retries`` and ``--task-timeout`` engage the fault-tolerant
    runtime (:mod:`repro.runtime.supervision`): failed cells retry with
    the same task payload (recovered runs are bit-identical), hung cells
    are killed at the timeout, and under ``--on-error collect`` every
    healthy cell completes and persists before the run exits non-zero
    with a report naming the failed cells (exit status 3; with ``--json``
    the report is a machine-readable payload of ``TaskFailure``
    envelopes on stdout).  ``--backend`` selects the execution
    transport (:mod:`repro.runtime.backends`) — including ``socket``,
    which farms cells out to ``python -m repro.worker`` daemons.
    Ctrl-C exits with status 130 after printing how to resume.
``replay <name>``
    Re-run against a warm artifact store and *fail* unless every cell
    was served from cache — the smoke check that a previous ``run``
    persisted everything it computed.
``lint``
    Check the repo against its own correctness invariants with the
    AST-based rules of :mod:`repro.analysis.lint_rules` (parity
    references, task-key hygiene, worker seeding, allocation-free plan
    kernels, shm lifetimes, envelope/wire safety — see
    ``INVARIANTS.md``).  Exits 5 on findings; ``--changed`` scopes the
    check to the git diff, ``--json`` emits a machine-readable report.

Examples::

    python -m repro list
    python -m repro run fig5 --scale tiny --workers 2 --artifacts-dir store/
    python -m repro run fig5 --scale tiny --workers 2 --artifacts-dir store/ \
        --on-error collect --retries 2 --task-timeout 600
    python -m repro replay fig5 --scale tiny --workers 2 --artifacts-dir store/
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time
from typing import Optional

from repro.experiments import ExperimentConfig
from repro.experiments.api import (
    SweepFailure,
    build_experiment,
    experiment_names,
    run_experiment,
)
from repro.experiments.store import ArtifactStore
from repro.runtime import faults
from repro.runtime.backends import BACKEND_NAMES

#: Exit statuses beyond 0/1: argparse-style usage errors are 2, a sweep
#: with failed cells is 3, an interrupted run is 128+SIGINT = 130.
EXIT_SWEEP_FAILURE = 3
EXIT_INTERRUPTED = 130

#: Named experiment scales — the ExperimentConfig presets (micro is the
#: test-suite / golden-fixture scale).
SCALES = {
    "micro": ExperimentConfig.micro,
    "tiny": ExperimentConfig.tiny,
    "small": ExperimentConfig.small,
    "full": ExperimentConfig.full,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the DeepN-JPEG reproduction experiments by name.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list", help="list the registered experiments",
        description="List every registered experiment and its description.",
    )

    for command, help_text in (
        ("run", "run one experiment end to end"),
        ("replay", "re-run from a warm store, failing on any cache miss"),
    ):
        sub = subparsers.add_parser(command, help=help_text)
        sub.add_argument(
            "experiment", help="registered experiment name (see `repro list`)"
        )
        sub.add_argument(
            "--scale", choices=sorted(SCALES), default="small",
            help="experiment scale (dataset size and training epochs)",
        )
        sub.add_argument(
            "--workers", type=int, default=1,
            help="processes per sweep (1 = serial, 0 = all CPUs); results "
            "are identical for any worker count",
        )
        sub.add_argument(
            "--artifacts-dir", default=None,
            required=(command == "replay"),
            help="content-addressed artifact store directory; completed "
            "grid cells resume from it"
            + (" (required for replay)" if command == "replay" else ""),
        )
        sub.add_argument(
            "--on-error", choices=("fail-fast", "retry", "collect"),
            default=None, dest="on_error",
            help="sweep error policy: fail-fast aborts on the first "
            "failure (default), retry re-runs failed cells, collect "
            "retries then finishes every healthy cell before reporting "
            "the failures and exiting with status 3",
        )
        sub.add_argument(
            "--retries", type=int, default=None,
            help="extra attempts per failed cell under retry/collect "
            "(default 2); retried cells re-run the same task payload, so "
            "recovered runs are bit-identical",
        )
        sub.add_argument(
            "--task-timeout", type=float, default=None, dest="task_timeout",
            help="per-cell wall-clock budget in seconds; a cell past it "
            "is killed and handled under the error policy",
        )
        sub.add_argument(
            "--backend", choices=BACKEND_NAMES, default=None,
            help="execution backend for the sweep (default: automatic — "
            "serial for --workers 1, a forked pool otherwise); "
            "'persistent' reuses one pool across sweeps, 'socket' "
            "coordinates `python -m repro.worker` daemons over TCP; "
            "results are identical for every backend (REPRO_BACKEND "
            "sets the same knob)",
        )
        sub.add_argument(
            "--engine", choices=("plan", "dynamic"), default=None,
            help="inference engine for trained classifiers: 'plan' "
            "compiles shape-specialized arena-backed execution plans "
            "(default), 'dynamic' keeps the legacy layer-by-layer walk; "
            "float32/float64 results are bit-identical either way "
            "(REPRO_NN_ENGINE sets the same knob)",
        )
        sub.add_argument(
            "--storage-dtype", choices=("float16",), default=None,
            dest="storage_dtype",
            help="store planned activations half-precision (compute stays "
            "in the configured compute dtype); changes results at the "
            "accuracy level, so it addresses distinct artifacts",
        )
        sub.add_argument(
            "--blas-threads", type=int, default=None, dest="blas_threads",
            help="BLAS thread count pinned around planned inference "
            "(REPRO_BLAS_THREADS sets the same knob); results are "
            "identical for any thread count",
        )
        sub.add_argument(
            "--json", action="store_true", dest="as_json",
            help="emit the result as JSON on stdout instead of a table",
        )
        sub.add_argument(
            "--progress", action="store_true",
            help="report cell completion (done/total) on stderr",
        )

    # `lint` owns its full argument surface in repro.analysis.lint
    # (main() delegates before general parsing); this stub makes it
    # visible in `python -m repro --help`.
    subparsers.add_parser(
        "lint",
        help="check the repo against its own correctness invariants "
        "(AST rules; see `repro lint --help` and INVARIANTS.md)",
        add_help=False,
    )

    bench = subparsers.add_parser(
        "bench",
        help="run the benchmark suite and append to the perf trajectory",
        description="Run the pytest-benchmark suite (or ingest an "
        "existing --benchmark-json report), append a summarized entry "
        "to the perf trajectory, and optionally gate on regressions "
        "against the last recorded entry from a machine with the same "
        "CPU count.",
    )
    bench.add_argument(
        "--from-json", default=None, dest="from_json",
        help="ingest an existing pytest-benchmark JSON report instead "
        "of running the suite",
    )
    bench.add_argument(
        "--benchmarks", default="benchmarks", dest="benchmarks",
        help="benchmark file or directory passed to pytest "
        "(default: benchmarks/)",
    )
    bench.add_argument(
        "--label", default=None,
        help="label stamped into the trajectory entry "
        "(default: bench-<unix time>)",
    )
    bench.add_argument(
        "--trajectory", default="BENCH_PR3.json",
        help="trajectory JSON file to append to (default: BENCH_PR3.json)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="compare against the last same-cpu_count entry and exit "
        "with status 4 when any benchmark regressed beyond --threshold",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.2,
        help="allowed fractional slowdown per benchmark under --check "
        "(default 0.2 = 20%%)",
    )
    bench.add_argument(
        "--no-record", action="store_true", dest="no_record",
        help="do not append to the trajectory (useful with --check)",
    )
    return parser


def _progress_printer(name: str):
    def progress(done: int, total: int) -> None:
        end = "\n" if done == total else ""
        print(f"\r{name}: {done}/{total} cells", end=end, file=sys.stderr,
              flush=True)

    return progress


def _resume_hint(arguments: argparse.Namespace) -> str:
    """The command that resumes an interrupted or partly failed run."""
    command = (
        f"python -m repro run {arguments.experiment} "
        f"--scale {arguments.scale}"
    )
    if arguments.workers != 1:
        command += f" --workers {arguments.workers}"
    if arguments.backend is not None:
        command += f" --backend {arguments.backend}"
    if arguments.artifacts_dir:
        command += f" --artifacts-dir {arguments.artifacts_dir}"
        return (
            f"completed cells are persisted; resume with: {command}"
        )
    return (
        f"no --artifacts-dir was given, so completed cells were not "
        f"persisted; re-run (ideally with --artifacts-dir): {command}"
    )


def _run(arguments: argparse.Namespace) -> int:
    try:
        experiment = build_experiment(arguments.experiment)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    try:
        # Surface a REPRO_FAULTS typo before any state is built: a bad
        # spec string must fail the run up front, not mid-sweep inside
        # a worker.
        faults.validate_active_faults()
    except faults.FaultSpecError as error:
        print(f"error: invalid {faults.ENV_VAR}: {error}", file=sys.stderr)
        return 2
    overrides = {"workers": arguments.workers}
    if arguments.on_error is not None:
        overrides["on_error"] = arguments.on_error
    if arguments.retries is not None:
        overrides["retries"] = arguments.retries
    if arguments.task_timeout is not None:
        overrides["task_timeout"] = arguments.task_timeout
    if arguments.backend is not None:
        overrides["backend"] = arguments.backend
    if arguments.engine is not None:
        overrides["inference_engine"] = arguments.engine
    if arguments.storage_dtype is not None:
        overrides["storage_dtype"] = arguments.storage_dtype
    if arguments.blas_threads is not None:
        overrides["blas_threads"] = arguments.blas_threads
    try:
        config = SCALES[arguments.scale]().with_overrides(**overrides)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store = (
        ArtifactStore(arguments.artifacts_dir)
        if arguments.artifacts_dir else None
    )
    progress = (
        _progress_printer(experiment.name) if arguments.progress else None
    )
    started = time.time()
    try:
        result = run_experiment(
            experiment, config, store=store, progress=progress
        )
    except SweepFailure as failure:
        if arguments.as_json:
            # Machine-readable failure report: the supervision envelopes
            # serialise themselves (TaskFailure.to_json), so the payload
            # round-trips through TaskFailure.from_json.
            json.dump(
                {
                    "experiment": failure.experiment,
                    "failed": len(failure.failures),
                    "total": failure.total,
                    "failures": [
                        {"cell": cell, "failure": envelope.to_json()}
                        for cell, envelope in failure.failures
                    ],
                },
                sys.stdout,
            )
            print()
        print(f"error: {failure.report()}", file=sys.stderr)
        print(_resume_hint(arguments), file=sys.stderr)
        return EXIT_SWEEP_FAILURE
    except KeyboardInterrupt:
        print(
            f"\ninterrupted: {experiment.name!r} stopped before the sweep "
            f"finished",
            file=sys.stderr,
        )
        print(_resume_hint(arguments), file=sys.stderr)
        return EXIT_INTERRUPTED
    elapsed = time.time() - started

    if arguments.command == "replay" and store.misses:
        print(
            f"error: replay of {experiment.name!r} was not warm — "
            f"{store.misses} cache miss(es) ({store.hits} hits); run "
            f"`repro run {experiment.name}` with the same scale and "
            f"artifacts dir first",
            file=sys.stderr,
        )
        return 1

    if arguments.as_json:
        payload = {
            "experiment": experiment.name,
            "title": experiment.title,
            "scale": arguments.scale,
            "workers": arguments.workers,
            "backend": arguments.backend,
            "headers": list(experiment.headers),
            "rows": result.rows(),
            "elapsed_seconds": elapsed,
        }
        if store is not None:
            payload["store"] = {
                "root": store.root, "hits": store.hits, "misses": store.misses,
            }
        json.dump(payload, sys.stdout, default=float)
        print()
    else:
        print(experiment.report(result))
        summary = f"[{experiment.name}] completed in {elapsed:.1f} s"
        if store is not None:
            summary += f" (store: {store.hits} hits, {store.misses} misses)"
        print(summary, file=sys.stderr)
    return 0


def _import_plugin_modules() -> None:
    """Import the modules named in ``REPRO_EXPERIMENT_MODULES``.

    Out-of-tree experiments register at import time; this hook (a
    comma-separated module list) lets the CLI see them without a code
    change: ``REPRO_EXPERIMENT_MODULES=my_sweeps python -m repro run
    my-experiment``.
    """
    for module in os.environ.get("REPRO_EXPERIMENT_MODULES", "").split(","):
        module = module.strip()
        if module:
            importlib.import_module(module)


def main(argv: Optional["list[str]"] = None) -> int:
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw[:1] == ["lint"]:
        # Delegate the whole lint surface (its own flags, exit 5 on
        # findings) without entangling it in the run/replay parser.
        from repro.analysis.lint import main as lint_main

        return lint_main(raw[1:])
    arguments = build_parser().parse_args(raw)
    _import_plugin_modules()
    if arguments.command == "list":
        names = experiment_names()
        if not names:
            print("no experiments registered")
            return 0
        width = max(len(name) for name in names)
        for name in names:
            print(f"{name.ljust(width)}  {build_experiment(name).title}")
        return 0
    if arguments.command == "bench":
        from repro.bench import run_bench

        return run_bench(arguments)
    return _run(arguments)


if __name__ == "__main__":
    raise SystemExit(main())
