"""DeepN-JPEG core: the paper's primary contribution.

The core package turns the frequency statistics of a labelled dataset
(:mod:`repro.analysis`) into a DNN-favourable quantization table through
the piece-wise linear mapping of Eq. 3, and wraps the result — together
with the baseline compressors the paper compares against — behind a small
compression API.

Typical use::

    from repro.core import DeepNJpeg, DeepNJpegConfig
    from repro.data import generate_freqnet

    dataset = generate_freqnet()
    deepn = DeepNJpeg(DeepNJpegConfig())
    deepn.fit(dataset)                       # Algorithm 1 + PLM table design
    result = deepn.compress_dataset(dataset) # real byte counts + reconstructions
    print(result.compression_ratio)
"""

from repro.core.baselines import (
    CompressedDataset,
    DatasetCompressor,
    JpegCompressor,
    RemoveHighFrequencyCompressor,
    SameQCompressor,
    compress_batch,
    compress_dataset_with_table,
)
from repro.core.codec import (
    Codec,
    build_codec,
    build_codec_from_spec,
    codec_for_stack,
    codec_names,
    compress_stack,
    register_codec,
    unregister_codec,
)
from repro.core.config import DeepNJpegConfig
from repro.core.pipeline import DeepNJpeg, DeepNJpegCompressor
from repro.core.plm import PiecewiseLinearMapping
from repro.core.table_design import DeepNJpegTableDesigner, TableDesignResult

__all__ = [
    "Codec",
    "CompressedDataset",
    "DatasetCompressor",
    "DeepNJpeg",
    "DeepNJpegCompressor",
    "DeepNJpegConfig",
    "DeepNJpegTableDesigner",
    "JpegCompressor",
    "PiecewiseLinearMapping",
    "RemoveHighFrequencyCompressor",
    "SameQCompressor",
    "TableDesignResult",
    "build_codec",
    "build_codec_from_spec",
    "codec_for_stack",
    "codec_names",
    "compress_batch",
    "compress_dataset_with_table",
    "compress_stack",
    "register_codec",
    "unregister_codec",
]
