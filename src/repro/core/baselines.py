"""Dataset-level compression: the baselines the paper compares against.

Four compressors share one interface (:class:`DatasetCompressor`):

* :class:`JpegCompressor` — ordinary JPEG with the Annex-K table scaled by
  a quality factor (the "Original" dataset is JPEG at QF=100).
* :class:`RemoveHighFrequencyCompressor` — the paper's "RM-HF" baseline:
  JPEG extended by discarding the top-N highest-frequency components.
* :class:`SameQCompressor` — the paper's "SAME-Q" baseline: a flat table
  with one step for all 64 bands.
* :class:`~repro.core.pipeline.DeepNJpegCompressor` — the proposed method
  (defined in :mod:`repro.core.pipeline`).

Compressing a dataset returns a :class:`CompressedDataset` holding the
reconstructed images (to feed a classifier) and the measured byte counts
(to compute compression ratios and, later, offloading power).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.jpeg.codec import (
    ColorJpegCodec,
    CompressionResult,
    GrayscaleJpegCodec,
)
from repro.jpeg.metrics import psnr
from repro.jpeg.quantization import (
    MAX_QUANT_STEP,
    QuantizationTable,
    STANDARD_CHROMINANCE_TABLE,
    STANDARD_LUMINANCE_TABLE,
    scale_table_for_quality,
)
from repro.jpeg.zigzag import ZIGZAG_ORDER


@dataclass(frozen=True)
class CompressedDataset:
    """Result of compressing every image of a dataset.

    Attributes
    ----------
    dataset:
        A dataset with the same labels but decompressed (lossy) images.
    method:
        Name of the compressor that produced it.
    payload_bytes / header_bytes:
        Total entropy-coded payload and marker overhead across all images.
    original_bytes:
        Total uncompressed size (one byte per sample value).
    mean_psnr:
        Mean PSNR of the reconstructions against the originals.
    """

    dataset: Dataset
    method: str
    payload_bytes: int
    header_bytes: int
    original_bytes: int
    mean_psnr: float

    @property
    def total_bytes(self) -> int:
        """Compressed size including per-image headers."""
        return self.payload_bytes + self.header_bytes

    @property
    def compression_ratio(self) -> float:
        """Dataset-level compression ratio (original / compressed)."""
        return self.original_bytes / self.total_bytes

    @property
    def payload_compression_ratio(self) -> float:
        """Compression ratio counting only entropy-coded payload."""
        return self.original_bytes / self.payload_bytes

    @property
    def bytes_per_image(self) -> float:
        """Average compressed size per image."""
        return self.total_bytes / len(self.dataset)


#: Cap on images per vectorized batch in the dataset path.
_BATCH_CHUNK = 1024

#: Rough budget for per-chunk float64 intermediates (the batch pipeline
#: holds roughly ten image-sized float64 arrays at once: colour planes,
#: quantized blocks, code arrays, reconstructions).
_BATCH_CHUNK_BYTES = 256 * 2 ** 20


def _batch_chunk_size(image_shape: tuple) -> int:
    """Images per chunk: capped by count and by intermediate bytes.

    Small images (the experiment datasets) get the full 1024-image
    chunk; large images shrink the chunk so the whole-batch float64
    intermediates stay near :data:`_BATCH_CHUNK_BYTES` instead of
    scaling with image area.
    """
    per_image = 10 * 8 * int(np.prod(image_shape))
    return int(max(1, min(_BATCH_CHUNK, _BATCH_CHUNK_BYTES // per_image)))


def compress_batch(
    images: np.ndarray,
    luma_table: QuantizationTable,
    chroma_table: QuantizationTable = None,
    optimize_huffman: bool = False,
) -> "list[CompressionResult]":
    """Compress a stack of same-shaped images with one shared codec.

    The batch entry point every dataset-level experiment goes through:
    one codec — and therefore one set of quantization and Huffman
    tables, dense code arrays and decode LUTs — is built once and
    reused across all images instead of being rebuilt per image.
    Grayscale stacks ``(N, H, W)`` run blocking, DCT, quantization and
    entropy coding as single vectorized passes over every block of the
    whole batch; colour stacks ``(N, H, W, 3)`` do the same per plane
    (colour conversion and chroma resampling are also whole-batch
    passes).  Per-image results are byte-identical to compressing each
    image individually.
    """
    images = np.asarray(images, dtype=np.float64)
    if images.ndim == 4:
        codec = ColorJpegCodec(
            luma_table,
            chroma_table if chroma_table is not None else luma_table,
            optimize_huffman=optimize_huffman,
        )
    elif images.ndim == 3:
        if images.shape[-1] == 3:
            raise ValueError(
                f"ambiguous shape {images.shape}: could be one (H, W, 3) "
                "RGB image or a stack of 3-pixel-wide grayscale images; "
                "pass images[np.newaxis] for a single RGB image, or use "
                "GrayscaleJpegCodec.compress_batch directly for 3-wide "
                "grayscale stacks"
            )
        codec = GrayscaleJpegCodec(
            luma_table, optimize_huffman=optimize_huffman
        )
    else:
        raise ValueError(
            "expected an (N, H, W) or (N, H, W, 3) image stack, got "
            f"shape {images.shape}"
        )
    return codec.compress_batch(images)


def compress_dataset_with_table(
    dataset: Dataset,
    luma_table: QuantizationTable,
    chroma_table: QuantizationTable = None,
    method: str = "custom",
    optimize_huffman: bool = False,
) -> CompressedDataset:
    """Compress every image of ``dataset`` with the given table(s).

    Grayscale datasets use :class:`GrayscaleJpegCodec`; colour datasets go
    through the YCbCr path of :class:`ColorJpegCodec`.  All images run
    through the codec's ``compress_batch``, so tables and coder state are
    shared across the dataset.  The dataset's dimensionality decides the
    modality here (``ndim == 4`` is colour), so even pathological shapes
    like 3-pixel-wide grayscale images dispatch correctly.
    """
    images = dataset.images
    reconstructed = np.empty_like(images)
    payload = 0
    header = 0
    psnr_values = []
    # Chunking bounds peak memory (the batch pipeline holds several
    # chunk-sized float64 intermediates at once) while keeping the
    # vectorization win; the chunk shrinks for large images so peak
    # memory is bounded in bytes, not image count.
    chunk = _batch_chunk_size(images.shape[1:])
    if images.ndim == 4:
        # Colour batches share the vectorized per-plane entropy path.
        codec = ColorJpegCodec(
            luma_table,
            chroma_table if chroma_table is not None else luma_table,
            optimize_huffman=optimize_huffman,
        )
    else:
        codec = GrayscaleJpegCodec(
            luma_table, optimize_huffman=optimize_huffman
        )
    results = (
        result
        for start in range(0, images.shape[0], chunk)
        for result in codec.compress_batch(images[start:start + chunk])
    )
    for index, result in enumerate(results):
        reconstructed[index] = result.reconstructed
        payload += result.payload_bytes
        header += result.header_bytes
        psnr_values.append(psnr(images[index], result.reconstructed))
    finite = [value for value in psnr_values if np.isfinite(value)]
    mean_psnr = float(np.mean(finite)) if finite else float("inf")
    return CompressedDataset(
        dataset=dataset.with_images(reconstructed),
        method=method,
        payload_bytes=int(payload),
        header_bytes=int(header),
        original_bytes=dataset.uncompressed_bytes(),
        mean_psnr=mean_psnr,
    )


class DatasetCompressor:
    """Interface of every dataset-level compressor."""

    #: Human-readable name used in experiment tables.
    name = "abstract"

    def luma_table(self) -> QuantizationTable:
        """The luminance quantization table this compressor uses."""
        raise NotImplementedError

    def chroma_table(self) -> QuantizationTable:
        """The chrominance quantization table (defaults to the luma table)."""
        return self.luma_table()

    def compress_dataset(
        self, dataset: Dataset, optimize_huffman: bool = False
    ) -> CompressedDataset:
        """Compress every image of ``dataset`` and collect statistics."""
        return compress_dataset_with_table(
            dataset,
            self.luma_table(),
            self.chroma_table(),
            method=self.name,
            optimize_huffman=optimize_huffman,
        )


class JpegCompressor(DatasetCompressor):
    """Ordinary JPEG with the standard tables scaled by a quality factor."""

    def __init__(self, quality: int = 100) -> None:
        if not 1 <= quality <= 100:
            raise ValueError("quality must be in [1, 100]")
        self.quality = int(quality)
        self.name = f"JPEG (QF={self.quality})"

    def luma_table(self) -> QuantizationTable:
        return QuantizationTable.standard_luminance(self.quality)

    def chroma_table(self) -> QuantizationTable:
        return QuantizationTable.standard_chrominance(self.quality)


class RemoveHighFrequencyCompressor(DatasetCompressor):
    """The paper's RM-HF baseline.

    Standard JPEG at the given quality, extended by *removing* the top-N
    highest-frequency components: their quantization steps are raised to
    the maximum representable value so the corresponding coefficients
    quantize to zero for natural image content.
    """

    def __init__(self, removed_components: int = 3, quality: int = 100) -> None:
        if not 0 <= removed_components < 64:
            raise ValueError("removed_components must be in [0, 63]")
        if not 1 <= quality <= 100:
            raise ValueError("quality must be in [1, 100]")
        self.removed_components = int(removed_components)
        self.quality = int(quality)
        self.name = f"RM-HF{self.removed_components}"

    def _remove_top_bands(self, base_table: np.ndarray) -> QuantizationTable:
        values = np.array(base_table, dtype=np.float64)
        flat = values.reshape(-1)
        if self.removed_components:
            top_bands = ZIGZAG_ORDER[64 - self.removed_components:]
            flat[top_bands] = MAX_QUANT_STEP
        return QuantizationTable(
            flat.reshape(8, 8), name=f"rm-hf{self.removed_components}"
        )

    def luma_table(self) -> QuantizationTable:
        return self._remove_top_bands(
            scale_table_for_quality(STANDARD_LUMINANCE_TABLE, self.quality)
        )

    def chroma_table(self) -> QuantizationTable:
        return self._remove_top_bands(
            scale_table_for_quality(STANDARD_CHROMINANCE_TABLE, self.quality)
        )


class SameQCompressor(DatasetCompressor):
    """The paper's SAME-Q baseline: one quantization step for all 64 bands."""

    def __init__(self, step: float = 4.0) -> None:
        if step < 1:
            raise ValueError("step must be at least 1")
        self.step = float(step)
        self.name = f"SAME-Q{self.step:g}"

    def luma_table(self) -> QuantizationTable:
        return QuantizationTable.flat(self.step, name=f"same-q{self.step:g}")

    def chroma_table(self) -> QuantizationTable:
        return self.luma_table()
