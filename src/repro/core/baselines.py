"""Dataset-level compression: the baselines the paper compares against.

Four compressors share one interface (:class:`DatasetCompressor`):

* :class:`JpegCompressor` — ordinary JPEG with the Annex-K table scaled by
  a quality factor (the "Original" dataset is JPEG at QF=100).
* :class:`RemoveHighFrequencyCompressor` — the paper's "RM-HF" baseline:
  JPEG extended by discarding the top-N highest-frequency components.
* :class:`SameQCompressor` — the paper's "SAME-Q" baseline: a flat table
  with one step for all 64 bands.
* :class:`~repro.core.pipeline.DeepNJpegCompressor` — the proposed method
  (defined in :mod:`repro.core.pipeline`).

Compressing a dataset returns a :class:`CompressedDataset` holding the
reconstructed images (to feed a classifier) and the measured byte counts
(to compute compression ratios and, later, offloading power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.codec import (
    codec_for_image,
    codec_for_stack,
    compress_stack,
    decode_encoded,
    iter_compressed_stack,
    modality_header_bytes,
    register_builtin_codec,
)
from repro.data.dataset import Dataset
from repro.jpeg.codec import CompressionResult
from repro.jpeg.metrics import CompressedSizeMixin, psnr
from repro.jpeg.quantization import (
    MAX_QUANT_STEP,
    QuantizationTable,
    STANDARD_CHROMINANCE_TABLE,
    STANDARD_LUMINANCE_TABLE,
    scale_table_for_quality,
)
from repro.jpeg.zigzag import ZIGZAG_ORDER


@dataclass(frozen=True)
class CompressedDataset(CompressedSizeMixin):
    """Result of compressing every image of a dataset.

    Attributes
    ----------
    dataset:
        A dataset with the same labels but decompressed (lossy) images.
    method:
        Name of the compressor that produced it.
    payload_bytes / header_bytes:
        Total entropy-coded payload and marker overhead across all images.
    original_bytes:
        Total uncompressed size (one byte per sample value).
    mean_psnr:
        Mean PSNR of the reconstructions against the originals.

    ``total_bytes`` / ``compression_ratio`` / ``payload_compression_ratio``
    come from :class:`~repro.jpeg.metrics.CompressedSizeMixin` (shared
    with the per-image :class:`~repro.jpeg.codec.CompressionResult`).
    """

    dataset: Dataset
    method: str
    payload_bytes: int
    header_bytes: int
    original_bytes: int
    mean_psnr: float

    @property
    def bytes_per_image(self) -> float:
        """Average compressed size per image."""
        return self.total_bytes / len(self.dataset)


def compress_batch(
    images: np.ndarray,
    luma_table: QuantizationTable,
    chroma_table: Optional[QuantizationTable] = None,
    optimize_huffman: bool = False,
    workers: int = 1,
) -> "list[CompressionResult]":
    """Compress a stack of same-shaped images with one shared codec.

    The batch entry point every dataset-level experiment goes through:
    one codec — and therefore one set of quantization and Huffman
    tables, dense code arrays and decode LUTs — is built once and
    reused across all images instead of being rebuilt per image.
    Grayscale stacks ``(N, H, W)`` run blocking, DCT, quantization and
    entropy coding as single vectorized passes over every block of the
    whole batch; colour stacks ``(N, H, W, 3)`` do the same per plane
    (colour conversion and chroma resampling are also whole-batch
    passes).  Per-image results are byte-identical to compressing each
    image individually.

    ``workers > 1`` shards the stack into contiguous image chunks
    compressed by a process pool (one shard at a time per worker, the
    same shared tables in every worker) and reassembles the per-image
    results in order; the output is identical to ``workers=1``.
    """
    images = np.asarray(images, dtype=np.float64)
    codec = codec_for_stack(
        images, luma_table, chroma_table, optimize_huffman=optimize_huffman
    )
    return compress_stack(images, codec, workers)


def compress_dataset_with_table(
    dataset: Dataset,
    luma_table: QuantizationTable,
    chroma_table: Optional[QuantizationTable] = None,
    method: str = "custom",
    optimize_huffman: bool = False,
    workers: int = 1,
) -> CompressedDataset:
    """Compress every image of ``dataset`` with the given table(s).

    Grayscale datasets use :class:`GrayscaleJpegCodec`; colour datasets go
    through the YCbCr path of :class:`ColorJpegCodec`.  All images run
    through the codec's ``compress_batch``, so tables and coder state are
    shared across the dataset.  The dataset's dimensionality decides the
    modality here (``ndim == 4`` is colour), so even pathological shapes
    like 3-pixel-wide grayscale images dispatch correctly.

    ``workers > 1`` shards the dataset into contiguous image chunks
    over a process pool (see :func:`compress_batch`); per-image results
    — and therefore every aggregate below — are identical to the serial
    run.
    """
    images = dataset.images
    reconstructed = np.empty_like(images)
    payload = 0
    header = 0
    psnr_values = []
    codec = codec_for_stack(
        images, luma_table, chroma_table,
        optimize_huffman=optimize_huffman, strict=False,
    )
    # One shared loop for both modes: serially the stack streams through
    # memory-bounded chunks, with workers > 1 through pool shards whose
    # results arrive in order through a bounded window — either way this
    # consumer aggregates incrementally with the same peak-memory
    # character (plus the reassembled output array).
    results = iter_compressed_stack(images, codec, workers)
    for index, result in enumerate(results):
        reconstructed[index] = result.reconstructed
        payload += result.payload_bytes
        header += result.header_bytes
        psnr_values.append(psnr(images[index], result.reconstructed))
    finite = [value for value in psnr_values if np.isfinite(value)]
    mean_psnr = float(np.mean(finite)) if finite else float("inf")
    return CompressedDataset(
        dataset=dataset.with_images(reconstructed),
        method=method,
        payload_bytes=int(payload),
        header_bytes=int(header),
        original_bytes=dataset.uncompressed_bytes(),
        mean_psnr=mean_psnr,
    )


class DatasetCompressor:
    """Interface of every dataset-level compressor.

    Besides the dataset entry point (:meth:`compress_dataset`), every
    compressor implements the :class:`repro.core.codec.Codec` protocol —
    per-image ``encode`` / ``decode`` / ``compress``, stack-level
    ``compress_batch``, ``header_bytes`` and a JSON-able ``spec()`` —
    by building the modality-appropriate JPEG codec from its tables.
    """

    #: Human-readable name used in experiment tables.
    name = "abstract"

    def luma_table(self) -> QuantizationTable:
        """The luminance quantization table this compressor uses."""
        raise NotImplementedError

    def chroma_table(self) -> QuantizationTable:
        """The chrominance quantization table (defaults to the luma table)."""
        return self.luma_table()

    def optimize_huffman(self) -> bool:
        """Whether this compressor codes with per-image optimized tables.

        The base compressors use the Annex K standard tables; wrappers
        around a configured pipeline override this so their per-image
        codec path produces exactly the streams their ``spec()``
        describes.
        """
        return False

    def spec(self) -> dict:
        """JSON-able description; rebuilds this compressor via the registry."""
        raise NotImplementedError

    def codec_for(self, image: np.ndarray):
        """The underlying JPEG codec for one image.

        Accepts a single ``(H, W)`` grayscale or ``(H, W, 3)`` RGB
        image (:func:`repro.core.codec.codec_for_image`); stacks go
        through :meth:`compress_batch`, whose shape validation matches
        :func:`repro.core.codec.codec_for_stack`.
        """
        return codec_for_image(
            image, self.luma_table(), self.chroma_table(),
            optimize_huffman=self.optimize_huffman(),
        )

    def encode(self, image: np.ndarray):
        """Entropy-code one image with this compressor's tables."""
        return self.codec_for(image).encode(np.asarray(image, dtype=np.float64))

    def decode(self, encoded) -> np.ndarray:
        """Decode a stream previously produced by :meth:`encode`."""
        return decode_encoded(encoded, self.luma_table(), self.chroma_table())

    def compress(self, image: np.ndarray) -> CompressionResult:
        """Round-trip one image and report sizes and the reconstruction."""
        return self.codec_for(image).compress(
            np.asarray(image, dtype=np.float64)
        )

    def compress_batch(
        self, images: np.ndarray, workers: int = 1
    ) -> "list[CompressionResult]":
        """Round-trip a stack of same-shaped images with shared tables.

        Stack shapes follow the module-level :func:`compress_batch`
        contract — ``(N, H, W)`` grayscale or ``(N, H, W, 3)`` colour,
        with the ambiguous ``(N, H, 3)`` case rejected explicitly.
        """
        images = np.asarray(images, dtype=np.float64)
        codec = codec_for_stack(
            images, self.luma_table(), self.chroma_table(),
            optimize_huffman=self.optimize_huffman(),
        )
        return compress_stack(images, codec, workers)

    def header_bytes(self, color: bool = False) -> int:
        """Marker-segment overhead per image for the given modality."""
        return modality_header_bytes(
            self.luma_table(), self.chroma_table(), color=color
        )

    def compress_dataset(
        self, dataset: Dataset, optimize_huffman: bool = False,
        workers: int = 1,
    ) -> CompressedDataset:
        """Compress every image of ``dataset`` and collect statistics.

        ``workers > 1`` shards the dataset over a process pool with the
        same results (see :func:`compress_dataset_with_table`).
        """
        return compress_dataset_with_table(
            dataset,
            self.luma_table(),
            self.chroma_table(),
            method=self.name,
            optimize_huffman=optimize_huffman,
            workers=workers,
        )


class JpegCompressor(DatasetCompressor):
    """Ordinary JPEG with the standard tables scaled by a quality factor."""

    def __init__(self, quality: int = 100) -> None:
        if not 1 <= quality <= 100:
            raise ValueError("quality must be in [1, 100]")
        self.quality = int(quality)
        self.name = f"JPEG (QF={self.quality})"

    def spec(self) -> dict:
        return {"codec": "jpeg", "quality": self.quality}

    def luma_table(self) -> QuantizationTable:
        return QuantizationTable.standard_luminance(self.quality)

    def chroma_table(self) -> QuantizationTable:
        return QuantizationTable.standard_chrominance(self.quality)


class RemoveHighFrequencyCompressor(DatasetCompressor):
    """The paper's RM-HF baseline.

    Standard JPEG at the given quality, extended by *removing* the top-N
    highest-frequency components: their quantization steps are raised to
    the maximum representable value so the corresponding coefficients
    quantize to zero for natural image content.
    """

    def __init__(self, removed_components: int = 3, quality: int = 100) -> None:
        if not 0 <= removed_components < 64:
            raise ValueError("removed_components must be in [0, 63]")
        if not 1 <= quality <= 100:
            raise ValueError("quality must be in [1, 100]")
        self.removed_components = int(removed_components)
        self.quality = int(quality)
        self.name = f"RM-HF{self.removed_components}"

    def spec(self) -> dict:
        return {
            "codec": "rm-hf",
            "removed_components": self.removed_components,
            "quality": self.quality,
        }

    def _remove_top_bands(self, base_table: np.ndarray) -> QuantizationTable:
        values = np.array(base_table, dtype=np.float64)
        flat = values.reshape(-1)
        if self.removed_components:
            top_bands = ZIGZAG_ORDER[64 - self.removed_components:]
            flat[top_bands] = MAX_QUANT_STEP
        return QuantizationTable(
            flat.reshape(8, 8), name=f"rm-hf{self.removed_components}"
        )

    def luma_table(self) -> QuantizationTable:
        return self._remove_top_bands(
            scale_table_for_quality(STANDARD_LUMINANCE_TABLE, self.quality)
        )

    def chroma_table(self) -> QuantizationTable:
        return self._remove_top_bands(
            scale_table_for_quality(STANDARD_CHROMINANCE_TABLE, self.quality)
        )


class SameQCompressor(DatasetCompressor):
    """The paper's SAME-Q baseline: one quantization step for all 64 bands."""

    def __init__(self, step: float = 4.0) -> None:
        if step < 1:
            raise ValueError("step must be at least 1")
        self.step = float(step)
        self.name = f"SAME-Q{self.step:g}"

    def spec(self) -> dict:
        return {"codec": "same-q", "step": self.step}

    def luma_table(self) -> QuantizationTable:
        return QuantizationTable.flat(self.step, name=f"same-q{self.step:g}")

    def chroma_table(self) -> QuantizationTable:
        return self.luma_table()


register_builtin_codec("jpeg", JpegCompressor)
register_builtin_codec("rm-hf", RemoveHighFrequencyCompressor)
register_builtin_codec("same-q", SameQCompressor)
