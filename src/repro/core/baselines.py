"""Dataset-level compression: the baselines the paper compares against.

Four compressors share one interface (:class:`DatasetCompressor`):

* :class:`JpegCompressor` — ordinary JPEG with the Annex-K table scaled by
  a quality factor (the "Original" dataset is JPEG at QF=100).
* :class:`RemoveHighFrequencyCompressor` — the paper's "RM-HF" baseline:
  JPEG extended by discarding the top-N highest-frequency components.
* :class:`SameQCompressor` — the paper's "SAME-Q" baseline: a flat table
  with one step for all 64 bands.
* :class:`~repro.core.pipeline.DeepNJpegCompressor` — the proposed method
  (defined in :mod:`repro.core.pipeline`).

Compressing a dataset returns a :class:`CompressedDataset` holding the
reconstructed images (to feed a classifier) and the measured byte counts
(to compute compression ratios and, later, offloading power).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.jpeg.codec import (
    ColorJpegCodec,
    CompressionResult,
    GrayscaleJpegCodec,
)
from repro.jpeg.metrics import psnr
from repro.jpeg.quantization import (
    MAX_QUANT_STEP,
    QuantizationTable,
    STANDARD_CHROMINANCE_TABLE,
    STANDARD_LUMINANCE_TABLE,
    scale_table_for_quality,
)
from repro.jpeg.zigzag import ZIGZAG_ORDER
from repro.runtime.executor import chunk_bounds, effective_workers, imap_tasks


@dataclass(frozen=True)
class CompressedDataset:
    """Result of compressing every image of a dataset.

    Attributes
    ----------
    dataset:
        A dataset with the same labels but decompressed (lossy) images.
    method:
        Name of the compressor that produced it.
    payload_bytes / header_bytes:
        Total entropy-coded payload and marker overhead across all images.
    original_bytes:
        Total uncompressed size (one byte per sample value).
    mean_psnr:
        Mean PSNR of the reconstructions against the originals.
    """

    dataset: Dataset
    method: str
    payload_bytes: int
    header_bytes: int
    original_bytes: int
    mean_psnr: float

    @property
    def total_bytes(self) -> int:
        """Compressed size including per-image headers."""
        return self.payload_bytes + self.header_bytes

    @property
    def compression_ratio(self) -> float:
        """Dataset-level compression ratio (original / compressed)."""
        return self.original_bytes / self.total_bytes

    @property
    def payload_compression_ratio(self) -> float:
        """Compression ratio counting only entropy-coded payload."""
        return self.original_bytes / self.payload_bytes

    @property
    def bytes_per_image(self) -> float:
        """Average compressed size per image."""
        return self.total_bytes / len(self.dataset)


#: Cap on images per vectorized batch in the dataset path.
_BATCH_CHUNK = 1024

#: Rough budget for per-chunk float64 intermediates (the batch pipeline
#: holds roughly ten image-sized float64 arrays at once: colour planes,
#: quantized blocks, code arrays, reconstructions).
_BATCH_CHUNK_BYTES = 256 * 2 ** 20


def _batch_chunk_size(image_shape: tuple) -> int:
    """Images per chunk: capped by count and by intermediate bytes.

    Small images (the experiment datasets) get the full 1024-image
    chunk; large images shrink the chunk so the whole-batch float64
    intermediates stay near :data:`_BATCH_CHUNK_BYTES` instead of
    scaling with image area.
    """
    per_image = 10 * 8 * int(np.prod(image_shape))
    return int(max(1, min(_BATCH_CHUNK, _BATCH_CHUNK_BYTES // per_image)))


def _codec_for_stack(
    images: np.ndarray,
    luma_table: QuantizationTable,
    chroma_table: QuantizationTable,
    optimize_huffman: bool,
):
    """The shared codec implied by a stack's shape (validated)."""
    if images.ndim == 4:
        return ColorJpegCodec(
            luma_table,
            chroma_table if chroma_table is not None else luma_table,
            optimize_huffman=optimize_huffman,
        )
    if images.ndim == 3:
        if images.shape[-1] == 3:
            raise ValueError(
                f"ambiguous shape {images.shape}: could be one (H, W, 3) "
                "RGB image or a stack of 3-pixel-wide grayscale images; "
                "pass images[np.newaxis] for a single RGB image, or use "
                "GrayscaleJpegCodec.compress_batch directly for 3-wide "
                "grayscale stacks"
            )
        return GrayscaleJpegCodec(
            luma_table, optimize_huffman=optimize_huffman
        )
    raise ValueError(
        "expected an (N, H, W) or (N, H, W, 3) image stack, got "
        f"shape {images.shape}"
    )


#: Current parallel compression job: ``(images, codec)``.  Set by the
#: parent immediately before the worker pool forks (children inherit it
#: copy-on-write, so image stacks are never pickled) and cleared when
#: the shards are collected.
_PARALLEL_JOB = None


def _compress_chunk(bounds: tuple) -> "list[CompressionResult]":
    """Worker task: compress one ``[start, stop)`` shard of the job."""
    start, stop = bounds
    images, codec = _PARALLEL_JOB
    return codec.compress_batch(images[start:stop])


def _parallel_chunk_size(count: int, workers: int, image_shape: tuple) -> int:
    """Images per parallel shard: ~2 shards per worker, memory-capped.

    Two shards per worker keeps the pool busy when shards finish
    unevenly without multiplying per-shard result pickling; the
    :func:`_batch_chunk_size` cap bounds each worker's peak float64
    intermediates exactly like the serial path.
    """
    per_worker = max(1, -(-count // (workers * 2)))
    return min(per_worker, _batch_chunk_size(image_shape))


def _iter_compressed(images: np.ndarray, codec, workers: int):
    """Yield per-image results for a stack, optionally sharded over a pool.

    The shared-table batch path makes per-image byte streams independent
    of their neighbours (the DC predictor resets at image boundaries),
    so compressing ``[start, stop)`` shards in worker processes and
    reassembling the results in order is byte-identical to one serial
    ``compress_batch`` over the whole stack — which is exactly what
    ``workers=1`` runs.  Shard results stream through a bounded window
    (:func:`~repro.runtime.executor.imap_tasks`), so a consumer that
    aggregates incrementally never holds more than a few shards' worth
    of reconstructions at once.
    """
    global _PARALLEL_JOB
    count = int(images.shape[0])
    if count == 0:
        # Explicit empty contract: no images, no results, no pool.
        return
    workers = effective_workers(workers, task_count=count)
    shards = chunk_bounds(
        count, _parallel_chunk_size(count, workers, images.shape[1:])
    )
    if workers <= 1 or count <= 1 or len(shards) <= 1:
        yield from codec.compress_batch(images)
        return
    _PARALLEL_JOB = (images, codec)
    try:
        for chunk in imap_tasks(_compress_chunk, shards, workers=workers):
            yield from chunk
    finally:
        _PARALLEL_JOB = None


def compress_batch(
    images: np.ndarray,
    luma_table: QuantizationTable,
    chroma_table: QuantizationTable = None,
    optimize_huffman: bool = False,
    workers: int = 1,
) -> "list[CompressionResult]":
    """Compress a stack of same-shaped images with one shared codec.

    The batch entry point every dataset-level experiment goes through:
    one codec — and therefore one set of quantization and Huffman
    tables, dense code arrays and decode LUTs — is built once and
    reused across all images instead of being rebuilt per image.
    Grayscale stacks ``(N, H, W)`` run blocking, DCT, quantization and
    entropy coding as single vectorized passes over every block of the
    whole batch; colour stacks ``(N, H, W, 3)`` do the same per plane
    (colour conversion and chroma resampling are also whole-batch
    passes).  Per-image results are byte-identical to compressing each
    image individually.

    ``workers > 1`` shards the stack into contiguous image chunks
    compressed by a process pool (one shard at a time per worker, the
    same shared tables in every worker) and reassembles the per-image
    results in order; the output is identical to ``workers=1``.
    """
    images = np.asarray(images, dtype=np.float64)
    codec = _codec_for_stack(
        images, luma_table, chroma_table, optimize_huffman
    )
    return list(_iter_compressed(images, codec, workers))


def compress_dataset_with_table(
    dataset: Dataset,
    luma_table: QuantizationTable,
    chroma_table: QuantizationTable = None,
    method: str = "custom",
    optimize_huffman: bool = False,
    workers: int = 1,
) -> CompressedDataset:
    """Compress every image of ``dataset`` with the given table(s).

    Grayscale datasets use :class:`GrayscaleJpegCodec`; colour datasets go
    through the YCbCr path of :class:`ColorJpegCodec`.  All images run
    through the codec's ``compress_batch``, so tables and coder state are
    shared across the dataset.  The dataset's dimensionality decides the
    modality here (``ndim == 4`` is colour), so even pathological shapes
    like 3-pixel-wide grayscale images dispatch correctly.

    ``workers > 1`` shards the dataset into contiguous image chunks
    over a process pool (see :func:`compress_batch`); per-image results
    — and therefore every aggregate below — are identical to the serial
    run.
    """
    images = dataset.images
    reconstructed = np.empty_like(images)
    payload = 0
    header = 0
    psnr_values = []
    if images.ndim == 4:
        # Colour batches share the vectorized per-plane entropy path.
        codec = ColorJpegCodec(
            luma_table,
            chroma_table if chroma_table is not None else luma_table,
            optimize_huffman=optimize_huffman,
        )
    else:
        codec = GrayscaleJpegCodec(
            luma_table, optimize_huffman=optimize_huffman
        )
    if effective_workers(workers, task_count=images.shape[0]) > 1:
        # Streams shard results through a bounded window, so the
        # parallel path keeps the same peak-memory character as the
        # serial chunked loop below (plus the reassembled output array).
        results = _iter_compressed(images, codec, workers)
    else:
        # Chunking bounds peak memory (the batch pipeline holds several
        # chunk-sized float64 intermediates at once) while keeping the
        # vectorization win; the chunk shrinks for large images so peak
        # memory is bounded in bytes, not image count.
        chunk = _batch_chunk_size(images.shape[1:])
        results = (
            result
            for start in range(0, images.shape[0], chunk)
            for result in codec.compress_batch(images[start:start + chunk])
        )
    for index, result in enumerate(results):
        reconstructed[index] = result.reconstructed
        payload += result.payload_bytes
        header += result.header_bytes
        psnr_values.append(psnr(images[index], result.reconstructed))
    finite = [value for value in psnr_values if np.isfinite(value)]
    mean_psnr = float(np.mean(finite)) if finite else float("inf")
    return CompressedDataset(
        dataset=dataset.with_images(reconstructed),
        method=method,
        payload_bytes=int(payload),
        header_bytes=int(header),
        original_bytes=dataset.uncompressed_bytes(),
        mean_psnr=mean_psnr,
    )


class DatasetCompressor:
    """Interface of every dataset-level compressor."""

    #: Human-readable name used in experiment tables.
    name = "abstract"

    def luma_table(self) -> QuantizationTable:
        """The luminance quantization table this compressor uses."""
        raise NotImplementedError

    def chroma_table(self) -> QuantizationTable:
        """The chrominance quantization table (defaults to the luma table)."""
        return self.luma_table()

    def compress_dataset(
        self, dataset: Dataset, optimize_huffman: bool = False,
        workers: int = 1,
    ) -> CompressedDataset:
        """Compress every image of ``dataset`` and collect statistics.

        ``workers > 1`` shards the dataset over a process pool with the
        same results (see :func:`compress_dataset_with_table`).
        """
        return compress_dataset_with_table(
            dataset,
            self.luma_table(),
            self.chroma_table(),
            method=self.name,
            optimize_huffman=optimize_huffman,
            workers=workers,
        )


class JpegCompressor(DatasetCompressor):
    """Ordinary JPEG with the standard tables scaled by a quality factor."""

    def __init__(self, quality: int = 100) -> None:
        if not 1 <= quality <= 100:
            raise ValueError("quality must be in [1, 100]")
        self.quality = int(quality)
        self.name = f"JPEG (QF={self.quality})"

    def luma_table(self) -> QuantizationTable:
        return QuantizationTable.standard_luminance(self.quality)

    def chroma_table(self) -> QuantizationTable:
        return QuantizationTable.standard_chrominance(self.quality)


class RemoveHighFrequencyCompressor(DatasetCompressor):
    """The paper's RM-HF baseline.

    Standard JPEG at the given quality, extended by *removing* the top-N
    highest-frequency components: their quantization steps are raised to
    the maximum representable value so the corresponding coefficients
    quantize to zero for natural image content.
    """

    def __init__(self, removed_components: int = 3, quality: int = 100) -> None:
        if not 0 <= removed_components < 64:
            raise ValueError("removed_components must be in [0, 63]")
        if not 1 <= quality <= 100:
            raise ValueError("quality must be in [1, 100]")
        self.removed_components = int(removed_components)
        self.quality = int(quality)
        self.name = f"RM-HF{self.removed_components}"

    def _remove_top_bands(self, base_table: np.ndarray) -> QuantizationTable:
        values = np.array(base_table, dtype=np.float64)
        flat = values.reshape(-1)
        if self.removed_components:
            top_bands = ZIGZAG_ORDER[64 - self.removed_components:]
            flat[top_bands] = MAX_QUANT_STEP
        return QuantizationTable(
            flat.reshape(8, 8), name=f"rm-hf{self.removed_components}"
        )

    def luma_table(self) -> QuantizationTable:
        return self._remove_top_bands(
            scale_table_for_quality(STANDARD_LUMINANCE_TABLE, self.quality)
        )

    def chroma_table(self) -> QuantizationTable:
        return self._remove_top_bands(
            scale_table_for_quality(STANDARD_CHROMINANCE_TABLE, self.quality)
        )


class SameQCompressor(DatasetCompressor):
    """The paper's SAME-Q baseline: one quantization step for all 64 bands."""

    def __init__(self, step: float = 4.0) -> None:
        if step < 1:
            raise ValueError("step must be at least 1")
        self.step = float(step)
        self.name = f"SAME-Q{self.step:g}"

    def luma_table(self) -> QuantizationTable:
        return QuantizationTable.flat(self.step, name=f"same-q{self.step:g}")

    def chroma_table(self) -> QuantizationTable:
        return self.luma_table()
