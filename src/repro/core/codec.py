"""The unified codec abstraction: protocol, registry, shared batch path.

Every compression surface of the reproduction — the raw JPEG codecs
(:class:`~repro.jpeg.codec.GrayscaleJpegCodec`,
:class:`~repro.jpeg.codec.ColorJpegCodec`), the paper's baselines
(:class:`~repro.core.baselines.JpegCompressor`,
:class:`~repro.core.baselines.SameQCompressor`,
:class:`~repro.core.baselines.RemoveHighFrequencyCompressor`) and the
proposed method (:class:`~repro.core.pipeline.DeepNJpeg`) — implements
one structural :class:`Codec` protocol: ``encode`` / ``decode`` /
``compress`` / ``compress_batch`` / ``header_bytes`` plus ``spec()``, a
JSON-able self-description that the string-keyed registry
(:func:`register_codec` / :func:`build_codec` /
:func:`build_codec_from_spec`) can turn back into an equivalent codec.
Specs double as content-addressable identities: the experiment artifact
store (:mod:`repro.experiments.store`) keys cached grid cells on them.

The module also owns the single shared dataset path that the former
``baselines._codec_for_stack`` / ``baselines._iter_compressed`` /
per-call chunk loops duplicated: :func:`codec_for_stack` dispatches a
stack's modality to the right JPEG codec, and
:func:`iter_compressed_stack` streams per-image results through one
memory-bounded chunked loop (serial) or a forked process pool
(``workers > 1``) — byte-identical either way.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

import numpy as np

from repro.jpeg.codec import (
    ColorJpegCodec,
    CompressionResult,
    EncodedImage,
    GrayscaleJpegCodec,
)
from repro.jpeg.quantization import QuantizationTable
from repro.runtime import shm
from repro.runtime.executor import chunk_bounds, effective_workers, imap_tasks


@runtime_checkable
class Codec(Protocol):
    """Structural protocol every compression surface implements.

    ``encode`` / ``decode`` translate between pixels and entropy-coded
    streams; ``compress`` / ``compress_batch`` round-trip images and
    report measured sizes; ``header_bytes`` accounts the marker
    overhead; ``spec()`` returns a JSON-able description with a
    ``"codec"`` key naming a registry entry, such that
    ``build_codec_from_spec(codec.spec())`` rebuilds an equivalent
    codec.
    """

    def spec(self) -> dict: ...

    def encode(self, image: np.ndarray): ...

    def decode(self, encoded) -> np.ndarray: ...

    def compress(self, image: np.ndarray) -> CompressionResult: ...

    def compress_batch(self, images: np.ndarray) -> "list[CompressionResult]": ...

    def header_bytes(self) -> int: ...


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: "dict[str, Callable]" = {}


def register_codec(
    name: str, factory: Callable, overwrite: bool = False
) -> Callable:
    """Register ``factory`` (a class or callable) under ``name``.

    Raises :class:`ValueError` on duplicate registration unless
    ``overwrite`` is set (useful for tests swapping in fakes).  Returns
    the factory so call sites can use it as a registration expression.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"codec name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"codec {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[name] = factory
    return factory


def register_builtin_codec(name: str, factory: Callable) -> Callable:
    """Register a factory owned by this package.

    Builtins snapshot their factory at registration time so
    :func:`unregister_codec` can always restore the original, and they
    install unconditionally — importing the owning module reclaims the
    name even if a test registered a fake first.
    """
    _BUILTINS[name] = factory
    _REGISTRY[name] = factory
    return factory


def unregister_codec(name: str) -> None:
    """Remove a registry entry (primarily for test cleanup).

    Unregistering a *builtin* name restores its original factory
    instead of deleting it — builtin registration is a one-time import
    side effect, so a plain delete would leave ``build_codec`` broken
    for that name for the rest of the process.
    """
    _ensure_builtin_codecs()
    _REGISTRY.pop(name, None)
    original = _BUILTINS.get(name)
    if original is not None:
        _REGISTRY[name] = original


def codec_names() -> "list[str]":
    """Sorted names of every registered codec."""
    _ensure_builtin_codecs()
    return sorted(_REGISTRY)


def build_codec(name: str, **params) -> Codec:
    """Instantiate the codec registered under ``name`` with ``params``.

    Unknown names raise :class:`KeyError` listing the registered names.
    """
    _ensure_builtin_codecs()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; registered codecs: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory(**params)


def build_codec_from_spec(spec: dict) -> Codec:
    """Rebuild a codec from a ``spec()`` payload (``{"codec": name, ...}``)."""
    if "codec" not in spec:
        raise ValueError(f"codec spec missing 'codec' key: {spec!r}")
    params = {key: value for key, value in spec.items() if key != "codec"}
    return build_codec(spec["codec"], **params)


#: Original factories of the names owned by this package, snapshotted
#: by :func:`register_builtin_codec` so they survive test-time
#: ``overwrite=True`` / :func:`unregister_codec` churn.
_BUILTINS: "dict[str, Callable]" = {}


def _ensure_builtin_codecs() -> None:
    """Import the modules whose import side effect registers the builtins.

    The baselines and the DeepN-JPEG pipeline register themselves at
    import time; importing lazily here keeps ``repro.core.codec``
    importable on its own without a circular import.
    """
    import repro.core.baselines  # noqa: F401  (registers jpeg/rm-hf/same-q)
    import repro.core.pipeline  # noqa: F401  (registers deepn-jpeg)


def _as_table(value) -> Optional[QuantizationTable]:
    """Coerce a factory argument into a table (JSON payload or table)."""
    if value is None or isinstance(value, QuantizationTable):
        return value
    return QuantizationTable.from_json(value)


def _build_grayscale_jpeg(table, optimize_huffman=False) -> GrayscaleJpegCodec:
    return GrayscaleJpegCodec(
        _as_table(table), optimize_huffman=optimize_huffman
    )


def _build_color_jpeg(
    luma_table,
    chroma_table=None,
    subsample_chroma=True,
    optimize_huffman=False,
) -> ColorJpegCodec:
    return ColorJpegCodec(
        _as_table(luma_table),
        _as_table(chroma_table),
        subsample_chroma=subsample_chroma,
        optimize_huffman=optimize_huffman,
    )


register_builtin_codec("jpeg-grayscale", _build_grayscale_jpeg)
register_builtin_codec("jpeg-color", _build_color_jpeg)


# ----------------------------------------------------------------------
# Shared dataset path (modality dispatch + chunked / sharded batches)
# ----------------------------------------------------------------------

#: Cap on images per vectorized batch in the dataset path.
_BATCH_CHUNK = 1024

#: Rough budget for per-chunk float64 intermediates (the batch pipeline
#: holds roughly ten image-sized float64 arrays at once: colour planes,
#: quantized blocks, code arrays, reconstructions).
_BATCH_CHUNK_BYTES = 256 * 2 ** 20


def batch_chunk_size(image_shape: tuple) -> int:
    """Images per chunk: capped by count and by intermediate bytes.

    Small images (the experiment datasets) get the full 1024-image
    chunk; large images shrink the chunk so the whole-batch float64
    intermediates stay near :data:`_BATCH_CHUNK_BYTES` instead of
    scaling with image area.
    """
    per_image = 10 * 8 * int(np.prod(image_shape))
    return int(max(1, min(_BATCH_CHUNK, _BATCH_CHUNK_BYTES // per_image)))


def codec_for_stack(
    images: np.ndarray,
    luma_table: QuantizationTable,
    chroma_table: Optional[QuantizationTable] = None,
    optimize_huffman: bool = False,
    strict: bool = True,
):
    """The shared JPEG codec implied by a stack's shape (validated).

    With ``strict`` (the default for raw arrays) a 3-trailing-dim
    ``(N, H, 3)`` stack is rejected as ambiguous; dataset callers pass
    ``strict=False`` because a :class:`~repro.data.dataset.Dataset`'s
    dimensionality is authoritative (``ndim == 4`` is colour), so even
    pathological 3-pixel-wide grayscale images dispatch correctly.
    """
    if images.ndim == 4:
        return ColorJpegCodec(
            luma_table,
            chroma_table if chroma_table is not None else luma_table,
            optimize_huffman=optimize_huffman,
        )
    if images.ndim == 3:
        if strict and images.shape[-1] == 3:
            raise ValueError(
                f"ambiguous shape {images.shape}: could be one (H, W, 3) "
                "RGB image or a stack of 3-pixel-wide grayscale images; "
                "pass images[np.newaxis] for a single RGB image, or use "
                "GrayscaleJpegCodec.compress_batch directly for 3-wide "
                "grayscale stacks"
            )
        return GrayscaleJpegCodec(
            luma_table, optimize_huffman=optimize_huffman
        )
    raise ValueError(
        "expected an (N, H, W) or (N, H, W, 3) image stack, got "
        f"shape {images.shape}"
    )


def codec_for_image(
    image: np.ndarray,
    luma_table: QuantizationTable,
    chroma_table: Optional[QuantizationTable] = None,
    optimize_huffman: bool = False,
):
    """The JPEG codec implied by ONE image's shape.

    The single-image counterpart of :func:`codec_for_stack`: the
    image's own rank decides the modality — ``(H, W)`` grayscale,
    ``(H, W, 3)`` RGB — so the stack dispatch runs non-strict (a
    3-pixel-wide 2-D grayscale image is not ambiguous here).
    """
    image = np.asarray(image)
    if image.ndim == 2 or (image.ndim == 3 and image.shape[-1] == 3):
        return codec_for_stack(
            image[np.newaxis], luma_table, chroma_table,
            optimize_huffman=optimize_huffman, strict=False,
        )
    raise ValueError(
        f"expected (H, W) or (H, W, 3) image, got shape {image.shape}"
    )


def decode_encoded(
    encoded,
    luma_table: QuantizationTable,
    chroma_table: Optional[QuantizationTable] = None,
) -> np.ndarray:
    """Decode an encoded stream with the given tables (modality-dispatched).

    The one decode helper behind every table-holding compression
    surface: an :class:`~repro.jpeg.codec.EncodedImage` decodes through
    the colour path (honouring the subsampling recorded on the stream),
    anything else through the grayscale path.
    """
    if isinstance(encoded, EncodedImage):
        return ColorJpegCodec(
            luma_table,
            chroma_table,
            subsample_chroma=encoded.subsample_chroma,
        ).decode(encoded)
    return GrayscaleJpegCodec(luma_table).decode(encoded)


def modality_header_bytes(
    luma_table: QuantizationTable,
    chroma_table: Optional[QuantizationTable] = None,
    color: bool = False,
) -> int:
    """Per-image marker overhead of the given tables for one modality."""
    if color:
        return ColorJpegCodec(luma_table, chroma_table).header_bytes()
    return GrayscaleJpegCodec(luma_table).header_bytes()


#: Current parallel compression job: ``(images, codec)``.  Set by the
#: parent immediately before the worker pool forks (children inherit it
#: copy-on-write, so image stacks are never pickled) and cleared when
#: the shards are collected.  This is the **fallback** path for
#: platforms without shared memory: fork inheritance snapshots the
#: global at fork time, so a warm persistent pool reused by a second
#: job would silently compress the *first* job's stack — the
#: shared-memory path below ships the stack per task instead.
_PARALLEL_JOB = None


def _compress_chunk(bounds: tuple) -> "list[CompressionResult]":
    """Worker task: compress one ``[start, stop)`` shard of the job."""
    start, stop = bounds
    images, codec = _PARALLEL_JOB
    return codec.compress_batch(images[start:stop])


def _compress_shard(task: tuple) -> "list[CompressionResult]":
    """Worker task: compress one shard of a shared-memory image stack.

    The task is self-contained — ``(stack handle, codec, start, stop)``
    — so it is correct on *any* worker regardless of what that worker
    inherited at fork time (warm persistent pools, socket daemons on
    the same host).  The worker maps the parent's segment once per job
    (:func:`repro.runtime.shm.attach_stack` caches the mapping) and
    slices its shard without copying the rest of the stack; the parent
    owns the segment's lifetime.
    """
    handle, codec, start, stop = task
    images = shm.attach_stack(handle)
    return codec.compress_batch(images[start:stop])


def _parallel_chunk_size(count: int, workers: int, image_shape: tuple) -> int:
    """Images per parallel shard: ~2 shards per worker, memory-capped.

    Two shards per worker keeps the pool busy when shards finish
    unevenly without multiplying per-shard result pickling; the
    :func:`batch_chunk_size` cap bounds each worker's peak float64
    intermediates exactly like the serial path.
    """
    per_worker = max(1, -(-count // (workers * 2)))
    return min(per_worker, batch_chunk_size(image_shape))


def iter_compressed_stack(images: np.ndarray, codec, workers: int = 1):
    """Yield per-image results for a stack, optionally sharded over a pool.

    The one dataset loop behind every batch entry point.  Serially the
    stack runs through ``codec.compress_batch`` in memory-bounded chunks
    (:func:`batch_chunk_size`); with ``workers > 1`` contiguous
    ``[start, stop)`` shards are compressed by worker processes and the
    results reassembled in order.  The shared-table batch path makes
    per-image byte streams independent of their neighbours (the DC
    predictor resets at image boundaries), so chunking and sharding are
    both byte-identical to one whole-stack ``compress_batch``.  Shard
    results stream through a bounded window
    (:func:`~repro.runtime.executor.imap_tasks`), so a consumer that
    aggregates incrementally never holds more than a few shards' worth
    of reconstructions at once.
    """
    global _PARALLEL_JOB
    count = int(images.shape[0])
    if count == 0:
        # Explicit empty contract: no images, no results, no pool.
        return
    workers = effective_workers(workers, task_count=count)
    if workers > 1:
        shards = chunk_bounds(
            count, _parallel_chunk_size(count, workers, images.shape[1:])
        )
    else:
        shards = chunk_bounds(count, batch_chunk_size(images.shape[1:]))
    if workers <= 1 or count <= 1 or len(shards) <= 1:
        for start, stop in shards:
            yield from codec.compress_batch(images[start:stop])
        return
    if shm.enabled():
        # Ship the stack through one shared-memory segment keyed into
        # the task payloads: self-contained tasks are correct on any
        # worker (including warm persistent-pool workers forked during
        # an earlier job, which the fork-inherited global below would
        # silently serve stale data to) and never pickle pixel data.
        stack = shm.create_stack(images)
        try:
            tasks = [
                (stack.handle, codec, start, stop) for start, stop in shards
            ]
            for chunk in imap_tasks(_compress_shard, tasks, workers=workers):
                yield from chunk
        finally:
            stack.close()
        return
    _PARALLEL_JOB = (images, codec)
    try:
        for chunk in imap_tasks(_compress_chunk, shards, workers=workers):
            yield from chunk
    finally:
        _PARALLEL_JOB = None


def compress_stack(
    images: np.ndarray, codec, workers: int = 1
) -> "list[CompressionResult]":
    """Per-image results of compressing a whole stack with one codec."""
    return list(iter_compressed_stack(images, codec, workers))
