"""Configuration of the DeepN-JPEG pipeline."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.analysis.bands import LF_BAND_COUNT, MF_BAND_COUNT


@dataclass(frozen=True)
class DeepNJpegConfig:
    """All knobs of the DeepN-JPEG table design and compression pipeline.

    Attributes
    ----------
    lf_band_count / mf_band_count:
        Sizes of the low- and mid-frequency groups used to place the PLM
        thresholds (the paper uses 6 and 22; the remaining 36 bands form
        the HF group).
    q_max_step:
        Step assigned to a zero-energy band (intercept ``a`` of Eq. 3).
    q1:
        Largest accuracy-neutral step for the HF group (Fig. 5(c)).
    q2:
        Largest accuracy-neutral step for the MF group (Fig. 5(b)).
    q_min:
        Floor on every step, protecting the highest-energy bands
        (Fig. 5(a)).
    k3:
        Slope of the LF segment, the compression-rate-vs-accuracy knob of
        Fig. 6.
    lf_intercept:
        Intercept ``c`` of the LF segment; ``None`` keeps the mapping
        continuous at ``t2``.
    sampling_interval / max_samples_per_class:
        Algorithm-1 sampling parameters.
    chroma_scale:
        Multiplier applied to the designed luma table to obtain the chroma
        table when compressing colour images (chroma carries less
        classification signal, mirroring the Annex-K luma/chroma ratio).
    optimize_huffman:
        Build per-image optimized Huffman tables instead of the Annex K
        defaults.
    """

    lf_band_count: int = LF_BAND_COUNT
    mf_band_count: int = MF_BAND_COUNT
    q_max_step: float = 255.0
    q1: float = 60.0
    q2: float = 20.0
    q_min: float = 5.0
    k3: float = 3.0
    lf_intercept: Optional[float] = None
    sampling_interval: int = 4
    max_samples_per_class: Optional[int] = None
    chroma_scale: float = 1.5
    optimize_huffman: bool = False

    def to_json(self) -> dict:
        """JSON-able payload round-tripping the configuration exactly."""
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "DeepNJpegConfig":
        """Rebuild a configuration from a :meth:`to_json` payload."""
        return cls(**payload)

    def __post_init__(self) -> None:
        if self.lf_band_count < 1 or self.mf_band_count < 1:
            raise ValueError("band group sizes must be positive")
        if self.lf_band_count + self.mf_band_count >= 64:
            raise ValueError("LF + MF bands must leave room for the HF group")
        if not self.q_min <= self.q2 <= self.q1 <= self.q_max_step:
            raise ValueError(
                "step anchors must satisfy q_min <= q2 <= q1 <= q_max_step"
            )
        if self.k3 < 0:
            raise ValueError("k3 must be non-negative")
        if self.sampling_interval < 1:
            raise ValueError("sampling_interval must be at least 1")
        if self.chroma_scale <= 0:
            raise ValueError("chroma_scale must be positive")
