"""The end-to-end DeepN-JPEG pipeline.

:class:`DeepNJpeg` ties the whole framework together:

1. ``fit(dataset)`` runs Algorithm 1 (class-balanced sampling + block-DCT
   statistics) and designs the quantization table through the piece-wise
   linear mapping.
2. ``compress(image)`` / ``compress_dataset(dataset)`` apply the designed
   table through the ordinary JPEG pipeline, so the decoder and hardware
   cost are exactly those of JPEG.

:class:`DeepNJpegCompressor` adapts a fitted pipeline to the
:class:`~repro.core.baselines.DatasetCompressor` interface used by the
experiments.

A fitted pipeline is a *serializable artifact*: :meth:`DeepNJpeg.save`
persists the configuration and the complete table design (tables,
mapping, statistics, segmentation) as versioned JSON, and
:meth:`DeepNJpeg.load` restores a pipeline that re-compresses every
image bit-identically — the object that ships to the edge in the
serving story.
"""

from __future__ import annotations

import json
import os
from typing import Optional

import numpy as np

from repro.analysis.frequency import FrequencyStatistics, analyze_dataset
from repro.core.baselines import (
    CompressedDataset,
    DatasetCompressor,
    compress_dataset_with_table,
)
from repro.core.codec import (
    codec_for_image,
    codec_for_stack,
    compress_stack,
    decode_encoded,
    modality_header_bytes,
    register_builtin_codec,
)
from repro.core.config import DeepNJpegConfig
from repro.core.table_design import DeepNJpegTableDesigner, TableDesignResult
from repro.data.dataset import Dataset
from repro.jpeg.codec import CompressionResult
from repro.jpeg.quantization import QuantizationTable

#: Format tag and version of the saved-artifact JSON layout.
ARTIFACT_FORMAT = "deepn-jpeg-artifact"
ARTIFACT_VERSION = 1


class DeepNJpeg:
    """DNN-favourable JPEG compression, fitted to a labelled dataset."""

    def __init__(self, config: Optional[DeepNJpegConfig] = None) -> None:
        self.config = config if config is not None else DeepNJpegConfig()
        self._designer = DeepNJpegTableDesigner(self.config)
        self._design: Optional[TableDesignResult] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` (or :meth:`fit_statistics`) has run."""
        return self._design is not None

    @property
    def design(self) -> TableDesignResult:
        """The table design result (raises if not fitted)."""
        self._require_fitted()
        return self._design

    @property
    def table(self) -> QuantizationTable:
        """The designed luminance quantization table."""
        return self.design.table

    @property
    def statistics(self) -> FrequencyStatistics:
        """The frequency statistics the table was designed from."""
        return self.design.statistics

    def fit(self, dataset: Dataset) -> "DeepNJpeg":
        """Run Algorithm 1 on ``dataset`` and design the quantization table."""
        statistics = analyze_dataset(
            dataset,
            interval=self.config.sampling_interval,
            max_per_class=self.config.max_samples_per_class,
        )
        return self.fit_statistics(statistics)

    def fit_statistics(self, statistics: FrequencyStatistics) -> "DeepNJpeg":
        """Design the table from pre-computed frequency statistics."""
        self._design = self._designer.design(statistics)
        return self

    def spec(self) -> dict:
        """JSON-able description; rebuilds this pipeline via the registry.

        For a fitted pipeline the payload embeds the complete table
        design, so the spec is a content address of the fitted artifact:
        two pipelines with the same spec compress bit-identically.
        """
        return {
            "codec": "deepn-jpeg",
            "config": self.config.to_json(),
            "design": self._design.to_json() if self.is_fitted else None,
        }

    def save(self, path: str) -> None:
        """Persist the fitted pipeline as a versioned JSON artifact."""
        self._require_fitted()
        payload = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "config": self.config.to_json(),
            "design": self._design.to_json(),
        }
        # PID-suffixed temp file + rename: concurrent savers (parallel
        # shards, jobs sharing a volume) each publish a complete file.
        temporary = f"{path}.{os.getpid()}.tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temporary, path)

    @classmethod
    def load(cls, path: str) -> "DeepNJpeg":
        """Restore a pipeline saved by :meth:`save` (bit-exact tables)."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != ARTIFACT_FORMAT:
            raise ValueError(
                f"{path} is not a {ARTIFACT_FORMAT} file "
                f"(format={payload.get('format')!r})"
            )
        if payload.get("version") != ARTIFACT_VERSION:
            raise ValueError(
                f"unsupported artifact version {payload.get('version')} "
                f"(this build reads version {ARTIFACT_VERSION})"
            )
        pipeline = cls(DeepNJpegConfig.from_json(payload["config"]))
        pipeline._design = TableDesignResult.from_json(payload["design"])
        return pipeline

    def _codec_for(self, image: np.ndarray):
        """The JPEG codec matching one image's modality.

        Shared single-image shape contract
        (:func:`repro.core.codec.codec_for_image`) with the designed
        tables.
        """
        return codec_for_image(
            image,
            self._design.table,
            self._design.chroma_table,
            optimize_huffman=self.config.optimize_huffman,
        )

    def encode(self, image: np.ndarray):
        """Entropy-code one image with the designed tables."""
        self._require_fitted()
        image = np.asarray(image, dtype=np.float64)
        return self._codec_for(image).encode(image)

    def decode(self, encoded) -> np.ndarray:
        """Decode a stream previously produced by :meth:`encode`."""
        self._require_fitted()
        return decode_encoded(
            encoded, self._design.table, self._design.chroma_table
        )

    def encode_to_bytes(self, image: np.ndarray) -> bytes:
        """Encode one image into a self-contained byte container.

        The container embeds the designed tables, so
        :func:`repro.jpeg.container.decode_image_bytes` inverts it
        without the fitted pipeline — the wire format for shipping
        compressed samples off the edge device.
        """
        self._require_fitted()
        image = np.asarray(image, dtype=np.float64)
        return self._codec_for(image).encode_to_bytes(image)

    def header_bytes(self, color: bool = False) -> int:
        """Marker-segment overhead per image for the given modality."""
        self._require_fitted()
        return modality_header_bytes(
            self._design.table, self._design.chroma_table, color=color
        )

    def compress(self, image: np.ndarray) -> CompressionResult:
        """Compress (and reconstruct) one grayscale or RGB image."""
        self._require_fitted()
        image = np.asarray(image, dtype=np.float64)
        return self._codec_for(image).compress(image)

    def compress_batch(
        self, images: np.ndarray, workers: int = 1
    ) -> "list[CompressionResult]":
        """Round-trip a stack of same-shaped images with the designed tables.

        ``(N, H, W)`` stacks run grayscale, ``(N, H, W, 3)`` colour —
        the shape contract of :func:`repro.core.codec.codec_for_stack`,
        including the explicit rejection of ambiguous ``(N, H, 3)``
        stacks and the empty-stack → ``[]`` case; ``workers > 1``
        shards the stack over a process pool with identical results
        (see :func:`repro.core.codec.compress_stack`).
        """
        self._require_fitted()
        images = np.asarray(images, dtype=np.float64)
        codec = codec_for_stack(
            images,
            self._design.table,
            self._design.chroma_table,
            optimize_huffman=self.config.optimize_huffman,
        )
        return compress_stack(images, codec, workers)

    def compress_dataset(
        self, dataset: Dataset, workers: int = 1
    ) -> CompressedDataset:
        """Compress every image of ``dataset`` with the designed table.

        ``workers > 1`` shards the dataset over a process pool with
        identical results (see
        :func:`repro.core.baselines.compress_dataset_with_table`).
        """
        self._require_fitted()
        return compress_dataset_with_table(
            dataset,
            self._design.table,
            self._design.chroma_table,
            method="DeepN-JPEG",
            optimize_huffman=self.config.optimize_huffman,
            workers=workers,
        )

    def _require_fitted(self) -> None:
        if self._design is None:
            raise RuntimeError(
                "DeepNJpeg must be fitted (call fit or fit_statistics) before use"
            )


class DeepNJpegCompressor(DatasetCompressor):
    """Adapter exposing a fitted :class:`DeepNJpeg` as a DatasetCompressor."""

    name = "DeepN-JPEG"

    def __init__(self, pipeline: DeepNJpeg) -> None:
        if not pipeline.is_fitted:
            raise ValueError("pipeline must be fitted before wrapping it")
        self.pipeline = pipeline

    @classmethod
    def fit(
        cls, dataset: Dataset, config: Optional[DeepNJpegConfig] = None
    ) -> "DeepNJpegCompressor":
        """Fit a new pipeline on ``dataset`` and wrap it."""
        return cls(DeepNJpeg(config).fit(dataset))

    def spec(self) -> dict:
        """The wrapped pipeline's spec (the fitted artifact's identity)."""
        return self.pipeline.spec()

    def optimize_huffman(self) -> bool:
        """Follow the wrapped pipeline's configuration.

        Keeps the per-image codec path bit-identical to the pipeline's
        own — the ``spec()`` content address describes exactly the
        streams this wrapper produces.
        """
        return self.pipeline.config.optimize_huffman

    def compress_dataset(
        self, dataset: Dataset, optimize_huffman: Optional[bool] = None,
        workers: int = 1,
    ) -> CompressedDataset:
        """Compress ``dataset`` with the designed tables.

        ``optimize_huffman=None`` (the default) follows the wrapped
        pipeline's configuration, so the dataset path matches what the
        wrapper's ``spec()`` describes; pass an explicit boolean to
        override.
        """
        if optimize_huffman is None:
            optimize_huffman = self.pipeline.config.optimize_huffman
        return super().compress_dataset(
            dataset, optimize_huffman=optimize_huffman, workers=workers
        )

    def luma_table(self) -> QuantizationTable:
        return self.pipeline.design.table

    def chroma_table(self) -> QuantizationTable:
        return self.pipeline.design.chroma_table


def _build_deepn_jpeg(config=None, design=None) -> DeepNJpeg:
    """Registry factory: rebuild a (possibly fitted) DeepN-JPEG pipeline.

    ``config`` and ``design`` accept live objects or their ``to_json``
    payloads, so ``build_codec_from_spec(pipeline.spec())`` restores a
    fitted pipeline exactly.
    """
    if isinstance(config, dict):
        config = DeepNJpegConfig.from_json(config)
    pipeline = DeepNJpeg(config)
    if design is not None:
        if isinstance(design, dict):
            design = TableDesignResult.from_json(design)
        pipeline._design = design
    return pipeline


register_builtin_codec("deepn-jpeg", _build_deepn_jpeg)
