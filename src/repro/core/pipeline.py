"""The end-to-end DeepN-JPEG pipeline.

:class:`DeepNJpeg` ties the whole framework together:

1. ``fit(dataset)`` runs Algorithm 1 (class-balanced sampling + block-DCT
   statistics) and designs the quantization table through the piece-wise
   linear mapping.
2. ``compress(image)`` / ``compress_dataset(dataset)`` apply the designed
   table through the ordinary JPEG pipeline, so the decoder and hardware
   cost are exactly those of JPEG.

:class:`DeepNJpegCompressor` adapts a fitted pipeline to the
:class:`~repro.core.baselines.DatasetCompressor` interface used by the
experiments.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.frequency import FrequencyStatistics, analyze_dataset
from repro.core.baselines import (
    CompressedDataset,
    DatasetCompressor,
    compress_dataset_with_table,
)
from repro.core.config import DeepNJpegConfig
from repro.core.table_design import DeepNJpegTableDesigner, TableDesignResult
from repro.data.dataset import Dataset
from repro.jpeg.codec import ColorJpegCodec, CompressionResult, GrayscaleJpegCodec
from repro.jpeg.quantization import QuantizationTable


class DeepNJpeg:
    """DNN-favourable JPEG compression, fitted to a labelled dataset."""

    def __init__(self, config: DeepNJpegConfig = None) -> None:
        self.config = config if config is not None else DeepNJpegConfig()
        self._designer = DeepNJpegTableDesigner(self.config)
        self._design: TableDesignResult = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` (or :meth:`fit_statistics`) has run."""
        return self._design is not None

    @property
    def design(self) -> TableDesignResult:
        """The table design result (raises if not fitted)."""
        self._require_fitted()
        return self._design

    @property
    def table(self) -> QuantizationTable:
        """The designed luminance quantization table."""
        return self.design.table

    @property
    def statistics(self) -> FrequencyStatistics:
        """The frequency statistics the table was designed from."""
        return self.design.statistics

    def fit(self, dataset: Dataset) -> "DeepNJpeg":
        """Run Algorithm 1 on ``dataset`` and design the quantization table."""
        statistics = analyze_dataset(
            dataset,
            interval=self.config.sampling_interval,
            max_per_class=self.config.max_samples_per_class,
        )
        return self.fit_statistics(statistics)

    def fit_statistics(self, statistics: FrequencyStatistics) -> "DeepNJpeg":
        """Design the table from pre-computed frequency statistics."""
        self._design = self._designer.design(statistics)
        return self

    def compress(self, image: np.ndarray) -> CompressionResult:
        """Compress (and reconstruct) one grayscale or RGB image."""
        self._require_fitted()
        image = np.asarray(image, dtype=np.float64)
        if image.ndim == 2:
            codec = GrayscaleJpegCodec(
                self._design.table, optimize_huffman=self.config.optimize_huffman
            )
        elif image.ndim == 3 and image.shape[-1] == 3:
            codec = ColorJpegCodec(
                self._design.table,
                self._design.chroma_table,
                optimize_huffman=self.config.optimize_huffman,
            )
        else:
            raise ValueError(
                f"expected (H, W) or (H, W, 3) image, got shape {image.shape}"
            )
        return codec.compress(image)

    def compress_dataset(
        self, dataset: Dataset, workers: int = 1
    ) -> CompressedDataset:
        """Compress every image of ``dataset`` with the designed table.

        ``workers > 1`` shards the dataset over a process pool with
        identical results (see
        :func:`repro.core.baselines.compress_dataset_with_table`).
        """
        self._require_fitted()
        return compress_dataset_with_table(
            dataset,
            self._design.table,
            self._design.chroma_table,
            method="DeepN-JPEG",
            optimize_huffman=self.config.optimize_huffman,
            workers=workers,
        )

    def _require_fitted(self) -> None:
        if self._design is None:
            raise RuntimeError(
                "DeepNJpeg must be fitted (call fit or fit_statistics) before use"
            )


class DeepNJpegCompressor(DatasetCompressor):
    """Adapter exposing a fitted :class:`DeepNJpeg` as a DatasetCompressor."""

    name = "DeepN-JPEG"

    def __init__(self, pipeline: DeepNJpeg) -> None:
        if not pipeline.is_fitted:
            raise ValueError("pipeline must be fitted before wrapping it")
        self.pipeline = pipeline

    @classmethod
    def fit(
        cls, dataset: Dataset, config: DeepNJpegConfig = None
    ) -> "DeepNJpegCompressor":
        """Fit a new pipeline on ``dataset`` and wrap it."""
        return cls(DeepNJpeg(config).fit(dataset))

    def luma_table(self) -> QuantizationTable:
        return self.pipeline.design.table

    def chroma_table(self) -> QuantizationTable:
        return self.pipeline.design.chroma_table
