"""The piece-wise linear mapping (PLM) from band statistics to
quantization steps — Eq. 3 of the paper.

The mapping assigns a quantization step to each frequency band from the
standard deviation of that band's DCT coefficients:

.. math::

    Q_{i,j} = \\begin{cases}
        a - k_1 \\delta_{i,j} & \\delta_{i,j} \\le T_1 \\\\
        b - k_2 \\delta_{i,j} & T_1 < \\delta_{i,j} \\le T_2 \\\\
        c - k_3 \\delta_{i,j} & \\delta_{i,j} > T_2
    \\end{cases}
    \\qquad \\text{s.t. } Q_{i,j} \\ge Q_{min}

Bands with small standard deviation (high-frequency, low energy) fall in
the first segment and receive large steps; bands with large standard
deviation (low-frequency, high energy, most important to the DNN) fall in
the last segment and are clamped near :math:`Q_{min}`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.jpeg.quantization import MAX_QUANT_STEP, QuantizationTable

#: The published parameters tuned for ImageNet (Section 5 of the paper).
PAPER_IMAGENET_PARAMETERS = {
    "a": 255.0,
    "b": 80.0,
    "c": 240.0,
    "t1": 20.0,
    "t2": 60.0,
    "k1": 9.75,
    "k2": 1.0,
    "k3": 3.0,
    "q_min": 5.0,
}


@dataclass(frozen=True)
class PiecewiseLinearMapping:
    """Eq. 3: three linear segments mapping band std-dev to quantization step.

    Attributes mirror the paper's notation.  ``q_max`` bounds the step
    from above (the baseline JPEG byte range), ``q_min`` from below.
    """

    a: float
    b: float
    c: float
    k1: float
    k2: float
    k3: float
    t1: float
    t2: float
    q_min: float = 5.0
    q_max: float = float(MAX_QUANT_STEP)

    def __post_init__(self) -> None:
        if self.t1 < 0 or self.t2 < self.t1:
            raise ValueError("thresholds must satisfy 0 <= t1 <= t2")
        if self.q_min < 1 or self.q_max < self.q_min:
            raise ValueError("bounds must satisfy 1 <= q_min <= q_max")
        if min(self.k1, self.k2, self.k3) < 0:
            raise ValueError("slopes k1, k2, k3 must be non-negative")

    @classmethod
    def paper_imagenet(cls) -> "PiecewiseLinearMapping":
        """The exact parameter set the paper reports for ImageNet."""
        return cls(**PAPER_IMAGENET_PARAMETERS)

    @classmethod
    def from_anchors(
        cls,
        t1: float,
        t2: float,
        q_max_step: float = 255.0,
        q1: float = 60.0,
        q2: float = 20.0,
        q_min: float = 5.0,
        k3: float = 3.0,
        lf_intercept: float = None,
    ) -> "PiecewiseLinearMapping":
        """Derive the segment parameters from interpretable anchor points.

        The anchors follow the design-optimization procedure of Section 4:

        * ``q_max_step`` is the step assigned to a (hypothetical) band with
          zero energy — the intercept ``a``.
        * ``q1`` is the largest step the HF group tolerates without
          accuracy loss (Fig. 5(c)); the HF segment passes through
          ``(t1, q1)``, giving ``k1 = (a - q1) / t1``.
        * ``q2`` is the corresponding MF step (Fig. 5(b)); the MF segment
          passes through ``(t1, q1)`` and ``(t2, q2)``, giving
          ``k2 = (q1 - q2) / (t2 - t1)`` and ``b = q1 + k2 * t1``.
        * ``k3`` is the LF slope swept in Fig. 6; ``lf_intercept`` (``c``)
          defaults to the value that keeps the mapping continuous at
          ``t2`` (``c = q2 + k3 * t2``).
        * ``q_min`` is the LF floor from Fig. 5(a).
        """
        if t1 <= 0 or t2 <= t1:
            raise ValueError("anchors require 0 < t1 < t2")
        if not q_min <= q2 <= q1 <= q_max_step:
            raise ValueError("anchors require q_min <= q2 <= q1 <= q_max_step")
        k1 = (q_max_step - q1) / t1
        k2 = (q1 - q2) / (t2 - t1)
        b = q1 + k2 * t1
        c = lf_intercept if lf_intercept is not None else q2 + k3 * t2
        return cls(
            a=q_max_step, b=b, c=c, k1=k1, k2=k2, k3=k3,
            t1=t1, t2=t2, q_min=q_min, q_max=q_max_step,
        )

    def quantization_step(self, std: np.ndarray) -> np.ndarray:
        """Evaluate Eq. 3 element-wise on an array of standard deviations."""
        std = np.asarray(std, dtype=np.float64)
        if np.any(std < 0):
            raise ValueError("standard deviations must be non-negative")
        high_frequency = self.a - self.k1 * std
        mid_frequency = self.b - self.k2 * std
        low_frequency = self.c - self.k3 * std
        steps = np.where(
            std <= self.t1,
            high_frequency,
            np.where(std <= self.t2, mid_frequency, low_frequency),
        )
        return np.clip(steps, self.q_min, self.q_max)

    def table_from_statistics(self, statistics) -> QuantizationTable:
        """Build the DeepN-JPEG quantization table for measured statistics.

        ``statistics`` is a
        :class:`~repro.analysis.frequency.FrequencyStatistics`; each of
        the 64 bands gets the step Eq. 3 assigns to its standard
        deviation.
        """
        steps = self.quantization_step(statistics.std)
        return QuantizationTable(steps, name="deepn-jpeg")

    def to_json(self) -> dict:
        """JSON-able payload round-tripping the mapping exactly."""
        return {
            "a": self.a, "b": self.b, "c": self.c,
            "k1": self.k1, "k2": self.k2, "k3": self.k3,
            "t1": self.t1, "t2": self.t2,
            "q_min": self.q_min, "q_max": self.q_max,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PiecewiseLinearMapping":
        """Rebuild a mapping from a :meth:`to_json` payload."""
        return cls(**{key: float(value) for key, value in payload.items()})

    def with_k3(self, k3: float) -> "PiecewiseLinearMapping":
        """A copy with a different LF slope (used by the Fig. 6 sweep)."""
        return PiecewiseLinearMapping(
            a=self.a, b=self.b, c=self.c, k1=self.k1, k2=self.k2, k3=float(k3),
            t1=self.t1, t2=self.t2, q_min=self.q_min, q_max=self.q_max,
        )

    def segment_of(self, std: float) -> str:
        """Which segment (``"HF"``, ``"MF"`` or ``"LF"``) a std value falls in."""
        if std < 0:
            raise ValueError("standard deviation must be non-negative")
        if std <= self.t1:
            return "HF"
        if std <= self.t2:
            return "MF"
        return "LF"
