"""DeepN-JPEG quantization table design.

Connects the pieces: the per-band standard deviations from Algorithm 1
(:mod:`repro.analysis.frequency`), the magnitude-based band segmentation
(:mod:`repro.analysis.bands`) that yields the thresholds ``T1`` and
``T2``, and the piece-wise linear mapping of Eq. 3
(:mod:`repro.core.plm`) that converts each band's statistic into its
quantization step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.bands import BandSegmentation, magnitude_based_segmentation
from repro.analysis.frequency import FrequencyStatistics
from repro.core.config import DeepNJpegConfig
from repro.core.plm import PiecewiseLinearMapping
from repro.jpeg.quantization import QuantizationTable


@dataclass(frozen=True)
class TableDesignResult:
    """Everything produced by one table design run.

    Attributes
    ----------
    table:
        The designed luminance quantization table.
    chroma_table:
        The companion chrominance table (scaled copy of ``table``).
    mapping:
        The fitted piece-wise linear mapping.
    statistics:
        The frequency statistics the design was based on.
    segmentation:
        The magnitude-based LF/MF/HF segmentation implied by the
        statistics.
    """

    table: QuantizationTable
    chroma_table: QuantizationTable
    mapping: PiecewiseLinearMapping
    statistics: FrequencyStatistics
    segmentation: BandSegmentation

    def to_json(self) -> dict:
        """JSON-able payload round-tripping the whole design exactly.

        Every component serializes its defining state (integer table
        steps, ``repr``-exact floats, BITS/HUFFVAL-style identities), so
        a design saved on one machine re-compresses bit-identically on
        another.
        """
        return {
            "table": self.table.to_json(),
            "chroma_table": self.chroma_table.to_json(),
            "mapping": self.mapping.to_json(),
            "statistics": self.statistics.to_json(),
            "segmentation": self.segmentation.to_json(),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TableDesignResult":
        """Rebuild a design from a :meth:`to_json` payload."""
        return cls(
            table=QuantizationTable.from_json(payload["table"]),
            chroma_table=QuantizationTable.from_json(payload["chroma_table"]),
            mapping=PiecewiseLinearMapping.from_json(payload["mapping"]),
            statistics=FrequencyStatistics.from_json(payload["statistics"]),
            segmentation=BandSegmentation.from_json(payload["segmentation"]),
        )


class DeepNJpegTableDesigner:
    """Designs the DeepN-JPEG quantization table for a dataset's statistics."""

    def __init__(self, config: Optional[DeepNJpegConfig] = None) -> None:
        self.config = config if config is not None else DeepNJpegConfig()

    def thresholds_from_statistics(
        self, statistics: FrequencyStatistics
    ) -> tuple:
        """Derive ``(t1, t2)`` from the ranked band standard deviations.

        ``t2`` is the standard deviation of the smallest LF band (rank
        ``lf_band_count``), ``t1`` that of the smallest MF band (rank
        ``lf_band_count + mf_band_count``): bands at or below ``t1`` fall
        in the HF segment of the mapping, bands above ``t2`` in the LF
        segment.
        """
        sorted_std = np.sort(statistics.std, axis=None)[::-1]
        t2 = float(sorted_std[self.config.lf_band_count - 1])
        t1 = float(
            sorted_std[self.config.lf_band_count + self.config.mf_band_count - 1]
        )
        if t1 <= 0:
            # Degenerate datasets (e.g. constant images) can produce zero
            # standard deviations; keep the mapping well-formed.
            t1 = 1e-6
        if t2 <= t1:
            t2 = t1 * (1.0 + 1e-6)
        return t1, t2

    def mapping_from_statistics(
        self, statistics: FrequencyStatistics
    ) -> PiecewiseLinearMapping:
        """Fit the Eq. 3 mapping to the measured statistics."""
        t1, t2 = self.thresholds_from_statistics(statistics)
        return PiecewiseLinearMapping.from_anchors(
            t1=t1,
            t2=t2,
            q_max_step=self.config.q_max_step,
            q1=self.config.q1,
            q2=self.config.q2,
            q_min=self.config.q_min,
            k3=self.config.k3,
            lf_intercept=self.config.lf_intercept,
        )

    def design(self, statistics: FrequencyStatistics) -> TableDesignResult:
        """Produce the DeepN-JPEG table (and companions) for ``statistics``."""
        mapping = self.mapping_from_statistics(statistics)
        table = mapping.table_from_statistics(statistics)
        chroma_values = np.clip(
            table.values * self.config.chroma_scale, 1, 255
        )
        chroma_table = QuantizationTable(chroma_values, name="deepn-jpeg-chroma")
        segmentation = magnitude_based_segmentation(
            statistics,
            lf_count=self.config.lf_band_count,
            mf_count=self.config.mf_band_count,
        )
        return TableDesignResult(
            table=table,
            chroma_table=chroma_table,
            mapping=mapping,
            statistics=statistics,
            segmentation=segmentation,
        )
