"""Dataset substrate: synthetic frequency-structured image classification.

The paper trains on ImageNet, which is neither redistributable nor
CPU-trainable here.  This package provides *FreqNet*, a synthetic
labelled image dataset whose classes are defined by their spatial
frequency content — some classes are distinguishable only through mid- or
high-frequency detail, which is exactly the property that makes
HVS-oriented JPEG quantization hurt DNN accuracy (Section 2.3 / Fig. 3 of
the paper).  The generator is deterministic given a seed, so every
experiment is reproducible.
"""

from repro.data.dataset import Dataset, train_test_split
from repro.data.sampling import sample_class_representatives
from repro.data.synthetic import (
    CLASS_GENERATORS,
    DEFAULT_CLASS_NAMES,
    FreqNetConfig,
    generate_freqnet,
)
from repro.data.transforms import (
    images_to_nchw,
    normalize_images,
    prepare_for_network,
)

__all__ = [
    "CLASS_GENERATORS",
    "DEFAULT_CLASS_NAMES",
    "Dataset",
    "FreqNetConfig",
    "generate_freqnet",
    "images_to_nchw",
    "normalize_images",
    "prepare_for_network",
    "sample_class_representatives",
    "train_test_split",
]
