"""Dataset container and splitting utilities."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Dataset:
    """A labelled image dataset.

    Attributes
    ----------
    images:
        Array of shape ``(N, H, W)`` (grayscale) or ``(N, H, W, 3)`` (RGB)
        with intensities in ``[0, 255]``.
    labels:
        Integer labels of shape ``(N,)``.
    class_names:
        Human-readable class names; ``class_names[labels[i]]`` names the
        class of sample ``i``.
    """

    images: np.ndarray
    labels: np.ndarray
    class_names: "list[str]"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.intp)
        if self.images.ndim not in (3, 4):
            raise ValueError(
                f"images must be (N, H, W) or (N, H, W, 3), got {self.images.shape}"
            )
        if self.labels.shape != (self.images.shape[0],):
            raise ValueError(
                f"labels shape {self.labels.shape} does not match "
                f"{self.images.shape[0]} images"
            )
        if len(self.class_names) == 0:
            raise ValueError("class_names must not be empty")
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= len(self.class_names)
        ):
            raise ValueError("labels out of range for class_names")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def num_classes(self) -> int:
        """Number of classes."""
        return len(self.class_names)

    @property
    def image_shape(self) -> tuple:
        """Shape of a single image."""
        return tuple(self.images.shape[1:])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """A new dataset holding only the given sample indices."""
        indices = np.asarray(indices, dtype=np.intp)
        return Dataset(
            images=self.images[indices],
            labels=self.labels[indices],
            class_names=list(self.class_names),
        )

    def indices_of_class(self, label: int) -> np.ndarray:
        """Indices of all samples of class ``label`` (in dataset order)."""
        if not 0 <= label < self.num_classes:
            raise ValueError(f"label {label} out of range")
        return np.flatnonzero(self.labels == label)

    def class_counts(self) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def with_images(self, images: np.ndarray) -> "Dataset":
        """A copy of the dataset with ``images`` replaced (same labels).

        Used to build compressed variants of a dataset: the images change,
        labels and class names do not.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.shape[0] != len(self):
            raise ValueError(
                f"expected {len(self)} images, got {images.shape[0]}"
            )
        return Dataset(
            images=images, labels=self.labels.copy(),
            class_names=list(self.class_names),
        )

    def uncompressed_bytes(self) -> int:
        """Raw storage size at one byte per sample value."""
        return int(self.images.size)


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.25, seed: int = 0
) -> tuple:
    """Stratified split into train and test datasets.

    Every class contributes the same fraction of samples to the test set,
    so accuracy differences between compression schemes are not an
    artefact of class imbalance.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    train_indices = []
    test_indices = []
    for label in range(dataset.num_classes):
        class_indices = dataset.indices_of_class(label)
        permuted = rng.permutation(class_indices)
        test_count = max(1, int(round(test_fraction * class_indices.size)))
        if test_count >= class_indices.size:
            raise ValueError(
                f"class {label} has too few samples ({class_indices.size}) "
                f"for test_fraction={test_fraction}"
            )
        test_indices.append(permuted[:test_count])
        train_indices.append(permuted[test_count:])
    train = dataset.subset(np.concatenate(train_indices))
    test = dataset.subset(np.concatenate(test_indices))
    return train, test
