"""Algorithm 1, step 1: sampling representative images from every class.

The paper samples every ``k``-th image of each class so that the
frequency statistics reflect the whole label distribution without
scanning the full dataset.  :func:`sample_class_representatives`
implements exactly that interval sampling over a
:class:`~repro.data.dataset.Dataset`.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset


def sample_class_representatives(
    dataset: Dataset, interval: int = 1, max_per_class: int = None
) -> Dataset:
    """Select every ``interval``-th image of each class.

    Parameters
    ----------
    dataset:
        The labelled dataset to sample from.
    interval:
        Sampling interval ``k`` of Algorithm 1; ``interval=1`` keeps every
        image, ``interval=4`` keeps every fourth image of each class.
    max_per_class:
        Optional cap on the number of sampled images per class, applied
        after interval sampling.

    Returns
    -------
    Dataset
        The sampled sub-dataset.  Every class present in ``dataset``
        contributes at least one image (the first of the class), so no
        class's frequency signature is dropped from the analysis.
    """
    if interval < 1:
        raise ValueError("interval must be at least 1")
    if max_per_class is not None and max_per_class < 1:
        raise ValueError("max_per_class must be at least 1 when given")
    selected = []
    for label in range(dataset.num_classes):
        class_indices = dataset.indices_of_class(label)
        if class_indices.size == 0:
            continue
        picked = class_indices[::interval]
        if picked.size == 0:
            picked = class_indices[:1]
        if max_per_class is not None:
            picked = picked[:max_per_class]
        selected.append(picked)
    if not selected:
        raise ValueError("dataset has no samples to draw from")
    return dataset.subset(np.concatenate(selected))
