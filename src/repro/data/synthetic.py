"""FreqNet: a synthetic image-classification dataset with controlled
spatial-frequency structure.

Each class is produced by a parameterised texture generator.  The classes
are chosen so that

* some classes live almost entirely in the low-frequency bands (blobs,
  gradients, coarse gratings),
* some live in the mid and high bands (fine gratings, checkerboards,
  band-pass textures), and
* some pairs are *confusable without high-frequency detail* — e.g. the
  ``blob`` and ``textured_blob`` classes share the same low-frequency
  envelope and differ only in a faint fine texture, mirroring the
  junco-vs-robin example of Fig. 3 in the paper.

Every sample gets random orientation / phase / position / amplitude
jitter plus sensor-style noise, so classifiers must learn the frequency
signature rather than a fixed template.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset

#: Grid of normalised coordinates reused by the generators.
def _coordinate_grid(size: int) -> tuple:
    axis = np.linspace(-1.0, 1.0, size)
    return np.meshgrid(axis, axis, indexing="xy")


def _rotate(x: np.ndarray, y: np.ndarray, angle: float) -> tuple:
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    return cos_a * x + sin_a * y, -sin_a * x + cos_a * y


def _gaussian_blob(
    size: int, rng: np.random.Generator, scale_range: tuple = (0.35, 0.6)
) -> np.ndarray:
    x, y = _coordinate_grid(size)
    cx, cy = rng.uniform(-0.3, 0.3, size=2)
    scale = rng.uniform(*scale_range)
    return np.exp(-(((x - cx) ** 2 + (y - cy) ** 2) / (2.0 * scale ** 2)))


#: Amplitude of the fine texture that distinguishes the ``textured_blob``
#: class from the plain ``blob`` class (on the [0, 1] pattern scale).
#: Small enough that aggressive HVS quantization erases it, large enough
#: that an uncompressed classifier separates the classes easily and that
#: the band's dataset-wide standard deviation ranks among the bands the
#: magnitude-based segmentation protects.
FINE_TEXTURE_AMPLITUDE = 0.065


def make_blob(size: int, rng: np.random.Generator) -> np.ndarray:
    """Low-frequency class: a single smooth Gaussian blob."""
    return 0.72 * _gaussian_blob(size, rng) + 0.08


def make_textured_blob(size: int, rng: np.random.Generator) -> np.ndarray:
    """The blob class plus a faint checker-fine texture.

    The texture alternates sign every pixel in both directions, so its
    energy is concentrated in the single highest-frequency DCT band
    ``(7, 7)`` of every 8x8 block — the band with the largest step in the
    HVS quantization table.  The class is distinguishable from
    :func:`make_blob` only through this texture, mirroring the
    junco-vs-robin example of Fig. 3 in the paper: aggressive HVS
    quantization erases the discriminative detail while the envelope (the
    part humans notice) is untouched.
    """
    blob = 0.72 * _gaussian_blob(size, rng) + 0.08
    rows = np.arange(size)[:, None]
    cols = np.arange(size)[None, :]
    alternating = np.where((rows + cols) % 2 == 0, 1.0, -1.0)
    amplitude = FINE_TEXTURE_AMPLITUDE * rng.uniform(0.85, 1.15)
    return blob + amplitude * alternating


def make_gradient(size: int, rng: np.random.Generator) -> np.ndarray:
    """Low-frequency class: a smooth directional luminance ramp."""
    x, y = _coordinate_grid(size)
    angle = rng.uniform(0, 2 * np.pi)
    xr, _ = _rotate(x, y, angle)
    curvature = rng.uniform(-0.3, 0.3)
    return 0.5 + 0.4 * xr + curvature * xr ** 2


def make_coarse_grating(size: int, rng: np.random.Generator) -> np.ndarray:
    """Low/mid-frequency class: a sinusoidal grating with a long period."""
    x, y = _coordinate_grid(size)
    angle = rng.uniform(0, np.pi)
    xr, _ = _rotate(x, y, angle)
    frequency = rng.uniform(1.2, 2.0)
    return 0.5 + 0.45 * np.sin(2 * np.pi * frequency * xr + rng.uniform(0, 2 * np.pi))


def make_fine_grating(size: int, rng: np.random.Generator) -> np.ndarray:
    """Mid/high-frequency class: the same grating at a much shorter period."""
    x, y = _coordinate_grid(size)
    angle = rng.uniform(0, np.pi)
    xr, _ = _rotate(x, y, angle)
    frequency = rng.uniform(3.2, 4.5)
    return 0.5 + 0.4 * np.sin(2 * np.pi * frequency * xr + rng.uniform(0, 2 * np.pi))


def make_checkerboard(size: int, rng: np.random.Generator) -> np.ndarray:
    """Mid/high-frequency class: a checkerboard with a small cell size."""
    cell = rng.integers(3, 5)
    offset_r, offset_c = rng.integers(0, cell, size=2)
    rows = (np.arange(size) + offset_r) // cell
    cols = (np.arange(size) + offset_c) // cell
    board = (rows[:, None] + cols[None, :]) % 2
    contrast = rng.uniform(0.40, 0.55)
    return 0.5 + contrast * (board - 0.5)


def make_bandpass_texture(size: int, rng: np.random.Generator) -> np.ndarray:
    """High-frequency class: isotropic band-pass filtered noise."""
    noise = rng.normal(0.0, 1.0, (size, size))
    spectrum = np.fft.fft2(noise)
    fy = np.fft.fftfreq(size)[:, None]
    fx = np.fft.fftfreq(size)[None, :]
    radius = np.sqrt(fx ** 2 + fy ** 2)
    center = rng.uniform(0.28, 0.36)
    band = np.exp(-((radius - center) ** 2) / (2 * 0.05 ** 2))
    textured = np.real(np.fft.ifft2(spectrum * band))
    textured /= max(np.abs(textured).max(), 1e-9)
    return 0.5 + 0.28 * textured


def make_spots(size: int, rng: np.random.Generator) -> np.ndarray:
    """Mid-frequency class: a scatter of small bright spots."""
    image = np.zeros((size, size))
    x, y = _coordinate_grid(size)
    count = rng.integers(6, 11)
    for _ in range(count):
        cx, cy = rng.uniform(-0.85, 0.85, size=2)
        sigma = rng.uniform(0.05, 0.09)
        image += np.exp(-(((x - cx) ** 2 + (y - cy) ** 2) / (2.0 * sigma ** 2)))
    return np.clip(image, 0.0, 1.2) / 1.2


#: Ordered mapping of class name -> generator.  The order defines label ids.
CLASS_GENERATORS = {
    "blob": make_blob,
    "textured_blob": make_textured_blob,
    "gradient": make_gradient,
    "coarse_grating": make_coarse_grating,
    "fine_grating": make_fine_grating,
    "checkerboard": make_checkerboard,
    "bandpass_texture": make_bandpass_texture,
    "spots": make_spots,
}

#: The default class subset used by the experiments: eight classes spanning
#: low-, mid- and high-frequency signatures, including the blob /
#: textured-blob pair whose members differ only in high-frequency detail.
DEFAULT_CLASS_NAMES = (
    "blob",
    "textured_blob",
    "gradient",
    "coarse_grating",
    "fine_grating",
    "checkerboard",
    "bandpass_texture",
    "spots",
)


@dataclass(frozen=True)
class FreqNetConfig:
    """Configuration of the synthetic dataset generator.

    Attributes
    ----------
    image_size:
        Side of the square images in pixels (multiples of 8 keep every
        block fully covered).
    images_per_class:
        Number of samples generated per class.
    noise_std:
        Standard deviation of the additive Gaussian sensor noise, on the
        0-255 intensity scale.
    brightness_jitter / contrast_jitter:
        Ranges of the per-image photometric jitter.
    seed:
        Seed of the dataset generator.
    class_names:
        Subset (and order) of classes to generate; defaults to all of
        :data:`CLASS_GENERATORS`.
    """

    image_size: int = 32
    images_per_class: int = 60
    noise_std: float = 1.5
    brightness_jitter: float = 12.0
    contrast_jitter: float = 0.12
    seed: int = 0
    class_names: tuple = DEFAULT_CLASS_NAMES

    def __post_init__(self) -> None:
        if self.image_size < 8:
            raise ValueError("image_size must be at least 8")
        if self.images_per_class <= 0:
            raise ValueError("images_per_class must be positive")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        unknown = [n for n in self.class_names if n not in CLASS_GENERATORS]
        if unknown:
            raise ValueError(f"unknown class names: {unknown}")


def generate_freqnet(config: FreqNetConfig = None) -> Dataset:
    """Generate the FreqNet dataset described by ``config``.

    Returns a :class:`~repro.data.dataset.Dataset` of grayscale images in
    ``[0, 255]`` (float64, shape ``(N, H, W)``), integer labels, and the
    class-name list.  Samples are ordered class-by-class, which is the
    layout :func:`repro.data.sampling.sample_class_representatives`
    (Algorithm 1) expects.
    """
    config = config if config is not None else FreqNetConfig()
    rng = np.random.default_rng(config.seed)
    images = []
    labels = []
    for label, class_name in enumerate(config.class_names):
        generator = CLASS_GENERATORS[class_name]
        for _ in range(config.images_per_class):
            pattern = generator(config.image_size, rng)
            image = _photometric_jitter(pattern, config, rng)
            images.append(image)
            labels.append(label)
    return Dataset(
        images=np.asarray(images, dtype=np.float64),
        labels=np.asarray(labels, dtype=np.intp),
        class_names=list(config.class_names),
    )


def _photometric_jitter(
    pattern: np.ndarray, config: FreqNetConfig, rng: np.random.Generator
) -> np.ndarray:
    """Map a [0, 1]-ish pattern to a jittered, noisy 0-255 image."""
    contrast = 1.0 + rng.uniform(-config.contrast_jitter, config.contrast_jitter)
    brightness = rng.uniform(-config.brightness_jitter, config.brightness_jitter)
    image = 255.0 * np.clip(pattern, 0.0, 1.0)
    image = (image - 127.5) * contrast + 127.5 + brightness
    if config.noise_std > 0:
        image = image + rng.normal(0.0, config.noise_std, image.shape)
    return np.clip(image, 0.0, 255.0)
