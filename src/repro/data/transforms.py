"""Transforms between image datasets and network input tensors."""

from __future__ import annotations

import numpy as np


def images_to_nchw(images: np.ndarray, dtype=np.float64) -> np.ndarray:
    """Convert ``(N, H, W)`` or ``(N, H, W, C)`` images to NCHW tensors."""
    images = np.asarray(images, dtype=dtype)
    if images.ndim == 3:
        return images[:, None, :, :]
    if images.ndim == 4:
        return images.transpose(0, 3, 1, 2)
    raise ValueError(f"expected 3-D or 4-D image array, got {images.shape}")


def normalize_images(
    images: np.ndarray, scale: float = 255.0, dtype=np.float64
) -> np.ndarray:
    """Map intensities from ``[0, scale]`` to zero-centred ``[-1, 1]``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    images = np.asarray(images, dtype=dtype)
    return (images / scale - 0.5) * 2.0


def prepare_for_network(images: np.ndarray, dtype=np.float64) -> np.ndarray:
    """Standard preprocessing: NCHW layout plus [-1, 1] normalisation.

    ``dtype`` is the compute dtype of the resulting tensor; pass the
    model's dtype (e.g. ``"float32"``) so the network never re-casts.
    """
    dtype = np.dtype(dtype)
    return normalize_images(images_to_nchw(images, dtype=dtype), dtype=dtype)
