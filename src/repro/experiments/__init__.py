"""Experiment harness: one module per figure of the paper's evaluation.

Every experiment module exposes a ``run(...)`` function that takes an
:class:`~repro.experiments.common.ExperimentConfig` (controlling dataset
size, training epochs and seeds) and returns a structured result object
with a ``rows()`` method for tabular rendering and a ``format_table()``
helper, so the same code backs the unit tests, the pytest benchmarks in
``benchmarks/`` and the standalone example scripts.

Experiment index (see DESIGN.md for the full mapping):

========  ===========================================================
Figure    Module
========  ===========================================================
Fig. 2    :mod:`repro.experiments.fig2_motivation`
Fig. 3    :mod:`repro.experiments.fig3_feature_removal`
Fig. 5    :mod:`repro.experiments.fig5_band_sensitivity`
Fig. 6    :mod:`repro.experiments.fig6_k3_sweep`
Fig. 7    :mod:`repro.experiments.fig7_methods`
Fig. 8    :mod:`repro.experiments.fig8_generality`
Fig. 9    :mod:`repro.experiments.fig9_power`
========  ===========================================================
"""

from repro.experiments.common import (
    ExperimentConfig,
    TrainedClassifier,
    format_table,
    make_splits,
    train_classifier,
)
from repro.experiments.store import ArtifactStore, SweepCache

__all__ = [
    "ArtifactStore",
    "ExperimentConfig",
    "SweepCache",
    "TrainedClassifier",
    "format_table",
    "make_splits",
    "train_classifier",
]
