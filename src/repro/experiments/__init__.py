"""Experiment harness: one declarative experiment per figure of the paper.

Every experiment is declared on :mod:`repro.experiments.api` — named
grid axes, a pure cell function, optional heavy state builders and an
assemble step — while the framework uniformly supplies grid enumeration,
content-addressed caching/resume, ``workers=`` sharding and
deterministic ordering.  Experiments register by name, so they are
runnable via :func:`repro.experiments.api.run_experiment`, the ``python
-m repro`` CLI, or the historical per-module ``run(config)`` shims,
which all produce bit-identical results.

Experiment index (see DESIGN.md for the full mapping):

========  ===========================================================
Figure    Module
========  ===========================================================
Fig. 2    :mod:`repro.experiments.fig2_motivation`
Fig. 3    :mod:`repro.experiments.fig3_feature_removal`
Fig. 5    :mod:`repro.experiments.fig5_band_sensitivity`
Fig. 6    :mod:`repro.experiments.fig6_k3_sweep`
Fig. 7    :mod:`repro.experiments.fig7_methods`
Fig. 8    :mod:`repro.experiments.fig8_generality`
Fig. 9    :mod:`repro.experiments.fig9_power`
========  ===========================================================
"""

from repro.experiments.api import (
    Axis,
    Experiment,
    TableResult,
    build_experiment,
    experiment_names,
    register_experiment,
    run_experiment,
    unregister_experiment,
)
from repro.experiments.common import (
    ExperimentConfig,
    TrainedClassifier,
    format_table,
    make_splits,
    train_classifier,
)
from repro.experiments.store import ArtifactStore, SweepCache

# Importing the figure modules registers the built-in experiments (the
# order matters only in that fig5 must precede the design-flow importers
# fig6/7/8/9).
from repro.experiments import (  # noqa: E402  (registration imports)
    fig2_motivation,
    fig3_feature_removal,
    fig5_band_sensitivity,
    fig6_k3_sweep,
    fig7_methods,
    fig8_generality,
    fig9_power,
)

__all__ = [
    "ArtifactStore",
    "Axis",
    "Experiment",
    "ExperimentConfig",
    "SweepCache",
    "TableResult",
    "TrainedClassifier",
    "build_experiment",
    "experiment_names",
    "fig2_motivation",
    "fig3_feature_removal",
    "fig5_band_sensitivity",
    "fig6_k3_sweep",
    "fig7_methods",
    "fig8_generality",
    "fig9_power",
    "format_table",
    "make_splits",
    "register_experiment",
    "run_experiment",
    "train_classifier",
    "unregister_experiment",
]
