"""The declarative experiment API: declare axes + a cell function, and the
framework supplies everything else.

Before this module existed every figure experiment hand-rolled the same
plumbing: enumerate a parameter grid, key each cell on
:meth:`~repro.experiments.common.ExperimentConfig.task_key` plus the
cell's identity, resume completed cells from an
:class:`~repro.experiments.store.ArtifactStore` through
:func:`~repro.runtime.executor.map_tasks_resumable`, shard the fresh
cells over ``config.workers`` processes with heavy state in a
:class:`~repro.runtime.executor.TaskState` memo, and reassemble the
results in deterministic order.  An :class:`Experiment` declares only
what is unique to it:

* **axes** — named value lists whose cartesian product (in declaration
  order, last axis fastest) is the sweep grid; or an explicit ``cells``
  override for non-product grids.
* a pure **cell function** (:meth:`Experiment.compute_cell`) mapping one
  JSON-able grid cell (plus the shared state) to a JSON-able result.
* optional heavy **state builders** (:meth:`Experiment.build_state` /
  :meth:`Experiment.setup_state`) for datasets, trained classifiers and
  fitted designs — built once per sweep, fork-inherited by workers.
* an **assemble** step (:meth:`Experiment.assemble`) turning the ordered
  cell results (plus cached scalars) into the figure's result object.

:func:`run_experiment` is the single driver: caching, resume, sharding,
ordering and progress reporting behave identically for every experiment,
so ``workers=1`` runs are bit-identical to the historical per-figure
loops and any worker count or store temperature produces the same
results.

Experiments register by name (:func:`register_experiment` /
:func:`build_experiment` / :func:`experiment_names`, mirroring the codec
registry in :mod:`repro.core.codec`), which is what the ``python -m
repro`` CLI and the :mod:`examples` loop over — third-party sweeps plug
into the same surface.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.experiments.common import ExperimentConfig, format_table
from repro.experiments.store import (
    ArtifactStore,
    SweepCache,
    all_cached,
)
from repro.runtime.executor import (
    CACHE_MISS,
    TaskState,
    map_tasks_resumable,
)
from repro.runtime.supervision import TaskError, TaskFailure


class SweepFailure(RuntimeError):
    """One or more sweep cells failed under the supervised runtime.

    Raised by :func:`run_experiment` when the configured error policy
    exhausts its retries: under ``on_error="collect"`` every healthy
    cell has already completed (and persisted, when a store is bound)
    before this is raised; under ``"fail-fast"``/``"retry"`` it wraps
    the first exhausted cell.  ``failures`` is an ordered list of
    ``(cell, TaskFailure)`` pairs — the JSON-able cell identity plus the
    supervision envelope — and :meth:`report` renders the human-readable
    summary the CLI prints before exiting non-zero.
    """

    def __init__(
        self,
        experiment: str,
        failures: "list[tuple[dict, TaskFailure]]",
        total: int,
    ) -> None:
        self.experiment = experiment
        self.failures = list(failures)
        self.total = total
        super().__init__(
            f"experiment {experiment!r}: {len(self.failures)} of {total} "
            f"cell(s) failed"
        )

    def report(self) -> str:
        """A failure report naming every failed cell."""
        lines = [
            f"experiment {self.experiment!r}: {len(self.failures)} of "
            f"{self.total} cell(s) failed"
        ]
        for cell, failure in self.failures:
            lines.append(
                f"  cell {cell!r}: {failure.error_type}: {failure.message} "
                f"[{failure.kind}, {failure.attempts} attempt(s)]"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class Axis:
    """One named dimension of an experiment grid.

    ``name`` is either a single cell-key string (each value becomes
    ``{name: value}``) or a tuple of key strings (each value must be a
    same-length tuple, unpacked into one key per component) — the latter
    expresses linked dimensions such as Fig. 5's ``(group, step)`` pairs
    that are swept together, not as a product.
    """

    name: "str | tuple[str, ...]"
    values: tuple

    def __init__(self, name, values) -> None:
        if isinstance(name, (tuple, list)):
            name = tuple(name)
            if len(set(name)) != len(name):
                raise ValueError(f"axis declares duplicate key(s): {name}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", tuple(values))

    def keys(self) -> "tuple[str, ...]":
        return self.name if isinstance(self.name, tuple) else (self.name,)

    def cell_updates(self) -> "list[dict]":
        """The ``{key: value}`` fragment each axis value contributes."""
        keys = self.keys()
        updates = []
        for value in self.values:
            if isinstance(self.name, tuple):
                parts = tuple(value)
                if len(parts) != len(keys):
                    raise ValueError(
                        f"axis {self.name} expects {len(keys)}-tuples, "
                        f"got {value!r}"
                    )
                updates.append(dict(zip(keys, parts)))
            else:
                updates.append({self.name: value})
        return updates


def grid_cells(axes: "list[Axis]") -> "list[dict]":
    """The cartesian product of ``axes`` as ordered cell dictionaries.

    Declaration order is significant and deterministic: the first axis
    varies slowest, the last fastest — the order every historical figure
    loop enumerated its grid in.
    """
    axes = list(axes)
    seen: "set[str]" = set()
    for axis in axes:
        overlap = seen.intersection(axis.keys())
        if overlap:
            raise ValueError(f"duplicate axis key(s): {sorted(overlap)}")
        seen.update(axis.keys())
    cells = []
    for updates in itertools.product(*(axis.cell_updates() for axis in axes)):
        cell: dict = {}
        for update in updates:
            cell.update(update)
        cells.append(cell)
    return cells


@dataclass
class TableResult:
    """A minimal tabular result object for custom experiments.

    Satisfies the contract the CLI and the registry loop rely on —
    ``rows()`` plus ``format_table()`` — so an ``assemble`` hook can
    return ``TableResult(headers, rows)`` instead of declaring a result
    class.
    """

    headers: "list[str]"
    row_values: "list[list]"

    def rows(self) -> "list[list]":
        return [list(row) for row in self.row_values]

    def format_table(self) -> str:
        return format_table(list(self.headers), self.rows())


@dataclass
class RunContext:
    """Everything one :func:`run_experiment` invocation knows.

    ``params`` holds the experiment's declared parameters (defaults
    merged with caller overrides); ``derived`` is scratch space for
    :meth:`Experiment.prepare` to stash derived objects (fitted designs,
    candidate codecs) that the later hooks need.  ``store`` is the
    *effective* store — already ``None`` when the experiment disabled
    caching for this parameterisation.
    """

    config: ExperimentConfig
    store: Optional[ArtifactStore]
    params: dict
    derived: dict = field(default_factory=dict)


class Experiment:
    """Base class for declarative experiments.

    Subclasses set :attr:`name` (the registry key and cache namespace),
    :attr:`title` and :attr:`headers`, declare their parameters in
    :attr:`defaults`, and override the hooks they need; everything else
    — grid enumeration, cache keys, resume, sharding, ordering,
    progress — is supplied uniformly by :func:`run_experiment`.
    """

    #: Registry key and artifact-store namespace.  Required.
    name: str = ""
    #: One-line description shown by ``python -m repro list``.
    title: str = ""
    #: Column headers matching the result's ``rows()`` (for ``--json``).
    headers: "list[str]" = []
    #: Declared parameters and their defaults; ``run_experiment`` rejects
    #: unknown parameter names so a typo can never be silently dropped.
    defaults: dict = {}

    # ------------------------------------------------------------------
    # Declaration hooks.
    # ------------------------------------------------------------------
    def prepare(self, ctx: RunContext) -> None:
        """Derive run-wide objects before the grid is enumerated.

        Runs first, with the effective store available (e.g. to resume a
        fitted design); results go into ``ctx.derived``.
        """

    def store_enabled(self, ctx: RunContext) -> bool:
        """Whether the artifact store applies to this parameterisation.

        Experiments whose state is not derivable from the configuration
        alone (e.g. a caller-supplied classifier) return ``False`` and
        the whole run bypasses the store.
        """
        return True

    def axes(self, ctx: RunContext) -> "list[Axis]":
        """The named grid axes of this run (cartesian-product grids)."""
        return []

    def cells(self, ctx: RunContext) -> "list[dict]":
        """The ordered, JSON-able cell identities of the sweep.

        Defaults to the cartesian product of :meth:`axes`, each point
        decorated by :meth:`cell_identity`.  Override for grids that are
        not a product at all.
        """
        return [
            self.cell_identity(ctx, point)
            for point in grid_cells(self.axes(ctx))
        ]

    def cell_identity(self, ctx: RunContext, point: dict) -> dict:
        """Augment one grid point into its full cache identity.

        This is where a cell binds the content it depends on — typically
        the relevant codec ``spec()`` — so cached cells are addressed by
        *what* they computed, not by which run computed them.
        """
        return point

    def scalar_names(self, ctx: RunContext) -> "tuple[str, ...]":
        """Names of run-wide cached scalars (e.g. a baseline accuracy)."""
        return ()

    def compute_scalar(self, ctx: RunContext, state, name: str):
        """Compute one scalar on a cache miss (state is already built)."""
        raise NotImplementedError(name)

    # ------------------------------------------------------------------
    # Heavy-state hooks.
    # ------------------------------------------------------------------
    def state_key(self, ctx: RunContext):
        """The picklable key identifying this run's shared state."""
        return ctx.config.task_key()

    def setup_state(self, ctx: RunContext) -> Optional[dict]:
        """Parent-side state construction.

        Return a state dict to seed the worker memo with objects only
        the parent can build (caller-supplied classifiers, fitted-design
        compressions); return ``None`` (the default) to build through
        :meth:`build_state`, which also serves cold workers.
        """
        return None

    def build_state(self, key) -> dict:
        """Reconstruct the shared state from the key alone.

        Must be deterministic: a cold worker's rebuild has to be
        bit-identical to the parent's copy.  Experiments whose state is
        only ever seeded raise here (reachable only on non-fork
        platforms, where the runtime degrades to serial anyway).
        """
        raise RuntimeError(
            f"experiment {self.name!r} has no config-derived state; "
            "it must be seeded by the parent process"
        )

    # ------------------------------------------------------------------
    # Cell computation and assembly.
    # ------------------------------------------------------------------
    def task_extra(self, ctx: RunContext, index: int, cell: dict):
        """Extra picklable payload shipped with one task (default none).

        For cells that need a small live object (a candidate compressor)
        rather than rebuilding it from the JSON identity.
        """
        return None

    def compute_cell(self, key, state, cell: dict, extra):
        """The pure cell function: one grid cell to one JSON-able result.

        Runs in a worker process; may only touch ``key`` (the state
        key, which embeds the config), the shared ``state``, the
        JSON-able ``cell`` and the optional ``extra`` payload.
        """
        raise NotImplementedError

    def cell_to_payload(self, value):
        """Encode one cell result for JSON storage (identity default)."""
        return value

    def cell_from_payload(self, payload):
        """Decode one stored payload back into a cell result."""
        return payload

    def assemble(self, ctx: RunContext, results: list, scalars: dict):
        """Build the experiment's result object from the ordered cells."""
        raise NotImplementedError

    def report(self, result) -> str:
        """Human-readable rendering used by the CLI (table by default)."""
        return result.format_table()

    # ------------------------------------------------------------------
    # Convenience.
    # ------------------------------------------------------------------
    def run(
        self,
        config: Optional[ExperimentConfig] = None,
        store: Optional[ArtifactStore] = None,
        progress: Optional[Callable] = None,
        **params,
    ):
        """:func:`run_experiment` bound to this experiment."""
        return run_experiment(
            self, config, store=store, progress=progress, **params
        )


def _build_state(full_key) -> dict:
    """Cold-worker state dispatch for the shared :data:`_STATE` memo."""
    name, key = full_key
    return build_experiment(name).build_state(key)


#: The single shared worker-state memo of the experiment layer.  One
#: sweep runs at a time (nested sweeps — Fig. 5 inside a design
#: derivation — complete before their parent builds state), so one slot
#: suffices, exactly as the per-figure memos it replaces.
_STATE = TaskState(_build_state)


def shared_state(experiment: Experiment, key) -> dict:
    """The experiment's shared state, building it if the memo is cold.

    Exposed for ``prepare`` hooks whose derived objects (e.g. a fitted
    design) need the state datasets before the driver's own setup runs —
    the driver then finds the memo warm and reuses the same objects.
    """
    return _STATE.get((experiment.name, key))


def clear_state() -> None:
    """Drop the shared memo (tests force cold rebuilds with this)."""
    _STATE.clear()


def _compute_cell(task):
    """Module-level pool task: resolve the experiment and run one cell.

    The task ships ``(experiment name, state key, cell, extra)`` — the
    experiment object itself is resolved through the registry (inherited
    over ``fork``) and the heavy state through the shared memo.
    """
    name, key, cell, extra = task
    experiment = build_experiment(name)
    state = _STATE.get((name, key))
    return experiment.compute_cell(key, state, cell, extra)


def run_experiment(
    experiment: Experiment,
    config: Optional[ExperimentConfig] = None,
    store: Optional[ArtifactStore] = None,
    progress: Optional[Callable] = None,
    **params,
):
    """Run a declarative experiment end to end.

    The uniform driver behind every figure's ``run()``:

    1. merge ``params`` into the experiment's declared defaults
       (unknown names raise :class:`TypeError`);
    2. ``prepare`` derived objects, enumerate the cells, and look every
       cell and scalar up in the store — a fully warm store assembles
       the result without building any state;
    3. otherwise build (or seed) the shared heavy state, resolve missing
       scalars, and map the missing cells through
       :func:`~repro.runtime.executor.map_tasks_resumable` — serially
       for ``workers=1``, over a forked pool otherwise, or over the
       transport ``config.backend`` selects — persisting each fresh
       cell as it completes;
    4. ``assemble`` the ordered results into the figure's result object.

    ``progress`` — when given — is called as ``progress(done, total)``
    once up front (counting cached cells) and after every fresh cell.

    When ``config.on_error``/``config.task_timeout`` engage the
    supervised runtime and a cell exhausts its attempts, the run raises
    :class:`SweepFailure` naming the failed cell(s); under
    ``on_error="collect"`` every healthy cell still completes and
    persists first, so a follow-up run recomputes only the failures.
    """
    config = config if config is not None else ExperimentConfig.small()
    if not experiment.name:
        raise ValueError(f"{type(experiment).__name__} declares no name")
    unknown = sorted(set(params) - set(experiment.defaults))
    if unknown:
        raise TypeError(
            f"experiment {experiment.name!r} got unknown parameter(s) "
            f"{unknown}; declared parameters: {sorted(experiment.defaults)}"
        )
    merged = dict(experiment.defaults)
    merged.update(params)
    ctx = RunContext(config=config, store=store, params=merged)
    if not experiment.store_enabled(ctx):
        ctx.store = None
    # Pin THIS instance under its name for the duration of the run:
    # cell tasks resolve experiments through the registry (names pickle,
    # instances need not), so an unregistered experiment — or a name
    # shadowed via overwrite=True — must still dispatch to the object
    # the caller passed, never crash mid-sweep or run someone else's
    # cells.  The previous registration is restored afterwards.
    previous = _REGISTRY.get(experiment.name)
    _REGISTRY[experiment.name] = lambda: experiment
    try:
        experiment.prepare(ctx)
        cells = experiment.cells(ctx)
        cache = SweepCache(
            ctx.store, experiment.name, config,
            from_payload=experiment.cell_from_payload,
            to_payload=experiment.cell_to_payload,
        )
        scalar_cache = SweepCache(ctx.store, experiment.name, config)
        scalar_names = tuple(experiment.scalar_names(ctx))
        scalars = {
            name: scalar_cache.lookup({"cell": name}) for name in scalar_names
        }
        if not cells and not scalar_names:
            return experiment.assemble(ctx, [], {})
        cached = cache.lookup_many(cells)
        warm = all_cached(cached) and not any(
            value is CACHE_MISS for value in scalars.values()
        )
        if warm:
            if progress is not None and cells:
                progress(len(cells), len(cells))
            return experiment.assemble(ctx, list(cached), scalars)

        key = experiment.state_key(ctx)
        full_key = (experiment.name, key)
        state = experiment.setup_state(ctx)
        if state is not None:
            _STATE.seed(full_key, state)
        else:
            state = _STATE.get(full_key)
        for name in scalar_names:
            if scalars[name] is CACHE_MISS:
                scalars[name] = experiment.compute_scalar(ctx, state, name)
                scalar_cache.record({"cell": name}, scalars[name])

        total = len(cells)
        done = sum(1 for value in cached if value is not CACHE_MISS)
        if progress is not None:
            progress(done, total)
        recorder = cache.recorder(cells)

        def on_result(index: int, value) -> None:
            nonlocal done
            recorder(index, value)
            done += 1
            if progress is not None:
                progress(done, total)

        tasks = [
            (experiment.name, key, cell, experiment.task_extra(ctx, i, cell))
            for i, cell in enumerate(cells)
        ]
        # Supervision engages when any fault-tolerance knob departs from
        # the default; plain fail-fast with no timeout keeps the legacy
        # fast path (bit-identical chunked dispatch, raw propagation).
        supervised = (
            config.on_error != "fail-fast" or config.task_timeout is not None
        )
        try:
            results = map_tasks_resumable(
                _compute_cell, tasks, cached,
                workers=config.workers, on_result=on_result,
                policy=config.on_error if supervised else None,
                retries=config.retries,
                task_timeout=config.task_timeout,
                backend=config.backend,
            )
        except TaskError as error:
            failure = error.failure
            raise SweepFailure(
                experiment.name,
                [(cells[failure.index], failure)],
                total=len(cells),
            ) from error
        failed = [
            (cells[i], value)
            for i, value in enumerate(results)
            if isinstance(value, TaskFailure)
        ]
        if failed:
            # ``collect``: every healthy cell has completed and persisted
            # by now; surface the failed ones as one report.
            raise SweepFailure(experiment.name, failed, total=len(cells))
    finally:
        if previous is None:
            _REGISTRY.pop(experiment.name, None)
        else:
            _REGISTRY[experiment.name] = previous
        # One sweep, one memo: release the datasets/classifiers as soon
        # as the grid (or a failed attempt at it) is done.
        _STATE.clear()
    return experiment.assemble(ctx, results, scalars)


# ----------------------------------------------------------------------
# The experiment registry (mirrors repro.core.codec's codec registry).
# ----------------------------------------------------------------------

_REGISTRY: "dict[str, Callable[[], Experiment]]" = {}


def register_experiment(
    name: str, factory: Callable[[], Experiment], overwrite: bool = False
) -> None:
    """Register an experiment factory under ``name``.

    ``factory`` is any zero-argument callable returning an
    :class:`Experiment` (typically the class itself).  Registering an
    already-registered name raises :class:`ValueError` unless
    ``overwrite=True``.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"experiment {name!r} is already registered "
            f"(pass overwrite=True to replace it)"
        )
    _REGISTRY[name] = factory


def unregister_experiment(name: str) -> None:
    """Remove ``name`` from the registry (missing names are a no-op)."""
    _REGISTRY.pop(name, None)


def experiment_names() -> "list[str]":
    """Sorted names of every registered experiment."""
    return sorted(_REGISTRY)


def build_experiment(name: str) -> Experiment:
    """Instantiate the experiment registered under ``name``.

    Unknown names raise :class:`KeyError` listing the known experiments.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered experiments: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        ) from None
    return factory()
