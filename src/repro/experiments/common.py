"""Shared infrastructure for the figure-reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional

import numpy as np

from repro.core.baselines import CompressedDataset
from repro.data.dataset import Dataset, train_test_split
from repro.data.synthetic import FreqNetConfig, generate_freqnet
from repro.data.transforms import prepare_for_network
from repro.nn import models
from repro.nn.base import Sequential
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer, TrainingHistory


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and reproducibility knobs shared by all experiments.

    Attributes
    ----------
    images_per_class / image_size / noise_std:
        Forwarded to the FreqNet generator.
    test_fraction:
        Fraction of each class held out for testing.
    epochs / batch_size / learning_rate:
        Training-loop parameters.
    model_name:
        Default architecture (a key of
        :data:`repro.nn.models.MODEL_BUILDERS`).
    compute_dtype:
        Compute dtype of the classifier stack: ``"float32"`` (the fast
        default) or ``"float64"`` (the bit-exact reference mode).
    dataset_seed / split_seed / model_seed:
        Seeds for the three sources of randomness.
    sampling_interval:
        Algorithm-1 interval used when fitting DeepN-JPEG inside an
        experiment.
    workers:
        Process count for the experiment sweeps (and the dataset
        compression they trigger): ``1`` runs everything serially in
        this process (bit-identical to the historical behaviour), ``N``
        shards the sweep grid over ``N`` processes, ``0`` uses every
        available CPU.  Results are identical for any worker count.
    on_error / retries / task_timeout:
        Fault-tolerance policy of the sweep runtime.  ``on_error`` is
        one of ``"fail-fast"`` (the default: first failure aborts the
        sweep, no retries), ``"retry"`` (failed cells are re-run up to
        ``retries`` times before the sweep aborts) or ``"collect"``
        (failed cells are retried, then collected into a failure report
        while every healthy cell still completes and persists).
        ``task_timeout`` bounds a single cell's wall-clock seconds; a
        cell past its deadline is killed and handled under the policy.
        Because a retried cell re-runs the exact same task payload,
        recovered sweeps are bit-identical to fault-free ones — none of
        these knobs influence results, so ``task_key()`` normalises
        them all away.
    backend:
        Execution backend of the sweep runtime (see
        :mod:`repro.runtime.backends`): ``None`` (the default) keeps the
        automatic choice — the historical in-process/forked paths —
        while ``"serial"``, ``"forked"``, ``"persistent"`` and
        ``"socket"`` select a transport explicitly.  Like the
        fault-tolerance knobs, the backend is pure transport: results
        and store addresses are identical across backends, so
        ``task_key()`` normalises it away too.
    inference_engine:
        ``"plan"`` (the default) evaluates trained classifiers through
        the shape-specialized arena engine of :mod:`repro.nn.engine`;
        ``"dynamic"`` keeps the legacy layer-by-layer walk.  Float32 and
        float64 plans are bit-identical to the dynamic path, so this is
        pure execution strategy and ``task_key()`` normalises it away.
    storage_dtype:
        ``None`` stores planned activations in the compute dtype;
        ``"float16"`` halves activation memory by storing them
        half-precision while keeping the arithmetic in the compute
        dtype.  This changes results at the accuracy level, so it is
        *kept* in ``task_key()``.
    blas_threads:
        BLAS thread count pinned around planned inference (``None``
        leaves the library default).  Pure execution speed — results
        are bit-identical for any thread count on the same BLAS — so
        ``task_key()`` normalises it away.
    """

    images_per_class: int = 30
    image_size: int = 32
    noise_std: float = 1.5
    test_fraction: float = 0.25
    epochs: int = 20
    batch_size: int = 32
    learning_rate: float = 0.002
    model_name: str = "AlexNet"
    compute_dtype: str = "float32"
    dataset_seed: int = 7
    split_seed: int = 0
    model_seed: int = 0
    sampling_interval: int = 2
    workers: int = 1
    on_error: str = "fail-fast"
    retries: int = 2
    task_timeout: Optional[float] = None
    backend: Optional[str] = None
    inference_engine: str = "plan"
    storage_dtype: Optional[str] = None
    blas_threads: Optional[int] = None

    def __post_init__(self) -> None:
        if self.images_per_class < 4:
            raise ValueError("images_per_class must be at least 4")
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.model_name not in models.MODEL_BUILDERS:
            raise ValueError(f"unknown model {self.model_name!r}")
        if self.compute_dtype not in ("float32", "float64"):
            raise ValueError(
                f"compute_dtype must be 'float32' or 'float64', "
                f"got {self.compute_dtype!r}"
            )
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.on_error not in ("fail-fast", "retry", "collect"):
            raise ValueError(
                f"on_error must be 'fail-fast', 'retry' or 'collect', "
                f"got {self.on_error!r}"
            )
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.inference_engine not in ("plan", "dynamic"):
            raise ValueError(
                f"inference_engine must be 'plan' or 'dynamic', "
                f"got {self.inference_engine!r}"
            )
        if self.storage_dtype is not None:
            from repro.nn.dtype import resolve_storage_dtype

            resolve_storage_dtype(self.storage_dtype, self.compute_dtype)
        if self.blas_threads is not None and self.blas_threads < 1:
            raise ValueError("blas_threads must be positive (or None)")
        from repro.runtime.backends import validate_backend_name

        validate_backend_name(self.backend)

    @classmethod
    def micro(cls) -> "ExperimentConfig":
        """The smallest configuration that exercises every code path.

        The scale the test suite (and its golden parity fixtures) runs
        at; ``--scale micro`` on the CLI uses the same definition.
        """
        return cls(images_per_class=6, image_size=16, epochs=2, batch_size=8)

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """A configuration sized for CI / pytest-benchmark smoke runs."""
        return cls(images_per_class=16, epochs=10)

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """The default configuration used for the EXPERIMENTS.md numbers."""
        return cls(images_per_class=30, epochs=20)

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """A larger configuration for tighter accuracy estimates."""
        return cls(images_per_class=60, epochs=30)

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy of this configuration with selected fields replaced.

        Unknown field names raise :class:`ValueError` (listing the valid
        fields) instead of silently passing through to ``replace`` — a
        typo in a sweep override must never produce a config that looks
        accepted but changed nothing.
        """
        valid = {field.name for field in fields(self)}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ValueError(
                f"unknown ExperimentConfig field(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )
        return replace(self, **kwargs)

    def task_key(self) -> "ExperimentConfig":
        """The worker-state key this configuration implies.

        Identical to the config except that every runtime knob —
        ``workers``, the fault-tolerance policy, the execution
        ``backend``, the ``inference_engine`` and ``blas_threads`` — is
        normalised to its default: the parallel runtime must never
        influence the data, model or seeds a worker reconstructs (and
        so never the store address either), and a worker never
        re-parallelises its own task.  ``storage_dtype`` is *not*
        normalised: half-precision activation storage changes the
        numbers, so it addresses distinct results.
        """
        return replace(
            self,
            workers=1,
            on_error="fail-fast",
            retries=2,
            task_timeout=None,
            backend=None,
            inference_engine="plan",
            blas_threads=None,
        )

    def freqnet_config(self) -> FreqNetConfig:
        """The FreqNet generator configuration implied by this experiment."""
        return FreqNetConfig(
            image_size=self.image_size,
            images_per_class=self.images_per_class,
            noise_std=self.noise_std,
            seed=self.dataset_seed,
        )

    def input_shape(self) -> tuple:
        """CHW input shape of the classifier."""
        return (1, self.image_size, self.image_size)


def make_splits(config: ExperimentConfig) -> tuple:
    """Generate FreqNet and return the stratified (train, test) split."""
    dataset = generate_freqnet(config.freqnet_config())
    return train_test_split(
        dataset, test_fraction=config.test_fraction, seed=config.split_seed
    )


@dataclass
class TrainedClassifier:
    """A trained model together with its trainer and training history."""

    model: Sequential
    trainer: Trainer
    history: TrainingHistory
    config: Optional[ExperimentConfig] = field(repr=False, default=None)

    def accuracy_on(self, dataset) -> float:
        """Top-1 accuracy on a Dataset or CompressedDataset."""
        dataset = _as_dataset(dataset)
        return self.trainer.evaluate(
            prepare_for_network(dataset.images, dtype=self.model.dtype),
            dataset.labels,
        )

    def predictions_on(self, dataset) -> np.ndarray:
        """Predicted labels on a Dataset or CompressedDataset."""
        dataset = _as_dataset(dataset)
        return self.model.predict(
            prepare_for_network(dataset.images, dtype=self.model.dtype)
        )


def train_classifier(
    train_dataset,
    config: ExperimentConfig,
    model_name: Optional[str] = None,
    validation_dataset=None,
    epochs: Optional[int] = None,
) -> TrainedClassifier:
    """Train a classifier of ``model_name`` on ``train_dataset``.

    ``train_dataset`` may be a Dataset or a CompressedDataset (the CASE-2
    protocol trains directly on decompressed images).
    """
    train_dataset = _as_dataset(train_dataset)
    model_name = model_name if model_name is not None else config.model_name
    model = models.build_model(
        model_name,
        num_classes=train_dataset.num_classes,
        input_shape=config.input_shape(),
        seed=config.model_seed,
        dtype=config.compute_dtype,
    )
    model.inference_engine = config.inference_engine
    model.storage_dtype = config.storage_dtype
    model.blas_threads = config.blas_threads
    trainer = Trainer(
        model,
        optimizer=Adam(config.learning_rate),
        batch_size=config.batch_size,
        seed=config.model_seed,
    )
    validation_data = None
    if validation_dataset is not None:
        validation_dataset = _as_dataset(validation_dataset)
        validation_data = (
            prepare_for_network(
                validation_dataset.images, dtype=config.compute_dtype
            ),
            validation_dataset.labels,
        )
    history = trainer.fit(
        prepare_for_network(train_dataset.images, dtype=config.compute_dtype),
        train_dataset.labels,
        epochs=epochs if epochs is not None else config.epochs,
        validation_data=validation_data,
    )
    return TrainedClassifier(
        model=model, trainer=trainer, history=history, config=config
    )


def relative_compression_rate(
    compressed: CompressedDataset, reference: CompressedDataset
) -> float:
    """Compression rate relative to the reference (the paper's CR=1 anchor).

    The paper reports every compression rate relative to the QF=100 JPEG
    dataset ("Original", CR=1), not to raw pixels.
    """
    return reference.total_bytes / compressed.total_bytes


def format_table(headers: "list[str]", rows: "list[list]") -> str:
    """Render a plain-text table with aligned columns."""
    if not rows:
        return " | ".join(headers)
    formatted_rows = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in formatted_rows))
        for i, header in enumerate(headers)
    ]
    lines = [
        " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in formatted_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _as_dataset(dataset) -> Dataset:
    if isinstance(dataset, CompressedDataset):
        return dataset.dataset
    if isinstance(dataset, Dataset):
        return dataset
    raise TypeError(
        f"expected a Dataset or CompressedDataset, got {type(dataset).__name__}"
    )
