"""The design-optimization flow of Section 4.

The paper derives the parameters of the piece-wise linear mapping from
measurements: the per-group sensitivity sweeps (Fig. 5) yield the anchor
steps ``Q1`` (HF), ``Q2`` (MF) and ``Qmin`` (LF knee), and the ``k3``
sweep (Fig. 6) picks the LF slope.  :func:`derive_design_config` runs the
Fig. 5 procedure (or reuses supplied anchors) and packages the result as a
:class:`~repro.core.config.DeepNJpegConfig`, which the Fig. 6/7/8/9
experiments then consume.
"""

from __future__ import annotations

from typing import Optional

from repro.core.codec import build_codec
from repro.core.config import DeepNJpegConfig
from repro.core.pipeline import DeepNJpeg
from repro.experiments import fig5_band_sensitivity
from repro.experiments.common import ExperimentConfig, TrainedClassifier
from repro.experiments.store import ArtifactStore, SweepCache
from repro.runtime.executor import CACHE_MISS


#: Default guard band applied to the Fig. 5 anchors.  The sweeps quantize one
#: band group at a time; the combined table distorts every group at once, so
#: the per-group critical points systematically overestimate what the full
#: table tolerates — much more so on the synthetic FreqNet classes (which are
#: extremely robust to single-group distortion) than on ImageNet, where the
#: paper found small critical points (Q1=60, Q2=20).  Scaling the derived
#: anchors down keeps the combined table inside the accuracy-neutral regime.
DEFAULT_ANCHOR_SAFETY_FACTOR = 0.6
#: Ceiling on the derived LF floor (the paper uses Qmin=5); protects the DC
#: and other top-energy bands from the same single-group overestimate.
DEFAULT_Q_MIN_CEILING = 8.0


def derive_design_config(
    config: ExperimentConfig,
    anchors: dict = None,
    k3: float = 3.0,
    classifier: TrainedClassifier = None,
    safety_factor: float = DEFAULT_ANCHOR_SAFETY_FACTOR,
    q_min_ceiling: float = DEFAULT_Q_MIN_CEILING,
    store: Optional[ArtifactStore] = None,
) -> DeepNJpegConfig:
    """Build the dataset-specific DeepN-JPEG configuration.

    Parameters
    ----------
    config:
        Experiment scale (dataset size, epochs, seeds).  Its ``workers``
        knob also parallelises the embedded Fig. 5 sweeps: when anchors
        are not supplied, every (method, group, step) measurement behind
        the derived design runs as an independent pool task.
    anchors:
        Optional pre-computed ``{"q1", "q2", "q_min"}`` dictionary (e.g.
        from a previous :func:`repro.experiments.fig5_band_sensitivity.run`);
        when omitted, the Fig. 5 sweeps are run here.
    k3:
        LF slope; the Fig. 6 experiment sweeps this value, the paper picks 3.
    classifier:
        Optional already-trained classifier to reuse for the Fig. 5 sweeps.
    safety_factor:
        Guard band applied to the derived ``q1``/``q2`` anchors (see
        :data:`DEFAULT_ANCHOR_SAFETY_FACTOR`).  Pass ``1.0`` to use the raw
        Fig. 5 critical points exactly as the paper does.
    q_min_ceiling:
        Upper bound on the derived LF floor.
    store:
        Optional :class:`~repro.experiments.store.ArtifactStore` the
        embedded Fig. 5 sweeps resume from (ignored when ``anchors``
        are supplied; bypassed when a ``classifier`` is, since its
        state is not derivable from the config).
    """
    if safety_factor <= 0 or safety_factor > 1:
        raise ValueError("safety_factor must be in (0, 1]")
    if anchors is None:
        fig5_result = fig5_band_sensitivity.run(
            config, classifier=classifier, store=store
        )
        anchors = fig5_result.derived_anchors()
    missing = {"q1", "q2", "q_min"} - set(anchors)
    if missing:
        raise ValueError(f"anchors missing keys: {sorted(missing)}")
    q_min = min(float(anchors["q_min"]), float(q_min_ceiling))
    q1 = max(float(anchors["q1"]) * safety_factor, q_min)
    q2 = max(float(anchors["q2"]) * safety_factor, q_min)
    q2 = min(q2, q1)
    return DeepNJpegConfig(
        q1=q1,
        q2=q2,
        q_min=q_min,
        k3=float(k3),
        sampling_interval=config.sampling_interval,
    )


def fitted_pipeline(
    config: ExperimentConfig,
    deepn_config: Optional[DeepNJpegConfig],
    dataset_provider,
    store: Optional[ArtifactStore] = None,
    fit_on: str = "train",
) -> DeepNJpeg:
    """A fitted :class:`~repro.core.pipeline.DeepNJpeg`, fit cached in the store.

    The fitted :class:`~repro.core.table_design.TableDesignResult` is a
    deterministic function of ``(config, deepn_config, fit_on)``, so it
    is itself a store artifact: on a warm store the pipeline is rebuilt
    from the cached design through the codec registry — no dataset
    generation and no Algorithm-1 analysis pass.  ``dataset_provider``
    is only called on a cold fit (pass a closure so a fully warm figure
    never materialises its datasets); ``fit_on`` names which split the
    provider returns, keeping train- and test-fitted designs at
    distinct addresses.
    """
    if deepn_config is None:
        deepn_config = DeepNJpegConfig()
    cache = SweepCache(store, "deepn-fit", config)
    cell = {
        "cell": "design",
        "deepn_config": deepn_config.to_json(),
        "fit_on": fit_on,
    }
    payload = cache.lookup(cell)
    if payload is not CACHE_MISS:
        return build_codec(
            "deepn-jpeg", config=deepn_config.to_json(), design=payload
        )
    pipeline = DeepNJpeg(deepn_config).fit(dataset_provider())
    cache.record(cell, pipeline.design.to_json())
    return pipeline
