"""Fig. 2: accuracy degradation of HVS-oriented JPEG at high compression.

CASE 1 trains the classifier on high-quality (QF=100) images and tests it
on images compressed at various quality factors; CASE 2 trains on the
compressed images and tests on high-quality ones.  Fig. 2(a) reports the
final accuracy of both cases at QF ∈ {100, 50, 20}; Fig. 2(b) tracks the
CASE-2 accuracy over training epochs.

Declared on :mod:`repro.experiments.api` as a single ``quality`` axis
whose cell function runs one CASE-1 evaluation plus one CASE-2 training
run; the framework supplies caching, resume and sharding.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.baselines import JpegCompressor
from repro.experiments import api
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    relative_compression_rate,
    train_classifier,
)
from repro.experiments.store import ArtifactStore

#: Quality factors evaluated in the figure.
FIG2_QUALITY_FACTORS = (100, 50, 20)
#: Table columns (shared by the result table and the CLI --json payload).
FIG2_HEADERS = ["Quality", "CR (vs QF=100)", "CASE 1 top-1", "CASE 2 top-1"]


@dataclass(frozen=True)
class Fig2Entry:
    """One (quality factor, case) accuracy measurement."""

    quality: int
    compression_ratio: float
    case1_accuracy: float
    case2_accuracy: float
    case2_accuracy_per_epoch: "tuple[float, ...]"


@dataclass
class Fig2Result:
    """All measurements behind Fig. 2(a) and 2(b)."""

    entries: "list[Fig2Entry]" = field(default_factory=list)

    def rows(self) -> "list[list]":
        return [
            [
                f"QF={entry.quality}",
                entry.compression_ratio,
                entry.case1_accuracy,
                entry.case2_accuracy,
            ]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(FIG2_HEADERS, self.rows())

    def accuracy_drop_case1(self) -> float:
        """Accuracy lost by CASE 1 between the lowest and highest quality."""
        return self.entries[0].case1_accuracy - self.entries[-1].case1_accuracy

    def accuracy_drop_case2(self) -> float:
        """Accuracy lost by CASE 2 between the lowest and highest quality."""
        return self.entries[0].case2_accuracy - self.entries[-1].case2_accuracy

    def epoch_curves(self) -> dict:
        """Fig. 2(b): CASE-2 validation accuracy per epoch, keyed by QF."""
        return {
            entry.quality: list(entry.case2_accuracy_per_epoch)
            for entry in self.entries
        }


class Fig2Experiment(api.Experiment):
    """The QF-sweep motivation experiment as a declarative experiment."""

    name = "fig2"
    title = "Accuracy vs JPEG quality factor (CASE 1 / CASE 2)"
    headers = FIG2_HEADERS
    defaults = {"quality_factors": FIG2_QUALITY_FACTORS}

    def _quality_factors(self, ctx: api.RunContext) -> "tuple[int, ...]":
        return tuple(ctx.params["quality_factors"])

    def axes(self, ctx: api.RunContext) -> "list[api.Axis]":
        return [api.Axis("quality", self._quality_factors(ctx))]

    def cell_identity(self, ctx: api.RunContext, point: dict) -> dict:
        quality = point["quality"]
        return {
            "quality": int(quality),
            "quality_factors": list(self._quality_factors(ctx)),
            "codec": JpegCompressor(quality).spec(),
        }

    def state_key(self, ctx: api.RunContext):
        return (ctx.config.task_key(), self._quality_factors(ctx))

    def build_state(self, key: tuple) -> dict:
        """Shared state of the QF sweep, keyed by (config, quality factors).

        The per-quality compressions and the CASE-1 model are
        reconstructed from the key alone, so a cold worker reproduces
        the parent's state bit for bit.
        """
        config, quality_factors = key
        train_dataset, test_dataset = make_splits(config)
        compressed_train = {
            quality: JpegCompressor(quality).compress_dataset(train_dataset)
            for quality in quality_factors
        }
        compressed_test = {
            quality: JpegCompressor(quality).compress_dataset(test_dataset)
            for quality in quality_factors
        }
        case1_model = train_classifier(
            compressed_train[max(quality_factors)], config
        )
        return {
            "compressed_train": compressed_train,
            "compressed_test": compressed_test,
            "case1_model": case1_model,
        }

    def compute_cell(self, key, state, cell: dict, extra) -> Fig2Entry:
        """One quality factor: CASE-1 evaluation plus a CASE-2 training run."""
        config, quality_factors = key
        quality = cell["quality"]
        best = max(quality_factors)
        compressed_test = state["compressed_test"]
        case1_accuracy = state["case1_model"].accuracy_on(
            compressed_test[quality]
        )
        # CASE 2: train on images compressed at this QF, test on high quality.
        case2_model = train_classifier(
            state["compressed_train"][quality],
            config,
            validation_dataset=compressed_test[best],
        )
        case2_accuracy = case2_model.accuracy_on(compressed_test[best])
        return Fig2Entry(
            quality=quality,
            compression_ratio=relative_compression_rate(
                compressed_test[quality], compressed_test[best]
            ),
            case1_accuracy=case1_accuracy,
            case2_accuracy=case2_accuracy,
            case2_accuracy_per_epoch=tuple(
                case2_model.history.validation_accuracy
            ),
        )

    def cell_to_payload(self, value: Fig2Entry) -> dict:
        return asdict(value)

    def cell_from_payload(self, payload: dict) -> Fig2Entry:
        payload = dict(payload)
        payload["case2_accuracy_per_epoch"] = tuple(
            payload["case2_accuracy_per_epoch"]
        )
        return Fig2Entry(**payload)

    def assemble(
        self, ctx: api.RunContext, results: list, scalars: dict
    ) -> Fig2Result:
        result = Fig2Result()
        result.entries.extend(results)
        return result

    def report(self, result: Fig2Result) -> str:
        lines = [
            result.format_table(),
            "",
            "CASE 2 accuracy per epoch (Fig. 2b):",
        ]
        for quality, curve in result.epoch_curves().items():
            lines.append(
                f"  QF={quality}: "
                + ", ".join(f"{accuracy:.2f}" for accuracy in curve)
            )
        return "\n".join(lines)


api.register_experiment(Fig2Experiment.name, Fig2Experiment)

#: The shared worker-state memo (historical name, see the parallel tests).
_STATE = api._STATE


def run(
    config: ExperimentConfig = None,
    quality_factors: "tuple[int, ...]" = FIG2_QUALITY_FACTORS,
    store: Optional[ArtifactStore] = None,
) -> Fig2Result:
    """Reproduce Fig. 2 at the given experiment scale.

    A thin shim over the declarative :class:`Fig2Experiment`: sharding
    (``config.workers``), per-cell store resume and ordering are
    supplied by :func:`repro.experiments.api.run_experiment`.
    """
    return api.run_experiment(
        Fig2Experiment(), config, store=store, quality_factors=quality_factors
    )
