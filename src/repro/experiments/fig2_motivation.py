"""Fig. 2: accuracy degradation of HVS-oriented JPEG at high compression.

CASE 1 trains the classifier on high-quality (QF=100) images and tests it
on images compressed at various quality factors; CASE 2 trains on the
compressed images and tests on high-quality ones.  Fig. 2(a) reports the
final accuracy of both cases at QF ∈ {100, 50, 20}; Fig. 2(b) tracks the
CASE-2 accuracy over training epochs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.baselines import JpegCompressor
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    relative_compression_rate,
    train_classifier,
)
from repro.experiments.store import ArtifactStore, SweepCache, all_cached
from repro.runtime.executor import TaskState, map_tasks_resumable

#: Quality factors evaluated in the figure.
FIG2_QUALITY_FACTORS = (100, 50, 20)


@dataclass(frozen=True)
class Fig2Entry:
    """One (quality factor, case) accuracy measurement."""

    quality: int
    compression_ratio: float
    case1_accuracy: float
    case2_accuracy: float
    case2_accuracy_per_epoch: "tuple[float, ...]"


@dataclass
class Fig2Result:
    """All measurements behind Fig. 2(a) and 2(b)."""

    entries: "list[Fig2Entry]" = field(default_factory=list)

    def rows(self) -> "list[list]":
        return [
            [
                f"QF={entry.quality}",
                entry.compression_ratio,
                entry.case1_accuracy,
                entry.case2_accuracy,
            ]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(
            ["Quality", "CR (vs QF=100)", "CASE 1 top-1", "CASE 2 top-1"],
            self.rows(),
        )

    def accuracy_drop_case1(self) -> float:
        """Accuracy lost by CASE 1 between the lowest and highest quality."""
        return self.entries[0].case1_accuracy - self.entries[-1].case1_accuracy

    def accuracy_drop_case2(self) -> float:
        """Accuracy lost by CASE 2 between the lowest and highest quality."""
        return self.entries[0].case2_accuracy - self.entries[-1].case2_accuracy

    def epoch_curves(self) -> dict:
        """Fig. 2(b): CASE-2 validation accuracy per epoch, keyed by QF."""
        return {
            entry.quality: list(entry.case2_accuracy_per_epoch)
            for entry in self.entries
        }


def _build_state(key: tuple) -> dict:
    """Shared state of the QF sweep, keyed by (config, quality factors).

    The per-quality compressions and the CASE-1 model are reconstructed
    from the key alone, so a cold worker reproduces the parent's state
    bit for bit.
    """
    config, quality_factors = key
    train_dataset, test_dataset = make_splits(config)
    compressed_train = {
        quality: JpegCompressor(quality).compress_dataset(train_dataset)
        for quality in quality_factors
    }
    compressed_test = {
        quality: JpegCompressor(quality).compress_dataset(test_dataset)
        for quality in quality_factors
    }
    case1_model = train_classifier(
        compressed_train[max(quality_factors)], config
    )
    return {
        "compressed_train": compressed_train,
        "compressed_test": compressed_test,
        "case1_model": case1_model,
    }


_STATE = TaskState(_build_state)


def _quality_cell(task: tuple) -> Fig2Entry:
    """One quality factor: CASE-1 evaluation plus a CASE-2 training run."""
    key, quality = task
    config, quality_factors = key
    state = _STATE.get(key)
    best = max(quality_factors)
    compressed_test = state["compressed_test"]
    case1_accuracy = state["case1_model"].accuracy_on(compressed_test[quality])
    # CASE 2: train on images compressed at this QF, test on high quality.
    case2_model = train_classifier(
        state["compressed_train"][quality],
        config,
        validation_dataset=compressed_test[best],
    )
    case2_accuracy = case2_model.accuracy_on(compressed_test[best])
    return Fig2Entry(
        quality=quality,
        compression_ratio=relative_compression_rate(
            compressed_test[quality], compressed_test[best]
        ),
        case1_accuracy=case1_accuracy,
        case2_accuracy=case2_accuracy,
        case2_accuracy_per_epoch=tuple(
            case2_model.history.validation_accuracy
        ),
    )


def _entry_from_payload(payload: dict) -> Fig2Entry:
    payload = dict(payload)
    payload["case2_accuracy_per_epoch"] = tuple(
        payload["case2_accuracy_per_epoch"]
    )
    return Fig2Entry(**payload)


def run(
    config: ExperimentConfig = None,
    quality_factors: "tuple[int, ...]" = FIG2_QUALITY_FACTORS,
    store: Optional[ArtifactStore] = None,
) -> Fig2Result:
    """Reproduce Fig. 2 at the given experiment scale.

    With ``config.workers > 1`` each quality factor (one CASE-1
    evaluation plus one CASE-2 training run) is an independent pool
    task; results are identical to the serial run.

    With ``store`` each quality cell resumes from the content-addressed
    artifact store; a fully warm store returns without compressing any
    dataset or training any classifier.
    """
    config = config if config is not None else ExperimentConfig.small()
    quality_factors = tuple(quality_factors)
    key = (config.task_key(), quality_factors)
    cells = [
        {
            "quality": int(quality),
            "quality_factors": list(quality_factors),
            "codec": JpegCompressor(quality).spec(),
        }
        for quality in quality_factors
    ]
    cache = SweepCache(
        store, "fig2", config,
        from_payload=_entry_from_payload, to_payload=asdict,
    )
    cached = cache.lookup_many(cells)
    result = Fig2Result()
    if all_cached(cached):
        result.entries.extend(cached)
        return result
    _STATE.get(key)
    tasks = [(key, quality) for quality in quality_factors]
    try:
        result.entries.extend(
            map_tasks_resumable(
                _quality_cell, tasks, cached,
                workers=config.workers, on_result=cache.recorder(cells),
            )
        )
    finally:
        # Release the per-QF compressed datasets and the CASE-1 model.
        _STATE.clear()
    return result
