"""Fig. 3: removing high-frequency components flips DNN predictions.

The paper's example removes the six highest-frequency DCT components of a
"junco" image; the result is visually indistinguishable but the DNN
mis-predicts "robin".  Here the same operation is applied to the test
images of the FreqNet classes whose identity lives in high-frequency
detail, and the experiment reports how the classifier's accuracy and the
image distortion (PSNR) change as more components are removed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    train_classifier,
)
from repro.experiments.store import ArtifactStore, SweepCache, all_cached
from repro.jpeg.blocks import (
    assemble_blocks,
    inverse_level_shift,
    level_shift,
    partition_blocks,
)
from repro.jpeg.dct import block_dct2d, block_idct2d
from repro.jpeg.metrics import psnr
from repro.jpeg.zigzag import inverse_zigzag, zigzag
from repro.runtime.executor import TaskState, map_tasks_resumable

#: Numbers of removed components evaluated (the paper's example removes 6).
FIG3_REMOVED_COMPONENTS = (0, 3, 6, 9, 12)


def remove_high_frequency_components(
    image: np.ndarray, removed_components: int
) -> np.ndarray:
    """Zero the last ``removed_components`` zig-zag DCT bands of every block.

    This is the operation illustrated in Fig. 3: a frequency-domain edit
    with no quantization involved, isolating the effect of losing the
    highest-frequency features.
    """
    if not 0 <= removed_components < 64:
        raise ValueError("removed_components must be in [0, 63]")
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a grayscale image, got shape {image.shape}")
    if removed_components == 0:
        return image.copy()
    blocks, grid_shape = partition_blocks(level_shift(image))
    coefficients = zigzag(block_dct2d(blocks))
    coefficients[:, 64 - removed_components:] = 0.0
    restored = block_idct2d(inverse_zigzag(coefficients))
    return inverse_level_shift(
        assemble_blocks(restored, grid_shape, image.shape)
    )


def remove_high_frequency_dataset(
    dataset: Dataset, removed_components: int
) -> Dataset:
    """Apply :func:`remove_high_frequency_components` to a whole dataset."""
    images = np.stack(
        [
            remove_high_frequency_components(image, removed_components)
            for image in dataset.images
        ],
        axis=0,
    )
    return dataset.with_images(images)


@dataclass(frozen=True)
class Fig3Entry:
    """Effect of removing ``removed_components`` high-frequency bands."""

    removed_components: int
    accuracy: float
    high_frequency_class_accuracy: float
    mean_psnr: float
    flipped_fraction: float


@dataclass
class Fig3Result:
    """All measurements behind the Fig. 3 demonstration."""

    entries: "list[Fig3Entry]" = field(default_factory=list)
    high_frequency_classes: "list[str]" = field(default_factory=list)

    def rows(self) -> "list[list]":
        return [
            [
                entry.removed_components,
                entry.accuracy,
                entry.high_frequency_class_accuracy,
                entry.mean_psnr,
                entry.flipped_fraction,
            ]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(
            [
                "Removed HF bands",
                "Top-1 accuracy",
                "HF-class accuracy",
                "PSNR (dB)",
                "Flipped predictions",
            ],
            self.rows(),
        )


def _build_state(key: tuple) -> dict:
    """Shared state keyed by (config, high-frequency class names)."""
    config, high_frequency_classes = key
    train_dataset, test_dataset = make_splits(config)
    classifier = train_classifier(train_dataset, config)
    high_frequency_labels = [
        test_dataset.class_names.index(name)
        for name in high_frequency_classes
        if name in test_dataset.class_names
    ]
    return {
        "test_dataset": test_dataset,
        "classifier": classifier,
        "baseline_predictions": classifier.predictions_on(test_dataset),
        "high_frequency_mask": np.isin(
            test_dataset.labels, high_frequency_labels
        ),
    }


_STATE = TaskState(_build_state)


def _removal_cell(task: tuple) -> Fig3Entry:
    """One removed-component count: degrade, predict, measure."""
    key, count = task
    state = _STATE.get(key)
    test_dataset = state["test_dataset"]
    high_frequency_mask = state["high_frequency_mask"]
    degraded = remove_high_frequency_dataset(test_dataset, count)
    predictions = state["classifier"].predictions_on(degraded)
    accuracy = float((predictions == test_dataset.labels).mean())
    if high_frequency_mask.any():
        hf_accuracy = float(
            (
                predictions[high_frequency_mask]
                == test_dataset.labels[high_frequency_mask]
            ).mean()
        )
    else:
        hf_accuracy = float("nan")
    psnr_values = [
        psnr(original, degraded_image)
        for original, degraded_image in zip(
            test_dataset.images, degraded.images
        )
    ]
    finite = [value for value in psnr_values if np.isfinite(value)]
    return Fig3Entry(
        removed_components=count,
        accuracy=accuracy,
        high_frequency_class_accuracy=hf_accuracy,
        mean_psnr=float(np.mean(finite)) if finite else float("inf"),
        flipped_fraction=float(
            (predictions != state["baseline_predictions"]).mean()
        ),
    )


def run(
    config: ExperimentConfig = None,
    removed_components: "tuple[int, ...]" = FIG3_REMOVED_COMPONENTS,
    high_frequency_classes: "tuple[str, ...]" = ("textured_blob",),
    store: Optional[ArtifactStore] = None,
) -> Fig3Result:
    """Reproduce the Fig. 3 feature-degradation demonstration.

    With ``config.workers > 1`` each removed-component count is an
    independent pool task; results are identical to the serial run.

    With ``store`` each removal cell resumes from the content-addressed
    artifact store; a fully warm store returns without training the
    classifier or degrading any images.
    """
    config = config if config is not None else ExperimentConfig.small()
    key = (config.task_key(), tuple(high_frequency_classes))
    cells = [
        {
            "removed_components": int(count),
            "high_frequency_classes": list(high_frequency_classes),
        }
        for count in removed_components
    ]
    cache = SweepCache(
        store, "fig3", config,
        from_payload=lambda payload: Fig3Entry(**payload),
        to_payload=asdict,
    )
    cached = cache.lookup_many(cells)
    result = Fig3Result(high_frequency_classes=list(high_frequency_classes))
    if all_cached(cached):
        result.entries.extend(cached)
        return result
    _STATE.get(key)
    tasks = [(key, count) for count in removed_components]
    try:
        result.entries.extend(
            map_tasks_resumable(
                _removal_cell, tasks, cached,
                workers=config.workers, on_result=cache.recorder(cells),
            )
        )
    finally:
        # Release the datasets and classifier after the sweep.
        _STATE.clear()
    return result
