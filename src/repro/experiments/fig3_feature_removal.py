"""Fig. 3: removing high-frequency components flips DNN predictions.

The paper's example removes the six highest-frequency DCT components of a
"junco" image; the result is visually indistinguishable but the DNN
mis-predicts "robin".  Here the same operation is applied to the test
images of the FreqNet classes whose identity lives in high-frequency
detail, and the experiment reports how the classifier's accuracy and the
image distortion (PSNR) change as more components are removed.

Declared on :mod:`repro.experiments.api` as one ``removed_components``
axis; the framework supplies caching, resume and sharding.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.experiments import api
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    train_classifier,
)
from repro.experiments.store import ArtifactStore
from repro.jpeg.blocks import (
    assemble_blocks,
    inverse_level_shift,
    level_shift,
    partition_blocks,
)
from repro.jpeg.dct import block_dct2d, block_idct2d
from repro.jpeg.metrics import psnr
from repro.jpeg.zigzag import inverse_zigzag, zigzag

#: Numbers of removed components evaluated (the paper's example removes 6).
FIG3_REMOVED_COMPONENTS = (0, 3, 6, 9, 12)
#: Table columns (shared by the result table and the CLI --json payload).
FIG3_HEADERS = [
    "Removed HF bands",
    "Top-1 accuracy",
    "HF-class accuracy",
    "PSNR (dB)",
    "Flipped predictions",
]


def remove_high_frequency_components(
    image: np.ndarray, removed_components: int
) -> np.ndarray:
    """Zero the last ``removed_components`` zig-zag DCT bands of every block.

    This is the operation illustrated in Fig. 3: a frequency-domain edit
    with no quantization involved, isolating the effect of losing the
    highest-frequency features.
    """
    if not 0 <= removed_components < 64:
        raise ValueError("removed_components must be in [0, 63]")
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a grayscale image, got shape {image.shape}")
    if removed_components == 0:
        return image.copy()
    blocks, grid_shape = partition_blocks(level_shift(image))
    coefficients = zigzag(block_dct2d(blocks))
    coefficients[:, 64 - removed_components:] = 0.0
    restored = block_idct2d(inverse_zigzag(coefficients))
    return inverse_level_shift(
        assemble_blocks(restored, grid_shape, image.shape)
    )


def remove_high_frequency_dataset(
    dataset: Dataset, removed_components: int
) -> Dataset:
    """Apply :func:`remove_high_frequency_components` to a whole dataset."""
    images = np.stack(
        [
            remove_high_frequency_components(image, removed_components)
            for image in dataset.images
        ],
        axis=0,
    )
    return dataset.with_images(images)


@dataclass(frozen=True)
class Fig3Entry:
    """Effect of removing ``removed_components`` high-frequency bands."""

    removed_components: int
    accuracy: float
    high_frequency_class_accuracy: float
    mean_psnr: float
    flipped_fraction: float


@dataclass
class Fig3Result:
    """All measurements behind the Fig. 3 demonstration."""

    entries: "list[Fig3Entry]" = field(default_factory=list)
    high_frequency_classes: "list[str]" = field(default_factory=list)

    def rows(self) -> "list[list]":
        return [
            [
                entry.removed_components,
                entry.accuracy,
                entry.high_frequency_class_accuracy,
                entry.mean_psnr,
                entry.flipped_fraction,
            ]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(FIG3_HEADERS, self.rows())


class Fig3Experiment(api.Experiment):
    """The feature-degradation demonstration as a declarative experiment."""

    name = "fig3"
    title = "High-frequency removal flips predictions (accuracy / PSNR)"
    headers = FIG3_HEADERS
    defaults = {
        "removed_components": FIG3_REMOVED_COMPONENTS,
        "high_frequency_classes": ("textured_blob",),
    }

    def axes(self, ctx: api.RunContext) -> "list[api.Axis]":
        return [
            api.Axis(
                "removed_components",
                tuple(int(count) for count in ctx.params["removed_components"]),
            )
        ]

    def cell_identity(self, ctx: api.RunContext, point: dict) -> dict:
        return {
            "removed_components": point["removed_components"],
            "high_frequency_classes": list(
                ctx.params["high_frequency_classes"]
            ),
        }

    def state_key(self, ctx: api.RunContext):
        return (
            ctx.config.task_key(),
            tuple(ctx.params["high_frequency_classes"]),
        )

    def build_state(self, key: tuple) -> dict:
        """Shared state keyed by (config, high-frequency class names)."""
        config, high_frequency_classes = key
        train_dataset, test_dataset = make_splits(config)
        classifier = train_classifier(train_dataset, config)
        high_frequency_labels = [
            test_dataset.class_names.index(name)
            for name in high_frequency_classes
            if name in test_dataset.class_names
        ]
        return {
            "test_dataset": test_dataset,
            "classifier": classifier,
            "baseline_predictions": classifier.predictions_on(test_dataset),
            "high_frequency_mask": np.isin(
                test_dataset.labels, high_frequency_labels
            ),
        }

    def compute_cell(self, key, state, cell: dict, extra) -> Fig3Entry:
        """One removed-component count: degrade, predict, measure."""
        count = cell["removed_components"]
        test_dataset = state["test_dataset"]
        high_frequency_mask = state["high_frequency_mask"]
        degraded = remove_high_frequency_dataset(test_dataset, count)
        predictions = state["classifier"].predictions_on(degraded)
        accuracy = float((predictions == test_dataset.labels).mean())
        if high_frequency_mask.any():
            hf_accuracy = float(
                (
                    predictions[high_frequency_mask]
                    == test_dataset.labels[high_frequency_mask]
                ).mean()
            )
        else:
            hf_accuracy = float("nan")
        psnr_values = [
            psnr(original, degraded_image)
            for original, degraded_image in zip(
                test_dataset.images, degraded.images
            )
        ]
        finite = [value for value in psnr_values if np.isfinite(value)]
        return Fig3Entry(
            removed_components=count,
            accuracy=accuracy,
            high_frequency_class_accuracy=hf_accuracy,
            mean_psnr=float(np.mean(finite)) if finite else float("inf"),
            flipped_fraction=float(
                (predictions != state["baseline_predictions"]).mean()
            ),
        )

    def cell_to_payload(self, value: Fig3Entry) -> dict:
        return asdict(value)

    def cell_from_payload(self, payload: dict) -> Fig3Entry:
        return Fig3Entry(**payload)

    def assemble(
        self, ctx: api.RunContext, results: list, scalars: dict
    ) -> Fig3Result:
        result = Fig3Result(
            high_frequency_classes=list(ctx.params["high_frequency_classes"])
        )
        result.entries.extend(results)
        return result


api.register_experiment(Fig3Experiment.name, Fig3Experiment)

#: The shared worker-state memo (historical name, see the parallel tests).
_STATE = api._STATE


def run(
    config: ExperimentConfig = None,
    removed_components: "tuple[int, ...]" = FIG3_REMOVED_COMPONENTS,
    high_frequency_classes: "tuple[str, ...]" = ("textured_blob",),
    store: Optional[ArtifactStore] = None,
) -> Fig3Result:
    """Reproduce the Fig. 3 feature-degradation demonstration.

    A thin shim over the declarative :class:`Fig3Experiment`: sharding
    (``config.workers``), per-cell store resume and ordering are
    supplied by :func:`repro.experiments.api.run_experiment`.
    """
    return api.run_experiment(
        Fig3Experiment(), config, store=store,
        removed_components=removed_components,
        high_frequency_classes=high_frequency_classes,
    )
