"""Fig. 5: sensitivity of DNN accuracy to quantization per frequency group.

For each frequency group (LF / MF / HF) and each band-segmentation method
(magnitude based — DeepN-JPEG — and position based — default JPEG), the
experiment quantizes only the bands of that group at a sweep of steps
while keeping every other band at step 1, and measures the accuracy of a
classifier trained on uncompressed images.  The output also extracts the
paper's design anchors: the largest accuracy-neutral step per group
(``Q1`` for HF, ``Q2`` for MF) and the LF knee (``Qmin``), which the
Fig. 6/7/8 experiments feed into the piece-wise linear mapping.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.bands import (
    BandSegmentation,
    magnitude_based_segmentation,
    position_based_segmentation,
)
from repro.analysis.frequency import analyze_dataset
from repro.core.baselines import compress_dataset_with_table
from repro.experiments.common import (
    ExperimentConfig,
    TrainedClassifier,
    format_table,
    make_splits,
    train_classifier,
)
from repro.experiments.store import ArtifactStore, SweepCache, all_cached
from repro.jpeg.quantization import QuantizationTable
from repro.runtime.executor import CACHE_MISS, TaskState, map_tasks_resumable

#: The two band-segmentation methods the figure contrasts (the order of
#: the sweep grid and of the state's ``segmentations`` dict).
SEGMENTATION_METHODS = ("magnitude", "position")

#: Quantization steps swept per group (the paper sweeps to 40/60/80; the
#: synthetic dataset tolerates larger steps, so the sweeps extend further to
#: locate the knees).
DEFAULT_STEP_SWEEPS = {
    "LF": (1, 3, 5, 8, 12, 20, 30),
    "MF": (1, 10, 20, 40, 60, 90, 120),
    "HF": (1, 20, 40, 60, 90, 120, 160, 200),
}
#: Accuracy tolerance when extracting the largest accuracy-neutral step.
ACCURACY_TOLERANCE = 0.005


def group_quantization_table(
    segmentation: BandSegmentation, group: str, step: float
) -> QuantizationTable:
    """A table with ``step`` on the given group's bands and 1 elsewhere."""
    values = np.ones((8, 8), dtype=np.float64)
    values[segmentation.mask(group)] = step
    return QuantizationTable(
        values, name=f"{segmentation.method}-{group}-q{step:g}"
    )


@dataclass(frozen=True)
class Fig5Entry:
    """Accuracy of one (segmentation method, group, step) configuration."""

    method: str
    group: str
    step: float
    accuracy: float
    normalized_accuracy: float


@dataclass
class Fig5Result:
    """All sweep points plus the derived design anchors."""

    entries: "list[Fig5Entry]" = field(default_factory=list)
    baseline_accuracy: float = 0.0

    def rows(self) -> "list[list]":
        return [
            [entry.method, entry.group, entry.step, entry.accuracy,
             entry.normalized_accuracy]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(
            ["Segmentation", "Group", "Step", "Accuracy", "Normalized"],
            self.rows(),
        )

    def entries_for(self, method: str, group: str) -> "list[Fig5Entry]":
        """Sweep points of one curve, ordered by step."""
        selected = [
            entry for entry in self.entries
            if entry.method == method and entry.group == group
        ]
        return sorted(selected, key=lambda entry: entry.step)

    def largest_neutral_step(
        self, method: str, group: str, tolerance: float = ACCURACY_TOLERANCE
    ) -> float:
        """Largest swept step below the first accuracy drop.

        This is the "critical point" the paper reads off Fig. 5: the step at
        which accuracy *starts* to fall.  Steps beyond the first drop are
        ignored even if accuracy recovers there (that recovery is evaluation
        noise, not robustness).
        """
        largest = 1.0
        for entry in self.entries_for(method, group):
            if entry.normalized_accuracy >= 1.0 - tolerance:
                largest = entry.step
            else:
                break
        return float(largest)

    def derived_anchors(self, tolerance: float = ACCURACY_TOLERANCE) -> dict:
        """The design anchors for the magnitude-based segmentation.

        Returns ``{"q1": ..., "q2": ..., "q_min": ...}`` where ``q1`` is the
        largest accuracy-neutral HF step, ``q2`` the MF one, and ``q_min``
        the LF knee (all from the magnitude-based curves), clamped so that
        ``q_min <= q2 <= q1`` as the mapping requires.
        """
        q1 = self.largest_neutral_step("magnitude", "HF", tolerance)
        q2 = self.largest_neutral_step("magnitude", "MF", tolerance)
        q_min = self.largest_neutral_step("magnitude", "LF", tolerance)
        q_min = max(q_min, 1.0)
        q2 = max(q2, q_min)
        q1 = max(q1, q2)
        return {"q1": float(q1), "q2": float(q2), "q_min": float(q_min)}


def _build_state(key) -> dict:
    """Reconstruct the sweep's shared state from the config alone.

    Runs in the parent before the pool opens (fork workers then inherit
    the result for free) and in any worker whose memo is cold.  The
    classifier is retrained from the config seeds, so a cold rebuild is
    bit-identical to the parent's copy.
    """
    if isinstance(key, tuple):
        # Keys of externally supplied classifiers (seeded by run()) are
        # not reconstructible from the config; they only ever resolve
        # through a warm memo (the parent's, inherited over fork).
        raise RuntimeError(
            "Fig. 5 worker state for an externally supplied classifier "
            "cannot be rebuilt from the config; this indicates a cold "
            "worker on a non-fork platform"
        )
    config = key
    train_dataset, test_dataset = make_splits(config)
    classifier = train_classifier(train_dataset, config)
    return _finish_state(config, train_dataset, test_dataset, classifier)


def _finish_state(config, train_dataset, test_dataset, classifier) -> dict:
    statistics = analyze_dataset(
        train_dataset, interval=config.sampling_interval
    )
    segmentations = {
        "magnitude": magnitude_based_segmentation(statistics),
        "position": position_based_segmentation(),
    }
    return {
        "test_dataset": test_dataset,
        "classifier": classifier,
        "segmentations": segmentations,
        "baseline_accuracy": classifier.accuracy_on(test_dataset),
    }


_STATE = TaskState(_build_state)


def _sweep_cell(task: tuple) -> Fig5Entry:
    """One (segmentation method, group, step) grid point.

    The task ships only the config key and the cell coordinates; the
    heavy state (datasets, trained classifier, segmentations) comes from
    the process-local :data:`_STATE` memo.
    """
    key, method, group, step = task
    state = _STATE.get(key)
    segmentation = state["segmentations"][method]
    baseline_accuracy = state["baseline_accuracy"]
    table = group_quantization_table(segmentation, group, step)
    compressed = compress_dataset_with_table(
        state["test_dataset"], table, method=table.name
    )
    accuracy = state["classifier"].accuracy_on(compressed)
    return Fig5Entry(
        method=method,
        group=group,
        step=float(step),
        accuracy=accuracy,
        normalized_accuracy=(
            accuracy / baseline_accuracy if baseline_accuracy > 0 else 0.0
        ),
    )


def run(
    config: ExperimentConfig = None,
    step_sweeps: dict = None,
    classifier: TrainedClassifier = None,
    store: Optional[ArtifactStore] = None,
) -> Fig5Result:
    """Reproduce the Fig. 5 per-group sensitivity sweeps.

    With ``config.workers > 1`` the (method, group, step) grid is
    sharded over a process pool; every grid point is an independent
    task, so the entries are identical to the serial run in value and
    order.

    With ``store`` every grid cell and the baseline accuracy resume
    from the content-addressed artifact store: completed cells load
    instead of recomputing, and a fully warm store returns without
    rebuilding the datasets, retraining the classifier or recompressing
    anything.  A caller-supplied ``classifier`` is not derivable from
    the config, so the store is bypassed in that case.
    """
    config = config if config is not None else ExperimentConfig.small()
    step_sweeps = step_sweeps if step_sweeps is not None else DEFAULT_STEP_SWEEPS
    effective_store = store if classifier is None else None
    cells = [
        {"method": method, "group": group, "step": float(step)}
        for method in SEGMENTATION_METHODS
        for group, steps in step_sweeps.items()
        for step in steps
    ]
    cache = SweepCache(
        effective_store, "fig5", config,
        from_payload=lambda payload: Fig5Entry(**payload),
        to_payload=asdict,
    )
    scalars = SweepCache(effective_store, "fig5", config)
    cached = cache.lookup_many(cells)
    baseline_accuracy = scalars.lookup({"cell": "baseline_accuracy"})
    if baseline_accuracy is not CACHE_MISS and all_cached(cached):
        result = Fig5Result(baseline_accuracy=baseline_accuracy)
        result.entries.extend(cached)
        return result
    if classifier is None:
        key = config.task_key()
        state = _STATE.get(key)
    else:
        # Reuse the caller's classifier: build the rest of the state
        # around it and seed the memo (under a key distinct from the
        # config-derived state) so forked workers inherit it.
        key = (config.task_key(), id(classifier))
        train_dataset, test_dataset = make_splits(config)
        state = _finish_state(config, train_dataset, test_dataset, classifier)
        _STATE.seed(key, state)
    scalars.record({"cell": "baseline_accuracy"}, state["baseline_accuracy"])
    tasks = [
        (key, cell["method"], cell["group"], cell["step"]) for cell in cells
    ]
    result = Fig5Result(baseline_accuracy=state["baseline_accuracy"])
    try:
        result.entries.extend(
            map_tasks_resumable(
                _sweep_cell, tasks, cached,
                workers=config.workers, on_result=cache.recorder(cells),
            )
        )
    finally:
        # Release the sweep's datasets/classifier once the grid is done;
        # the memo only needs to outlive the pool it was forked into.
        _STATE.clear()
    return result
