"""Fig. 5: sensitivity of DNN accuracy to quantization per frequency group.

For each frequency group (LF / MF / HF) and each band-segmentation method
(magnitude based — DeepN-JPEG — and position based — default JPEG), the
experiment quantizes only the bands of that group at a sweep of steps
while keeping every other band at step 1, and measures the accuracy of a
classifier trained on uncompressed images.  The output also extracts the
paper's design anchors: the largest accuracy-neutral step per group
(``Q1`` for HF, ``Q2`` for MF) and the LF knee (``Qmin``), which the
Fig. 6/7/8 experiments feed into the piece-wise linear mapping.

The experiment is declared on :mod:`repro.experiments.api`: two axes
(segmentation method × linked (group, step) pairs), one cell function,
one state builder and a cached ``baseline_accuracy`` scalar — caching,
resume, sharding and ordering come from the framework.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.bands import (
    BandSegmentation,
    magnitude_based_segmentation,
    position_based_segmentation,
)
from repro.analysis.frequency import analyze_dataset
from repro.core.baselines import compress_dataset_with_table
from repro.experiments import api
from repro.experiments.common import (
    ExperimentConfig,
    TrainedClassifier,
    format_table,
    make_splits,
    train_classifier,
)
from repro.experiments.store import ArtifactStore
from repro.jpeg.quantization import QuantizationTable

#: The two band-segmentation methods the figure contrasts (the order of
#: the sweep grid and of the state's ``segmentations`` dict).
SEGMENTATION_METHODS = ("magnitude", "position")

#: Quantization steps swept per group (the paper sweeps to 40/60/80; the
#: synthetic dataset tolerates larger steps, so the sweeps extend further to
#: locate the knees).
DEFAULT_STEP_SWEEPS = {
    "LF": (1, 3, 5, 8, 12, 20, 30),
    "MF": (1, 10, 20, 40, 60, 90, 120),
    "HF": (1, 20, 40, 60, 90, 120, 160, 200),
}
#: Accuracy tolerance when extracting the largest accuracy-neutral step.
ACCURACY_TOLERANCE = 0.005
#: Table columns (shared by the result table and the CLI --json payload).
FIG5_HEADERS = ["Segmentation", "Group", "Step", "Accuracy", "Normalized"]


def group_quantization_table(
    segmentation: BandSegmentation, group: str, step: float
) -> QuantizationTable:
    """A table with ``step`` on the given group's bands and 1 elsewhere."""
    values = np.ones((8, 8), dtype=np.float64)
    values[segmentation.mask(group)] = step
    return QuantizationTable(
        values, name=f"{segmentation.method}-{group}-q{step:g}"
    )


@dataclass(frozen=True)
class Fig5Entry:
    """Accuracy of one (segmentation method, group, step) configuration."""

    method: str
    group: str
    step: float
    accuracy: float
    normalized_accuracy: float


@dataclass
class Fig5Result:
    """All sweep points plus the derived design anchors."""

    entries: "list[Fig5Entry]" = field(default_factory=list)
    baseline_accuracy: float = 0.0

    def rows(self) -> "list[list]":
        return [
            [entry.method, entry.group, entry.step, entry.accuracy,
             entry.normalized_accuracy]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(FIG5_HEADERS, self.rows())

    def entries_for(self, method: str, group: str) -> "list[Fig5Entry]":
        """Sweep points of one curve, ordered by step."""
        selected = [
            entry for entry in self.entries
            if entry.method == method and entry.group == group
        ]
        return sorted(selected, key=lambda entry: entry.step)

    def largest_neutral_step(
        self, method: str, group: str, tolerance: float = ACCURACY_TOLERANCE
    ) -> float:
        """Largest swept step below the first accuracy drop.

        This is the "critical point" the paper reads off Fig. 5: the step at
        which accuracy *starts* to fall.  Steps beyond the first drop are
        ignored even if accuracy recovers there (that recovery is evaluation
        noise, not robustness).
        """
        largest = 1.0
        for entry in self.entries_for(method, group):
            if entry.normalized_accuracy >= 1.0 - tolerance:
                largest = entry.step
            else:
                break
        return float(largest)

    def derived_anchors(self, tolerance: float = ACCURACY_TOLERANCE) -> dict:
        """The design anchors for the magnitude-based segmentation.

        Returns ``{"q1": ..., "q2": ..., "q_min": ...}`` where ``q1`` is the
        largest accuracy-neutral HF step, ``q2`` the MF one, and ``q_min``
        the LF knee (all from the magnitude-based curves), clamped so that
        ``q_min <= q2 <= q1`` as the mapping requires.
        """
        q1 = self.largest_neutral_step("magnitude", "HF", tolerance)
        q2 = self.largest_neutral_step("magnitude", "MF", tolerance)
        q_min = self.largest_neutral_step("magnitude", "LF", tolerance)
        q_min = max(q_min, 1.0)
        q2 = max(q2, q_min)
        q1 = max(q1, q2)
        return {"q1": float(q1), "q2": float(q2), "q_min": float(q_min)}


def _finish_state(config, train_dataset, test_dataset, classifier) -> dict:
    statistics = analyze_dataset(
        train_dataset, interval=config.sampling_interval
    )
    segmentations = {
        "magnitude": magnitude_based_segmentation(statistics),
        "position": position_based_segmentation(),
    }
    return {
        "test_dataset": test_dataset,
        "classifier": classifier,
        "segmentations": segmentations,
        "baseline_accuracy": classifier.accuracy_on(test_dataset),
    }


class Fig5Experiment(api.Experiment):
    """Per-band-group sensitivity sweep as a declarative experiment."""

    name = "fig5"
    title = "Per-band-group quantization sensitivity (magnitude vs position)"
    headers = FIG5_HEADERS
    defaults = {"step_sweeps": None, "classifier": None}

    def store_enabled(self, ctx: api.RunContext) -> bool:
        # A caller-supplied classifier is not derivable from the config,
        # so its cells must never be cached under the config's address.
        return ctx.params["classifier"] is None

    def axes(self, ctx: api.RunContext) -> "list[api.Axis]":
        step_sweeps = ctx.params["step_sweeps"]
        if step_sweeps is None:
            step_sweeps = DEFAULT_STEP_SWEEPS
        pairs = [
            (group, float(step))
            for group, steps in step_sweeps.items()
            for step in steps
        ]
        return [
            api.Axis("method", SEGMENTATION_METHODS),
            api.Axis(("group", "step"), pairs),
        ]

    def scalar_names(self, ctx: api.RunContext) -> "tuple[str, ...]":
        return ("baseline_accuracy",)

    def compute_scalar(self, ctx: api.RunContext, state, name: str):
        return state[name]

    def state_key(self, ctx: api.RunContext):
        classifier = ctx.params["classifier"]
        if classifier is None:
            return ctx.config.task_key()
        # Keys of externally supplied classifiers are not reconstructible
        # from the config; they only resolve through a warm memo.
        return (ctx.config.task_key(), id(classifier))

    def setup_state(self, ctx: api.RunContext) -> Optional[dict]:
        classifier = ctx.params["classifier"]
        if classifier is None:
            return None
        train_dataset, test_dataset = make_splits(ctx.config)
        return _finish_state(ctx.config, train_dataset, test_dataset, classifier)

    def build_state(self, key) -> dict:
        """Reconstruct the sweep's shared state from the config alone.

        Runs in the parent before the pool opens (fork workers then
        inherit the result for free) and in any worker whose memo is
        cold.  The classifier is retrained from the config seeds, so a
        cold rebuild is bit-identical to the parent's copy.
        """
        if isinstance(key, tuple):
            raise RuntimeError(
                "Fig. 5 worker state for an externally supplied classifier "
                "cannot be rebuilt from the config; this indicates a cold "
                "worker on a non-fork platform"
            )
        config = key
        train_dataset, test_dataset = make_splits(config)
        classifier = train_classifier(train_dataset, config)
        return _finish_state(config, train_dataset, test_dataset, classifier)

    def compute_cell(self, key, state, cell: dict, extra) -> Fig5Entry:
        """One (segmentation method, group, step) grid point."""
        segmentation = state["segmentations"][cell["method"]]
        baseline_accuracy = state["baseline_accuracy"]
        table = group_quantization_table(
            segmentation, cell["group"], cell["step"]
        )
        compressed = compress_dataset_with_table(
            state["test_dataset"], table, method=table.name
        )
        accuracy = state["classifier"].accuracy_on(compressed)
        return Fig5Entry(
            method=cell["method"],
            group=cell["group"],
            step=float(cell["step"]),
            accuracy=accuracy,
            normalized_accuracy=(
                accuracy / baseline_accuracy if baseline_accuracy > 0 else 0.0
            ),
        )

    def cell_to_payload(self, value: Fig5Entry) -> dict:
        return asdict(value)

    def cell_from_payload(self, payload: dict) -> Fig5Entry:
        return Fig5Entry(**payload)

    def assemble(
        self, ctx: api.RunContext, results: list, scalars: dict
    ) -> Fig5Result:
        result = Fig5Result(baseline_accuracy=scalars["baseline_accuracy"])
        result.entries.extend(results)
        return result

    def report(self, result: Fig5Result) -> str:
        return (
            result.format_table()
            + f"\n\nDerived design anchors: {result.derived_anchors()}"
        )


api.register_experiment(Fig5Experiment.name, Fig5Experiment)

#: The shared worker-state memo (kept under the historical name for the
#: tests that force cold rebuilds between runs).
_STATE = api._STATE


def run(
    config: ExperimentConfig = None,
    step_sweeps: dict = None,
    classifier: TrainedClassifier = None,
    store: Optional[ArtifactStore] = None,
) -> Fig5Result:
    """Reproduce the Fig. 5 per-group sensitivity sweeps.

    A thin shim over the declarative :class:`Fig5Experiment`: with
    ``config.workers > 1`` the (method, group, step) grid is sharded
    over a process pool, and with ``store`` every grid cell and the
    baseline accuracy resume from the content-addressed artifact store
    (bypassed when a caller-supplied ``classifier`` makes the state
    non-derivable) — all supplied by
    :func:`repro.experiments.api.run_experiment`.
    """
    return api.run_experiment(
        Fig5Experiment(), config, store=store,
        step_sweeps=step_sweeps, classifier=classifier,
    )
