"""Fig. 6: trading compression rate against accuracy through the LF slope k3.

For each candidate ``k3`` the DeepN-JPEG table is re-designed, the train
and test sets are compressed with it, a classifier is trained on the
compressed training set and evaluated on the compressed test set (the
end-to-end deployment scenario), and the compression rate is reported
relative to the QF=100 "Original" dataset.

Declared on :mod:`repro.experiments.api` as one ``k3`` axis whose cells
are addressed by the base design they perturb, plus a cached
``baseline_accuracy`` scalar.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.baselines import JpegCompressor
from repro.core.config import DeepNJpegConfig
from repro.core.pipeline import DeepNJpeg
from repro.experiments import api
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    relative_compression_rate,
    train_classifier,
)
from repro.experiments.design_flow import derive_design_config
from repro.experiments.store import ArtifactStore

#: The k3 values swept in the paper's Fig. 6.
FIG6_K3_VALUES = (1.0, 2.0, 3.0, 4.0, 5.0)
#: Table columns (shared by the result table and the CLI --json payload).
FIG6_HEADERS = ["LF slope", "CR (vs QF=100)", "Top-1 accuracy", "Mean Q step"]


@dataclass(frozen=True)
class Fig6Entry:
    """Compression rate and accuracy for one k3 value."""

    k3: float
    compression_ratio: float
    accuracy: float
    mean_quantization_step: float


@dataclass
class Fig6Result:
    """All k3 sweep points."""

    entries: "list[Fig6Entry]" = field(default_factory=list)
    baseline_accuracy: float = 0.0

    def rows(self) -> "list[list]":
        return [
            [f"k3={entry.k3:g}", entry.compression_ratio, entry.accuracy,
             entry.mean_quantization_step]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(FIG6_HEADERS, self.rows())

    def best_k3(self, tolerance: float = 0.01) -> float:
        """The k3 giving the best CR while staying within ``tolerance`` of
        the baseline accuracy (the paper's selection rule)."""
        acceptable = [
            entry for entry in self.entries
            if entry.accuracy >= self.baseline_accuracy - tolerance
        ]
        candidates = acceptable if acceptable else self.entries
        return max(candidates, key=lambda entry: entry.compression_ratio).k3


class Fig6Experiment(api.Experiment):
    """The k3 trade-off sweep as a declarative experiment."""

    name = "fig6"
    title = "Compression-rate / accuracy trade-off over the LF slope k3"
    headers = FIG6_HEADERS
    defaults = {"k3_values": FIG6_K3_VALUES, "anchors": None}

    def prepare(self, ctx: api.RunContext) -> None:
        # The base design every cell perturbs; resumes its embedded
        # Fig. 5 sweeps from the store when anchors are not supplied.
        ctx.derived["base_design"] = derive_design_config(
            ctx.config, anchors=ctx.params["anchors"], store=ctx.store
        )

    def axes(self, ctx: api.RunContext) -> "list[api.Axis]":
        return [
            api.Axis(
                "k3", tuple(float(k3) for k3 in ctx.params["k3_values"])
            )
        ]

    def cell_identity(self, ctx: api.RunContext, point: dict) -> dict:
        return {
            "k3": point["k3"],
            "design": ctx.derived["base_design"].to_json(),
        }

    def scalar_names(self, ctx: api.RunContext) -> "tuple[str, ...]":
        return ("baseline_accuracy",)

    def compute_scalar(self, ctx: api.RunContext, state, name: str) -> float:
        # Baseline: classifier trained and tested on the QF=100 dataset.
        original_train = JpegCompressor(100).compress_dataset(
            state["train_dataset"]
        )
        baseline = train_classifier(original_train, ctx.config)
        return baseline.accuracy_on(state["original_test"])

    def build_state(self, config: ExperimentConfig) -> dict:
        """Shared state of the k3 sweep, reconstructible from the config.

        The QF=100 reference compression of the test set lives here so a
        worker can compute its cell's relative compression rate locally —
        the same deterministic reference every other cell derives.
        """
        train_dataset, test_dataset = make_splits(config)
        return {
            "train_dataset": train_dataset,
            "test_dataset": test_dataset,
            "original_test": JpegCompressor(100).compress_dataset(test_dataset),
        }

    def task_extra(self, ctx: api.RunContext, index: int, cell: dict):
        # Ship the base design object itself — a few floats, never arrays.
        return ctx.derived["base_design"]

    def compute_cell(self, key, state, cell: dict, extra) -> Fig6Entry:
        """One k3 grid point: design, compress, train, evaluate."""
        base_design, k3 = extra, cell["k3"]
        design_config = DeepNJpegConfig(
            lf_band_count=base_design.lf_band_count,
            mf_band_count=base_design.mf_band_count,
            q_max_step=base_design.q_max_step,
            q1=base_design.q1,
            q2=base_design.q2,
            q_min=base_design.q_min,
            k3=float(k3),
            lf_intercept=base_design.lf_intercept,
            sampling_interval=base_design.sampling_interval,
        )
        deepn = DeepNJpeg(design_config).fit(state["train_dataset"])
        compressed_train = deepn.compress_dataset(state["train_dataset"])
        compressed_test = deepn.compress_dataset(state["test_dataset"])
        classifier = train_classifier(compressed_train, key)
        return Fig6Entry(
            k3=float(k3),
            compression_ratio=relative_compression_rate(
                compressed_test, state["original_test"]
            ),
            accuracy=classifier.accuracy_on(compressed_test),
            mean_quantization_step=deepn.table.mean_step(),
        )

    def cell_to_payload(self, value: Fig6Entry) -> dict:
        return asdict(value)

    def cell_from_payload(self, payload: dict) -> Fig6Entry:
        return Fig6Entry(**payload)

    def assemble(
        self, ctx: api.RunContext, results: list, scalars: dict
    ) -> Fig6Result:
        result = Fig6Result(baseline_accuracy=scalars["baseline_accuracy"])
        result.entries.extend(results)
        return result

    def report(self, result: Fig6Result) -> str:
        return result.format_table() + f"\n\nSelected k3 = {result.best_k3():g}"


api.register_experiment(Fig6Experiment.name, Fig6Experiment)

#: The shared worker-state memo (historical name, see the parallel tests).
_STATE = api._STATE


def run(
    config: ExperimentConfig = None,
    k3_values: "tuple[float, ...]" = FIG6_K3_VALUES,
    anchors: dict = None,
    store: Optional[ArtifactStore] = None,
) -> Fig6Result:
    """Reproduce the Fig. 6 k3 sweep.

    A thin shim over the declarative :class:`Fig6Experiment`: sharding
    (``config.workers``), per-cell store resume (cells addressed by the
    base design they perturb) and the cached baseline accuracy are
    supplied by :func:`repro.experiments.api.run_experiment`.
    """
    return api.run_experiment(
        Fig6Experiment(), config, store=store,
        k3_values=k3_values, anchors=anchors,
    )
