"""Fig. 6: trading compression rate against accuracy through the LF slope k3.

For each candidate ``k3`` the DeepN-JPEG table is re-designed, the train
and test sets are compressed with it, a classifier is trained on the
compressed training set and evaluated on the compressed test set (the
end-to-end deployment scenario), and the compression rate is reported
relative to the QF=100 "Original" dataset.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.baselines import JpegCompressor
from repro.core.config import DeepNJpegConfig
from repro.core.pipeline import DeepNJpeg
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    relative_compression_rate,
    train_classifier,
)
from repro.experiments.design_flow import derive_design_config
from repro.experiments.store import ArtifactStore, SweepCache, all_cached
from repro.runtime.executor import CACHE_MISS, TaskState, map_tasks_resumable

#: The k3 values swept in the paper's Fig. 6.
FIG6_K3_VALUES = (1.0, 2.0, 3.0, 4.0, 5.0)


@dataclass(frozen=True)
class Fig6Entry:
    """Compression rate and accuracy for one k3 value."""

    k3: float
    compression_ratio: float
    accuracy: float
    mean_quantization_step: float


@dataclass
class Fig6Result:
    """All k3 sweep points."""

    entries: "list[Fig6Entry]" = field(default_factory=list)
    baseline_accuracy: float = 0.0

    def rows(self) -> "list[list]":
        return [
            [f"k3={entry.k3:g}", entry.compression_ratio, entry.accuracy,
             entry.mean_quantization_step]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(
            ["LF slope", "CR (vs QF=100)", "Top-1 accuracy", "Mean Q step"],
            self.rows(),
        )

    def best_k3(self, tolerance: float = 0.01) -> float:
        """The k3 giving the best CR while staying within ``tolerance`` of
        the baseline accuracy (the paper's selection rule)."""
        acceptable = [
            entry for entry in self.entries
            if entry.accuracy >= self.baseline_accuracy - tolerance
        ]
        candidates = acceptable if acceptable else self.entries
        return max(candidates, key=lambda entry: entry.compression_ratio).k3


def _build_state(config: ExperimentConfig) -> dict:
    """Shared state of the k3 sweep, reconstructible from the config.

    The QF=100 reference compression of the test set lives here so a
    worker can compute its cell's relative compression rate locally —
    the same deterministic reference every other cell derives.
    """
    train_dataset, test_dataset = make_splits(config)
    return {
        "train_dataset": train_dataset,
        "test_dataset": test_dataset,
        "original_test": JpegCompressor(100).compress_dataset(test_dataset),
    }


_STATE = TaskState(_build_state)


def _k3_cell(task: tuple) -> Fig6Entry:
    """One k3 grid point: design, compress, train, evaluate.

    The task ships the config key, the base design parameters and its
    k3 value — no arrays; datasets are reconstructed (or fork-inherited)
    through the :data:`_STATE` memo, and the classifier is trained in
    the worker from the config seeds.
    """
    key, base_design, k3 = task
    state = _STATE.get(key)
    design_config = DeepNJpegConfig(
        lf_band_count=base_design.lf_band_count,
        mf_band_count=base_design.mf_band_count,
        q_max_step=base_design.q_max_step,
        q1=base_design.q1,
        q2=base_design.q2,
        q_min=base_design.q_min,
        k3=float(k3),
        lf_intercept=base_design.lf_intercept,
        sampling_interval=base_design.sampling_interval,
    )
    deepn = DeepNJpeg(design_config).fit(state["train_dataset"])
    compressed_train = deepn.compress_dataset(state["train_dataset"])
    compressed_test = deepn.compress_dataset(state["test_dataset"])
    classifier = train_classifier(compressed_train, key)
    return Fig6Entry(
        k3=float(k3),
        compression_ratio=relative_compression_rate(
            compressed_test, state["original_test"]
        ),
        accuracy=classifier.accuracy_on(compressed_test),
        mean_quantization_step=deepn.table.mean_step(),
    )


def run(
    config: ExperimentConfig = None,
    k3_values: "tuple[float, ...]" = FIG6_K3_VALUES,
    anchors: dict = None,
    store: Optional[ArtifactStore] = None,
) -> Fig6Result:
    """Reproduce the Fig. 6 k3 sweep.

    With ``config.workers > 1`` each k3 value (table design, dataset
    compression, classifier training, evaluation) is an independent
    pool task; results are identical to the serial run.

    With ``store`` each k3 cell — addressed by the base design it
    perturbs — and the baseline accuracy resume from the
    content-addressed artifact store; a fully warm store returns
    without compressing or training anything.
    """
    config = config if config is not None else ExperimentConfig.small()
    key = config.task_key()
    base_design = derive_design_config(config, anchors=anchors, store=store)
    cells = [
        {"k3": float(k3), "design": base_design.to_json()}
        for k3 in k3_values
    ]
    cache = SweepCache(
        store, "fig6", config,
        from_payload=lambda payload: Fig6Entry(**payload),
        to_payload=asdict,
    )
    scalars = SweepCache(store, "fig6", config)
    cached = cache.lookup_many(cells)
    baseline_accuracy = scalars.lookup({"cell": "baseline_accuracy"})
    if baseline_accuracy is not CACHE_MISS and all_cached(cached):
        result = Fig6Result(baseline_accuracy=baseline_accuracy)
        result.entries.extend(cached)
        return result
    state = _STATE.get(key)

    if baseline_accuracy is CACHE_MISS:
        # Baseline: classifier trained and tested on the QF=100 dataset.
        original_train = JpegCompressor(100).compress_dataset(
            state["train_dataset"]
        )
        baseline = train_classifier(original_train, config)
        baseline_accuracy = baseline.accuracy_on(state["original_test"])
        scalars.record({"cell": "baseline_accuracy"}, baseline_accuracy)

    tasks = [(key, base_design, cell["k3"]) for cell in cells]
    result = Fig6Result(baseline_accuracy=baseline_accuracy)
    try:
        result.entries.extend(
            map_tasks_resumable(
                _k3_cell, tasks, cached,
                workers=config.workers, on_result=cache.recorder(cells),
            )
        )
    finally:
        # Release the datasets and reference compression after the sweep.
        _STATE.clear()
    return result
