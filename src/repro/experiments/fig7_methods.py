"""Fig. 7: compression rate and accuracy of DeepN-JPEG vs the baselines.

The compared candidates are those of the paper: the "Original" dataset
(JPEG at QF=100, the CR=1 reference), "RM-HF" (remove the top-N highest
frequency components, N ∈ {3, 6, 9}), "SAME-Q" (one quantization step for
every band, step ∈ {4, 8, 12}) and DeepN-JPEG.  For every candidate the
train and test sets are compressed, a classifier is trained on the
compressed training set and evaluated on the compressed test set, and the
compression rate is reported relative to "Original".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.baselines import (
    DatasetCompressor,
    JpegCompressor,
    RemoveHighFrequencyCompressor,
    SameQCompressor,
)
from repro.core.pipeline import DeepNJpeg, DeepNJpegCompressor
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    train_classifier,
)
from repro.experiments.design_flow import derive_design_config, fitted_pipeline
from repro.experiments.store import ArtifactStore, SweepCache, all_cached
from repro.runtime.executor import TaskState, map_tasks_resumable

#: RM-HF and SAME-Q parameter sets evaluated in the paper's Fig. 7.
FIG7_RMHF_COMPONENTS = (3, 6, 9)
FIG7_SAMEQ_STEPS = (4, 8, 12)


@dataclass(frozen=True)
class Fig7Entry:
    """Compression rate and accuracy of one candidate."""

    method: str
    compression_ratio: float
    accuracy: float
    bytes_per_image: float
    mean_psnr: float


@dataclass
class Fig7Result:
    """All candidates of the Fig. 7 comparison."""

    entries: "list[Fig7Entry]" = field(default_factory=list)

    def rows(self) -> "list[list]":
        return [
            [entry.method, entry.compression_ratio, entry.accuracy,
             round(entry.bytes_per_image, 1), entry.mean_psnr]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(
            ["Method", "CR (vs Original)", "Top-1 accuracy",
             "Bytes/image", "PSNR (dB)"],
            self.rows(),
        )

    def entry(self, method: str) -> Fig7Entry:
        """Look up one candidate by name."""
        for candidate in self.entries:
            if candidate.method == method:
                return candidate
        raise KeyError(f"no entry for method {method!r}")

    def deepn_entry(self) -> Fig7Entry:
        """The DeepN-JPEG row."""
        return self.entry("DeepN-JPEG")

    def original_entry(self) -> Fig7Entry:
        """The Original (QF=100) row."""
        return self.entries[0]

    def bytes_per_image_by_method(self) -> dict:
        """Average compressed bytes per image, keyed by method (for Fig. 9)."""
        return {
            entry.method: entry.bytes_per_image for entry in self.entries
        }


def candidate_compressors(
    deepn: DeepNJpeg,
    rmhf_components: "tuple[int, ...]" = FIG7_RMHF_COMPONENTS,
    sameq_steps: "tuple[int, ...]" = FIG7_SAMEQ_STEPS,
) -> "list[DatasetCompressor]":
    """The ordered list of candidates compared in Fig. 7."""
    compressors: "list[DatasetCompressor]" = [JpegCompressor(100)]
    compressors.extend(
        RemoveHighFrequencyCompressor(count) for count in rmhf_components
    )
    compressors.extend(SameQCompressor(step) for step in sameq_steps)
    compressors.append(DeepNJpegCompressor(deepn))
    return compressors


def _build_state(config: ExperimentConfig) -> dict:
    """Datasets of the comparison, reconstructible from the config."""
    train_dataset, test_dataset = make_splits(config)
    return {"train_dataset": train_dataset, "test_dataset": test_dataset}


_STATE = TaskState(_build_state)


def _candidate_cell(task: tuple) -> tuple:
    """One candidate: compress train/test, train, evaluate.

    Ships the config key plus the (small) compressor object — a fitted
    DeepN-JPEG pipeline pickles to a few KB of table state, never image
    arrays.  Returns the entry fields plus the candidate's absolute
    compressed size; the caller derives the relative compression rate
    against the first candidate once all sizes are in.
    """
    key, compressor = task
    state = _STATE.get(key)
    compressed_train = compressor.compress_dataset(state["train_dataset"])
    compressed_test = compressor.compress_dataset(state["test_dataset"])
    classifier = train_classifier(compressed_train, key)
    method_name = (
        "Original" if compressor.name == "JPEG (QF=100)" else compressor.name
    )
    return (
        method_name,
        compressed_test.total_bytes,
        classifier.accuracy_on(compressed_test),
        compressed_test.bytes_per_image,
        compressed_test.mean_psnr,
    )


def run(
    config: ExperimentConfig = None,
    deepn_config=None,
    anchors: dict = None,
    rmhf_components: "tuple[int, ...]" = FIG7_RMHF_COMPONENTS,
    sameq_steps: "tuple[int, ...]" = FIG7_SAMEQ_STEPS,
    store: Optional[ArtifactStore] = None,
) -> Fig7Result:
    """Reproduce the Fig. 7 comparison.

    With ``config.workers > 1`` every candidate compressor is an
    independent pool task.  The compression rate is relative to the
    first candidate (Original), so the ratios are assembled after the
    map from each task's absolute byte count — the identical numbers
    the serial loop produced in place.

    With ``store`` every candidate cell — addressed by the candidate's
    codec ``spec()``, which for DeepN-JPEG embeds the fitted tables —
    resumes from the content-addressed artifact store, and the fitted
    design itself is cached (:func:`fitted_pipeline`); a fully warm
    store returns without generating datasets, fitting, compressing or
    training anything.
    """
    config = config if config is not None else ExperimentConfig.small()
    key = config.task_key()
    if deepn_config is None:
        deepn_config = derive_design_config(config, anchors=anchors, store=store)
    deepn = fitted_pipeline(
        config, deepn_config,
        lambda: _STATE.get(key)["train_dataset"], store=store,
    )

    compressors = candidate_compressors(deepn, rmhf_components, sameq_steps)
    cells = [{"codec": compressor.spec()} for compressor in compressors]
    cache = SweepCache(
        store, "fig7", config, from_payload=tuple, to_payload=list
    )
    cached = cache.lookup_many(cells)
    try:
        if all_cached(cached):
            rows = cached
        else:
            _STATE.get(key)
            tasks = [(key, compressor) for compressor in compressors]
            rows = map_tasks_resumable(
                _candidate_cell, tasks, cached,
                workers=config.workers, on_result=cache.recorder(cells),
            )
    finally:
        # Release the datasets after the sweep (the memo may also have
        # been populated by a cold fit above).
        _STATE.clear()
    result = Fig7Result()
    reference_bytes = rows[0][1] if rows else 0
    for method_name, total_bytes, accuracy, bytes_per_image, mean_psnr in rows:
        result.entries.append(
            Fig7Entry(
                method=method_name,
                compression_ratio=reference_bytes / total_bytes,
                accuracy=accuracy,
                bytes_per_image=bytes_per_image,
                mean_psnr=mean_psnr,
            )
        )
    return result
