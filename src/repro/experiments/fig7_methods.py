"""Fig. 7: compression rate and accuracy of DeepN-JPEG vs the baselines.

The compared candidates are those of the paper: the "Original" dataset
(JPEG at QF=100, the CR=1 reference), "RM-HF" (remove the top-N highest
frequency components, N ∈ {3, 6, 9}), "SAME-Q" (one quantization step for
every band, step ∈ {4, 8, 12}) and DeepN-JPEG.  For every candidate the
train and test sets are compressed, a classifier is trained on the
compressed training set and evaluated on the compressed test set, and the
compression rate is reported relative to "Original".

Declared on :mod:`repro.experiments.api` as one ``codec`` axis over the
candidates' ``spec()`` identities; each cell returns absolute byte
counts and the assemble step derives the relative compression rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.baselines import (
    DatasetCompressor,
    JpegCompressor,
    RemoveHighFrequencyCompressor,
    SameQCompressor,
)
from repro.core.pipeline import DeepNJpeg, DeepNJpegCompressor
from repro.experiments import api
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    train_classifier,
)
from repro.experiments.design_flow import derive_design_config, fitted_pipeline
from repro.experiments.store import ArtifactStore

#: RM-HF and SAME-Q parameter sets evaluated in the paper's Fig. 7.
FIG7_RMHF_COMPONENTS = (3, 6, 9)
FIG7_SAMEQ_STEPS = (4, 8, 12)
#: Table columns (shared by the result table and the CLI --json payload).
FIG7_HEADERS = [
    "Method", "CR (vs Original)", "Top-1 accuracy",
    "Bytes/image", "PSNR (dB)",
]


@dataclass(frozen=True)
class Fig7Entry:
    """Compression rate and accuracy of one candidate."""

    method: str
    compression_ratio: float
    accuracy: float
    bytes_per_image: float
    mean_psnr: float


@dataclass
class Fig7Result:
    """All candidates of the Fig. 7 comparison."""

    entries: "list[Fig7Entry]" = field(default_factory=list)

    def rows(self) -> "list[list]":
        return [
            [entry.method, entry.compression_ratio, entry.accuracy,
             round(entry.bytes_per_image, 1), entry.mean_psnr]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(FIG7_HEADERS, self.rows())

    def entry(self, method: str) -> Fig7Entry:
        """Look up one candidate by name."""
        for candidate in self.entries:
            if candidate.method == method:
                return candidate
        raise KeyError(f"no entry for method {method!r}")

    def deepn_entry(self) -> Fig7Entry:
        """The DeepN-JPEG row."""
        return self.entry("DeepN-JPEG")

    def original_entry(self) -> Fig7Entry:
        """The Original (QF=100) row."""
        return self.entries[0]

    def bytes_per_image_by_method(self) -> dict:
        """Average compressed bytes per image, keyed by method (for Fig. 9)."""
        return {
            entry.method: entry.bytes_per_image for entry in self.entries
        }


def candidate_compressors(
    deepn: DeepNJpeg,
    rmhf_components: "tuple[int, ...]" = FIG7_RMHF_COMPONENTS,
    sameq_steps: "tuple[int, ...]" = FIG7_SAMEQ_STEPS,
) -> "list[DatasetCompressor]":
    """The ordered list of candidates compared in Fig. 7."""
    compressors: "list[DatasetCompressor]" = [JpegCompressor(100)]
    compressors.extend(
        RemoveHighFrequencyCompressor(count) for count in rmhf_components
    )
    compressors.extend(SameQCompressor(step) for step in sameq_steps)
    compressors.append(DeepNJpegCompressor(deepn))
    return compressors


class Fig7Experiment(api.Experiment):
    """The candidate comparison as a declarative experiment."""

    name = "fig7"
    title = "Compression rate and accuracy of all candidate compressors"
    headers = FIG7_HEADERS
    defaults = {
        "deepn_config": None,
        "anchors": None,
        "rmhf_components": FIG7_RMHF_COMPONENTS,
        "sameq_steps": FIG7_SAMEQ_STEPS,
    }

    def prepare(self, ctx: api.RunContext) -> None:
        deepn_config = ctx.params["deepn_config"]
        if deepn_config is None:
            deepn_config = derive_design_config(
                ctx.config, anchors=ctx.params["anchors"], store=ctx.store
            )
        key = self.state_key(ctx)
        # The fitted design is itself a store artifact; the dataset
        # provider is a closure over the shared state memo so a warm fit
        # never materialises the datasets.
        deepn = fitted_pipeline(
            ctx.config, deepn_config,
            lambda: api.shared_state(self, key)["train_dataset"],
            store=ctx.store,
        )
        ctx.derived["compressors"] = candidate_compressors(
            deepn,
            tuple(ctx.params["rmhf_components"]),
            tuple(ctx.params["sameq_steps"]),
        )

    def axes(self, ctx: api.RunContext) -> "list[api.Axis]":
        return [
            api.Axis(
                "codec",
                [compressor.spec() for compressor in ctx.derived["compressors"]],
            )
        ]

    def build_state(self, config: ExperimentConfig) -> dict:
        """Datasets of the comparison, reconstructible from the config."""
        train_dataset, test_dataset = make_splits(config)
        return {"train_dataset": train_dataset, "test_dataset": test_dataset}

    def task_extra(self, ctx: api.RunContext, index: int, cell: dict):
        # Ship the candidate compressor itself — a fitted DeepN-JPEG
        # pipeline pickles to a few KB of table state, never arrays.
        return ctx.derived["compressors"][index]

    def compute_cell(self, key, state, cell: dict, extra) -> tuple:
        """One candidate: compress train/test, train, evaluate.

        Returns the entry fields plus the candidate's absolute
        compressed size; :meth:`assemble` derives the relative
        compression rate against the first candidate once all sizes are
        in.
        """
        compressor = extra
        compressed_train = compressor.compress_dataset(state["train_dataset"])
        compressed_test = compressor.compress_dataset(state["test_dataset"])
        classifier = train_classifier(compressed_train, key)
        method_name = (
            "Original" if compressor.name == "JPEG (QF=100)" else compressor.name
        )
        return (
            method_name,
            compressed_test.total_bytes,
            classifier.accuracy_on(compressed_test),
            compressed_test.bytes_per_image,
            compressed_test.mean_psnr,
        )

    def cell_to_payload(self, value: tuple) -> list:
        return list(value)

    def cell_from_payload(self, payload: list) -> tuple:
        return tuple(payload)

    def assemble(
        self, ctx: api.RunContext, results: list, scalars: dict
    ) -> Fig7Result:
        result = Fig7Result()
        reference_bytes = results[0][1] if results else 0
        for method_name, total_bytes, accuracy, bytes_per_image, mean_psnr in (
            results
        ):
            result.entries.append(
                Fig7Entry(
                    method=method_name,
                    compression_ratio=reference_bytes / total_bytes,
                    accuracy=accuracy,
                    bytes_per_image=bytes_per_image,
                    mean_psnr=mean_psnr,
                )
            )
        return result


api.register_experiment(Fig7Experiment.name, Fig7Experiment)

#: The shared worker-state memo (historical name, see the parallel tests).
_STATE = api._STATE


def run(
    config: ExperimentConfig = None,
    deepn_config=None,
    anchors: dict = None,
    rmhf_components: "tuple[int, ...]" = FIG7_RMHF_COMPONENTS,
    sameq_steps: "tuple[int, ...]" = FIG7_SAMEQ_STEPS,
    store: Optional[ArtifactStore] = None,
) -> Fig7Result:
    """Reproduce the Fig. 7 comparison.

    A thin shim over the declarative :class:`Fig7Experiment`: every
    candidate cell — addressed by its codec ``spec()``, which for
    DeepN-JPEG embeds the fitted tables — resumes from the store, the
    fitted design itself is cached (:func:`fitted_pipeline`), and the
    candidate grid shards over ``config.workers`` processes.
    """
    return api.run_experiment(
        Fig7Experiment(), config, store=store,
        deepn_config=deepn_config, anchors=anchors,
        rmhf_components=rmhf_components, sameq_steps=sameq_steps,
    )
