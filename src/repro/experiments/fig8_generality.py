"""Fig. 8: generality of DeepN-JPEG across DNN architectures.

Every architecture family of the paper (GoogLeNet, VGG, ResNet-34,
ResNet-50 — plus AlexNet for completeness) is trained and tested on the
dataset compressed by each candidate: Original (QF=100), DeepN-JPEG, and
quality-factor-scaled JPEG at QF=80 and QF=50.  The paper's claim is that
DeepN-JPEG maintains the original accuracy for every architecture while
the aggressive QF-scaled JPEG does not, at a comparable compression rate.

Declared on :mod:`repro.experiments.api` as a ``model`` × ``method``
grid whose shared state (the four candidate compressions) is seeded by
the parent process — it depends on the fitted design, so cold workers
never rebuild it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.baselines import JpegCompressor
from repro.experiments import api
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    relative_compression_rate,
    train_classifier,
)
from repro.experiments.design_flow import derive_design_config, fitted_pipeline
from repro.experiments.store import ArtifactStore

#: Models evaluated in the paper's Fig. 8.
FIG8_MODELS = ("GoogLeNet", "VGG-16", "ResNet-34", "ResNet-50")
#: Compression candidates evaluated per model.
FIG8_METHODS = ("Original", "DeepN-JPEG", "JPEG (QF=80)", "JPEG (QF=50)")
#: Table columns (shared by the result table and the CLI --json payload).
FIG8_HEADERS = ["Model", "Method", "Top-1 accuracy", "CR (vs Original)"]


@dataclass(frozen=True)
class Fig8Entry:
    """Accuracy of one (model, compression method) pair."""

    model: str
    method: str
    accuracy: float
    compression_ratio: float


@dataclass
class Fig8Result:
    """All (model, method) accuracy measurements."""

    entries: "list[Fig8Entry]" = field(default_factory=list)

    def rows(self) -> "list[list]":
        return [
            [entry.model, entry.method, entry.accuracy, entry.compression_ratio]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(FIG8_HEADERS, self.rows())

    def accuracy(self, model: str, method: str) -> float:
        """Accuracy of one (model, method) pair."""
        for entry in self.entries:
            if entry.model == model and entry.method == method:
                return entry.accuracy
        raise KeyError(f"no entry for ({model!r}, {method!r})")

    def accuracy_drop(self, model: str, method: str) -> float:
        """Accuracy lost by ``method`` relative to Original for ``model``."""
        return self.accuracy(model, "Original") - self.accuracy(model, method)

    def models(self) -> "list[str]":
        """The evaluated model names, in order."""
        seen = []
        for entry in self.entries:
            if entry.model not in seen:
                seen.append(entry.model)
        return seen


class Fig8Experiment(api.Experiment):
    """The cross-architecture generality grid as a declarative experiment."""

    name = "fig8"
    title = "Generality across DNN architectures (model × method grid)"
    headers = FIG8_HEADERS
    defaults = {
        "model_names": FIG8_MODELS,
        "deepn_config": None,
        "anchors": None,
        "epochs": None,
    }

    def prepare(self, ctx: api.RunContext) -> None:
        splits: "list" = []

        def _train_dataset():
            if not splits:
                splits.extend(make_splits(ctx.config))
            return splits[0]

        deepn_config = ctx.params["deepn_config"]
        if deepn_config is None:
            deepn_config = derive_design_config(
                ctx.config, anchors=ctx.params["anchors"], store=ctx.store
            )
        deepn = fitted_pipeline(
            ctx.config, deepn_config, _train_dataset, store=ctx.store
        )
        candidates = {
            "Original": JpegCompressor(100),
            "DeepN-JPEG": deepn,
            "JPEG (QF=80)": JpegCompressor(80),
            "JPEG (QF=50)": JpegCompressor(50),
        }
        ctx.derived["deepn"] = deepn
        ctx.derived["candidates"] = candidates
        ctx.derived["splits"] = splits

    def axes(self, ctx: api.RunContext) -> "list[api.Axis]":
        candidates = ctx.derived["candidates"]
        methods = [
            method for method in FIG8_METHODS if method in candidates
        ]
        return [
            api.Axis("model", tuple(ctx.params["model_names"])),
            api.Axis("method", tuple(methods)),
        ]

    def cell_identity(self, ctx: api.RunContext, point: dict) -> dict:
        return {
            "model": point["model"],
            "method": point["method"],
            "epochs": ctx.params["epochs"],
            "codec": ctx.derived["candidates"][point["method"]].spec(),
        }

    def state_key(self, ctx: api.RunContext):
        return (ctx.config.task_key(), id(ctx.derived["deepn"]))

    def setup_state(self, ctx: api.RunContext) -> dict:
        """Compress the splits with every candidate and seed the memo.

        The compressed datasets depend on the (possibly caller-supplied)
        DeepN-JPEG design, so a cold worker cannot reconstruct them from
        the config alone — and never needs to: parallelism only runs
        over fork, which inherits the parent's warm memo.
        """
        splits = ctx.derived["splits"]
        if not splits:
            splits.extend(make_splits(ctx.config))
        train_dataset, test_dataset = splits
        compressed = {}
        for method, compressor in ctx.derived["candidates"].items():
            compressed[method] = (
                compressor.compress_dataset(train_dataset),
                compressor.compress_dataset(test_dataset),
            )
        return {"config": ctx.config.task_key(), "compressed": compressed}

    def build_state(self, key) -> dict:
        raise RuntimeError(
            "Fig. 8 worker state must be inherited from the parent process; "
            "a cold rebuild indicates a non-fork platform"
        )

    def compute_cell(self, key, state, cell: dict, extra) -> Fig8Entry:
        """One (model, method) grid point: train and evaluate one classifier."""
        compressed_train, compressed_test = state["compressed"][cell["method"]]
        classifier = train_classifier(
            compressed_train, state["config"], model_name=cell["model"],
            epochs=cell["epochs"],
        )
        return Fig8Entry(
            model=cell["model"],
            method=cell["method"],
            accuracy=classifier.accuracy_on(compressed_test),
            compression_ratio=relative_compression_rate(
                compressed_test, state["compressed"]["Original"][1]
            ),
        )

    def cell_to_payload(self, value: Fig8Entry) -> dict:
        return asdict(value)

    def cell_from_payload(self, payload: dict) -> Fig8Entry:
        return Fig8Entry(**payload)

    def assemble(
        self, ctx: api.RunContext, results: list, scalars: dict
    ) -> Fig8Result:
        result = Fig8Result()
        result.entries.extend(results)
        return result


api.register_experiment(Fig8Experiment.name, Fig8Experiment)

#: The shared worker-state memo (historical name, see the parallel tests).
_STATE = api._STATE


def run(
    config: ExperimentConfig = None,
    model_names: "tuple[str, ...]" = FIG8_MODELS,
    deepn_config=None,
    anchors: dict = None,
    epochs: int = None,
    store: Optional[ArtifactStore] = None,
) -> Fig8Result:
    """Reproduce the Fig. 8 generality comparison.

    A thin shim over the declarative :class:`Fig8Experiment`: every
    (model, method) cell — the dominant per-cell cost, one classifier
    training run — shards over ``config.workers`` and resumes from the
    store (addressed by the candidate's codec ``spec()``); the four
    candidate compressions are computed once up front and fork-inherited.
    """
    return api.run_experiment(
        Fig8Experiment(), config, store=store,
        model_names=model_names, deepn_config=deepn_config,
        anchors=anchors, epochs=epochs,
    )
