"""Fig. 8: generality of DeepN-JPEG across DNN architectures.

Every architecture family of the paper (GoogLeNet, VGG, ResNet-34,
ResNet-50 — plus AlexNet for completeness) is trained and tested on the
dataset compressed by each candidate: Original (QF=100), DeepN-JPEG, and
quality-factor-scaled JPEG at QF=80 and QF=50.  The paper's claim is that
DeepN-JPEG maintains the original accuracy for every architecture while
the aggressive QF-scaled JPEG does not, at a comparable compression rate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.baselines import JpegCompressor
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    relative_compression_rate,
    train_classifier,
)
from repro.experiments.design_flow import derive_design_config, fitted_pipeline
from repro.experiments.store import ArtifactStore, SweepCache, all_cached
from repro.runtime.executor import TaskState, map_tasks_resumable

#: Models evaluated in the paper's Fig. 8.
FIG8_MODELS = ("GoogLeNet", "VGG-16", "ResNet-34", "ResNet-50")
#: Compression candidates evaluated per model.
FIG8_METHODS = ("Original", "DeepN-JPEG", "JPEG (QF=80)", "JPEG (QF=50)")


@dataclass(frozen=True)
class Fig8Entry:
    """Accuracy of one (model, compression method) pair."""

    model: str
    method: str
    accuracy: float
    compression_ratio: float


@dataclass
class Fig8Result:
    """All (model, method) accuracy measurements."""

    entries: "list[Fig8Entry]" = field(default_factory=list)

    def rows(self) -> "list[list]":
        return [
            [entry.model, entry.method, entry.accuracy, entry.compression_ratio]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(
            ["Model", "Method", "Top-1 accuracy", "CR (vs Original)"],
            self.rows(),
        )

    def accuracy(self, model: str, method: str) -> float:
        """Accuracy of one (model, method) pair."""
        for entry in self.entries:
            if entry.model == model and entry.method == method:
                return entry.accuracy
        raise KeyError(f"no entry for ({model!r}, {method!r})")

    def accuracy_drop(self, model: str, method: str) -> float:
        """Accuracy lost by ``method`` relative to Original for ``model``."""
        return self.accuracy(model, "Original") - self.accuracy(model, method)

    def models(self) -> "list[str]":
        """The evaluated model names, in order."""
        seen = []
        for entry in self.entries:
            if entry.model not in seen:
                seen.append(entry.model)
        return seen


def _unbuildable_state(key) -> dict:
    """Fig. 8 state is always seeded by :func:`run` before the pool opens.

    The compressed datasets depend on the (possibly caller-supplied)
    DeepN-JPEG design, so a cold worker cannot reconstruct them from the
    config alone — and never needs to: parallelism only runs over fork,
    which inherits the parent's warm memo.
    """
    raise RuntimeError(
        "Fig. 8 worker state must be inherited from the parent process; "
        "a cold rebuild indicates a non-fork platform"
    )


_STATE = TaskState(_unbuildable_state)


def _training_cell(task: tuple) -> Fig8Entry:
    """One (model, method) grid point: train and evaluate one classifier.

    Ships the config key, the cell coordinates and the training-epoch
    override; the compressed datasets come from the process-local
    :data:`_STATE` memo seeded by :func:`run`.
    """
    key, model_name, method, epochs = task
    state = _STATE.get(key)
    compressed_train, compressed_test = state["compressed"][method]
    classifier = train_classifier(
        compressed_train, state["config"], model_name=model_name,
        epochs=epochs,
    )
    return Fig8Entry(
        model=model_name,
        method=method,
        accuracy=classifier.accuracy_on(compressed_test),
        compression_ratio=relative_compression_rate(
            compressed_test, state["compressed"]["Original"][1]
        ),
    )


def run(
    config: ExperimentConfig = None,
    model_names: "tuple[str, ...]" = FIG8_MODELS,
    deepn_config=None,
    anchors: dict = None,
    epochs: int = None,
    store: Optional[ArtifactStore] = None,
) -> Fig8Result:
    """Reproduce the Fig. 8 generality comparison.

    With ``config.workers > 1`` every (model, method) pair — the
    dominant per-cell cost, one classifier training run — is an
    independent pool task; the four candidate compressions are computed
    once up front and shared with the workers.  Results are identical
    to the serial run.

    With ``store`` every (model, method) cell — addressed by the
    candidate's codec ``spec()`` — resumes from the content-addressed
    artifact store, and the fitted design itself is cached
    (:func:`fitted_pipeline`); a fully warm store skips dataset
    generation, the fit, the four candidate compressions and all
    training runs.
    """
    config = config if config is not None else ExperimentConfig.small()
    splits: "list" = []

    def _train_dataset():
        if not splits:
            splits.extend(make_splits(config))
        return splits[0]

    if deepn_config is None:
        deepn_config = derive_design_config(config, anchors=anchors, store=store)
    deepn = fitted_pipeline(config, deepn_config, _train_dataset, store=store)

    candidates = {
        "Original": JpegCompressor(100),
        "DeepN-JPEG": deepn,
        "JPEG (QF=80)": JpegCompressor(80),
        "JPEG (QF=50)": JpegCompressor(50),
    }
    methods = [method for method in FIG8_METHODS if method in candidates]
    cells = [
        {
            "model": model_name,
            "method": method,
            "epochs": epochs,
            "codec": candidates[method].spec(),
        }
        for model_name in model_names
        for method in methods
    ]
    cache = SweepCache(
        store, "fig8", config,
        from_payload=lambda payload: Fig8Entry(**payload),
        to_payload=asdict,
    )
    cached = cache.lookup_many(cells)
    result = Fig8Result()
    if all_cached(cached):
        result.entries.extend(cached)
        return result

    train_dataset = _train_dataset()
    test_dataset = splits[1]
    compressed = {}
    for method, compressor in candidates.items():
        compressed[method] = (
            compressor.compress_dataset(train_dataset),
            compressor.compress_dataset(test_dataset),
        )

    key = (config.task_key(), id(deepn))
    _STATE.seed(key, {"config": config.task_key(), "compressed": compressed})
    tasks = [(key, cell["model"], cell["method"], epochs) for cell in cells]
    try:
        result.entries.extend(
            map_tasks_resumable(
                _training_cell, tasks, cached,
                workers=config.workers, on_result=cache.recorder(cells),
            )
        )
    finally:
        # Release all eight compressed train/test datasets after the grid.
        _STATE.clear()
    return result
