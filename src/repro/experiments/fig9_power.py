"""Fig. 9: normalized data-offloading power of the compression candidates.

The candidates are Original (QF=100), RM-HF3, SAME-Q4 and DeepN-JPEG.
Their average compressed image sizes (measured on the test set) are fed
into the wireless offloading energy model of :mod:`repro.power`; the
output is each candidate's total per-inference energy normalised to the
Original dataset, reproducing the bar chart of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.baselines import (
    JpegCompressor,
    RemoveHighFrequencyCompressor,
    SameQCompressor,
)
from repro.core.pipeline import DeepNJpegCompressor
from repro.experiments.common import ExperimentConfig, format_table, make_splits
from repro.experiments.design_flow import derive_design_config, fitted_pipeline
from repro.experiments.store import ArtifactStore, SweepCache, all_cached
from repro.power.breakdown import offloading_power_breakdown
from repro.runtime.executor import TaskState, map_tasks_resumable


def _build_state(config: ExperimentConfig) -> dict:
    """The test split, reconstructible from the config alone."""
    _, test_dataset = make_splits(config)
    return {"test_dataset": test_dataset}


_STATE = TaskState(_build_state)


def _size_cell(task: tuple) -> tuple:
    """One candidate: compress the test set and report bytes per image."""
    key, compressor = task
    state = _STATE.get(key)
    compressed = compressor.compress_dataset(state["test_dataset"])
    method = (
        "Original" if compressor.name == "JPEG (QF=100)" else compressor.name
    )
    return method, compressed.bytes_per_image


@dataclass(frozen=True)
class Fig9Entry:
    """Energy figures of one candidate."""

    method: str
    bytes_per_image: float
    communication_joules: float
    computation_joules: float
    normalized_power: float


@dataclass
class Fig9Result:
    """All candidates of the Fig. 9 power comparison."""

    entries: "list[Fig9Entry]" = field(default_factory=list)
    link_name: str = "WiFi"
    workload_name: str = "AlexNet"

    def rows(self) -> "list[list]":
        return [
            [entry.method, round(entry.bytes_per_image, 1),
             f"{entry.communication_joules:.3e}",
             f"{entry.computation_joules:.3e}", entry.normalized_power]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(
            ["Method", "Bytes/image", "Comm (J)", "Compute (J)",
             "Normalized power"],
            self.rows(),
        )

    def normalized_power(self, method: str) -> float:
        """Normalized power of one candidate."""
        for entry in self.entries:
            if entry.method == method:
                return entry.normalized_power
        raise KeyError(f"no entry for method {method!r}")


def run(
    config: ExperimentConfig = None,
    deepn_config=None,
    anchors: dict = None,
    link_name: str = "WiFi",
    workload_name: str = "AlexNet",
    bytes_per_method: dict = None,
    include_computation: bool = False,
    store: Optional[ArtifactStore] = None,
) -> Fig9Result:
    """Reproduce the Fig. 9 power comparison.

    ``bytes_per_method`` can be supplied directly (e.g. from a Fig. 7 run)
    to avoid recompressing the dataset; otherwise the test set is
    compressed here with the paper's four candidates — each cell
    resuming from ``store`` (addressed by the candidate's codec
    ``spec()``) when one is given.

    ``include_computation`` defaults to ``False``: the paper's offloading
    power is measured for ~100 KB ImageNet-scale images where upload energy
    dwarfs the (method-independent) inference energy, so for the small
    synthetic images used here the normalisation considers communication
    only.  Set it to ``True`` to add the fixed compute term.
    """
    config = config if config is not None else ExperimentConfig.small()
    if bytes_per_method is None:
        splits: "list" = []

        def _test_dataset():
            if not splits:
                splits.extend(make_splits(config))
            return splits[1]

        if deepn_config is None:
            # Power depends only on compressed size, so the default anchors
            # are acceptable when none are supplied; reuse the design flow
            # for consistency with Fig. 7 when anchors are given.
            deepn_config = derive_design_config(
                config, anchors=anchors, store=store
            ) if anchors is not None else None
        # The paper's Fig. 9 sizing fits on the (offloaded) test set; a
        # cached fit skips the split generation and analysis entirely.
        deepn = fitted_pipeline(
            config, deepn_config, _test_dataset, store=store, fit_on="test"
        )
        candidates = [
            JpegCompressor(100),
            RemoveHighFrequencyCompressor(3),
            SameQCompressor(4),
            DeepNJpegCompressor(deepn),
        ]
        cells = [
            {"cell": "bytes_per_image", "codec": compressor.spec()}
            for compressor in candidates
        ]
        cache = SweepCache(
            store, "fig9", config, from_payload=tuple, to_payload=list
        )
        cached = cache.lookup_many(cells)
        if all_cached(cached):
            sizes = list(cached)
        else:
            # Each candidate's test-set compression is an independent pool
            # task (serial and identical when config.workers == 1).
            key = config.task_key()
            _STATE.seed(key, {"test_dataset": _test_dataset()})
            try:
                sizes = map_tasks_resumable(
                    _size_cell,
                    [(key, compressor) for compressor in candidates],
                    cached,
                    workers=config.workers,
                    on_result=cache.recorder(cells),
                )
            finally:
                # Release the test split after the candidate sweep.
                _STATE.clear()
        bytes_per_method = dict(sizes)
    breakdowns = offloading_power_breakdown(
        bytes_per_method,
        reference_method=next(iter(bytes_per_method)),
        link_name=link_name,
        workload_name=workload_name,
        include_computation=include_computation,
    )
    result = Fig9Result(link_name=link_name, workload_name=workload_name)
    for breakdown, (method, size) in zip(breakdowns, bytes_per_method.items()):
        result.entries.append(
            Fig9Entry(
                method=method,
                bytes_per_image=float(size),
                communication_joules=breakdown.communication_joules,
                computation_joules=breakdown.computation_joules,
                normalized_power=breakdown.normalized_total,
            )
        )
    return result
