"""Fig. 9: normalized data-offloading power of the compression candidates.

The candidates are Original (QF=100), RM-HF3, SAME-Q4 and DeepN-JPEG.
Their average compressed image sizes (measured on the test set) are fed
into the wireless offloading energy model of :mod:`repro.power`; the
output is each candidate's total per-inference energy normalised to the
Original dataset, reproducing the bar chart of Fig. 9.

Declared on :mod:`repro.experiments.api` as one ``codec`` axis over the
candidates (skipped entirely when ``bytes_per_method`` is supplied, e.g.
from a Fig. 7 run); the assemble step runs the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.baselines import (
    JpegCompressor,
    RemoveHighFrequencyCompressor,
    SameQCompressor,
)
from repro.core.pipeline import DeepNJpegCompressor
from repro.experiments import api
from repro.experiments.common import ExperimentConfig, format_table, make_splits
from repro.experiments.design_flow import derive_design_config, fitted_pipeline
from repro.experiments.store import ArtifactStore
from repro.power.breakdown import offloading_power_breakdown

#: Table columns (shared by the result table and the CLI --json payload).
FIG9_HEADERS = [
    "Method", "Bytes/image", "Comm (J)", "Compute (J)", "Normalized power",
]


@dataclass(frozen=True)
class Fig9Entry:
    """Energy figures of one candidate."""

    method: str
    bytes_per_image: float
    communication_joules: float
    computation_joules: float
    normalized_power: float


@dataclass
class Fig9Result:
    """All candidates of the Fig. 9 power comparison."""

    entries: "list[Fig9Entry]" = field(default_factory=list)
    link_name: str = "WiFi"
    workload_name: str = "AlexNet"

    def rows(self) -> "list[list]":
        return [
            [entry.method, round(entry.bytes_per_image, 1),
             f"{entry.communication_joules:.3e}",
             f"{entry.computation_joules:.3e}", entry.normalized_power]
            for entry in self.entries
        ]

    def format_table(self) -> str:
        return format_table(FIG9_HEADERS, self.rows())

    def normalized_power(self, method: str) -> float:
        """Normalized power of one candidate."""
        for entry in self.entries:
            if entry.method == method:
                return entry.normalized_power
        raise KeyError(f"no entry for method {method!r}")


class Fig9Experiment(api.Experiment):
    """The offloading-power comparison as a declarative experiment."""

    name = "fig9"
    title = "Normalized data-offloading power of the candidates"
    headers = FIG9_HEADERS
    defaults = {
        "deepn_config": None,
        "anchors": None,
        "link_name": "WiFi",
        "workload_name": "AlexNet",
        "bytes_per_method": None,
        "include_computation": False,
    }

    def prepare(self, ctx: api.RunContext) -> None:
        if ctx.params["bytes_per_method"] is not None:
            # Sizes supplied (e.g. from a Fig. 7 run): no sweep at all.
            return
        splits: "list" = []

        def _test_dataset():
            if not splits:
                splits.extend(make_splits(ctx.config))
            return splits[1]

        deepn_config = ctx.params["deepn_config"]
        if deepn_config is None:
            # Power depends only on compressed size, so the default anchors
            # are acceptable when none are supplied; reuse the design flow
            # for consistency with Fig. 7 when anchors are given.
            deepn_config = derive_design_config(
                ctx.config, anchors=ctx.params["anchors"], store=ctx.store
            ) if ctx.params["anchors"] is not None else None
        # The paper's Fig. 9 sizing fits on the (offloaded) test set; a
        # cached fit skips the split generation and analysis entirely.
        deepn = fitted_pipeline(
            ctx.config, deepn_config, _test_dataset,
            store=ctx.store, fit_on="test",
        )
        ctx.derived["candidates"] = [
            JpegCompressor(100),
            RemoveHighFrequencyCompressor(3),
            SameQCompressor(4),
            DeepNJpegCompressor(deepn),
        ]
        ctx.derived["splits"] = splits

    def cells(self, ctx: api.RunContext) -> "list[dict]":
        if ctx.params["bytes_per_method"] is not None:
            return []
        return [
            {"cell": "bytes_per_image", "codec": compressor.spec()}
            for compressor in ctx.derived["candidates"]
        ]

    def setup_state(self, ctx: api.RunContext) -> dict:
        splits = ctx.derived["splits"]
        if not splits:
            splits.extend(make_splits(ctx.config))
        return {"test_dataset": splits[1]}

    def build_state(self, config: ExperimentConfig) -> dict:
        """The test split, reconstructible from the config alone."""
        _, test_dataset = make_splits(config)
        return {"test_dataset": test_dataset}

    def task_extra(self, ctx: api.RunContext, index: int, cell: dict):
        return ctx.derived["candidates"][index]

    def compute_cell(self, key, state, cell: dict, extra) -> tuple:
        """One candidate: compress the test set and report bytes per image."""
        compressor = extra
        compressed = compressor.compress_dataset(state["test_dataset"])
        method = (
            "Original" if compressor.name == "JPEG (QF=100)" else compressor.name
        )
        return method, compressed.bytes_per_image

    def cell_to_payload(self, value: tuple) -> list:
        return list(value)

    def cell_from_payload(self, payload: list) -> tuple:
        return tuple(payload)

    def assemble(
        self, ctx: api.RunContext, results: list, scalars: dict
    ) -> Fig9Result:
        bytes_per_method = ctx.params["bytes_per_method"]
        if bytes_per_method is None:
            bytes_per_method = dict(results)
        breakdowns = offloading_power_breakdown(
            bytes_per_method,
            reference_method=next(iter(bytes_per_method)),
            link_name=ctx.params["link_name"],
            workload_name=ctx.params["workload_name"],
            include_computation=ctx.params["include_computation"],
        )
        result = Fig9Result(
            link_name=ctx.params["link_name"],
            workload_name=ctx.params["workload_name"],
        )
        for breakdown, (method, size) in zip(
            breakdowns, bytes_per_method.items()
        ):
            result.entries.append(
                Fig9Entry(
                    method=method,
                    bytes_per_image=float(size),
                    communication_joules=breakdown.communication_joules,
                    computation_joules=breakdown.computation_joules,
                    normalized_power=breakdown.normalized_total,
                )
            )
        return result


api.register_experiment(Fig9Experiment.name, Fig9Experiment)

#: The shared worker-state memo (historical name, see the parallel tests).
_STATE = api._STATE


def run(
    config: ExperimentConfig = None,
    deepn_config=None,
    anchors: dict = None,
    link_name: str = "WiFi",
    workload_name: str = "AlexNet",
    bytes_per_method: dict = None,
    include_computation: bool = False,
    store: Optional[ArtifactStore] = None,
) -> Fig9Result:
    """Reproduce the Fig. 9 power comparison.

    A thin shim over the declarative :class:`Fig9Experiment`.

    ``bytes_per_method`` can be supplied directly (e.g. from a Fig. 7 run)
    to avoid recompressing the dataset; otherwise the test set is
    compressed here with the paper's four candidates — each cell
    resuming from ``store`` (addressed by the candidate's codec
    ``spec()``) when one is given.

    ``include_computation`` defaults to ``False``: the paper's offloading
    power is measured for ~100 KB ImageNet-scale images where upload energy
    dwarfs the (method-independent) inference energy, so for the small
    synthetic images used here the normalisation considers communication
    only.  Set it to ``True`` to add the fixed compute term.
    """
    return api.run_experiment(
        Fig9Experiment(), config, store=store,
        deepn_config=deepn_config, anchors=anchors,
        link_name=link_name, workload_name=workload_name,
        bytes_per_method=bytes_per_method,
        include_computation=include_computation,
    )
