"""Content-addressed artifact store for the experiment sweeps.

Every ``fig*`` experiment writes its grid-cell results through an
:class:`ArtifactStore` when one is supplied: each cell is keyed on the
experiment's :meth:`~repro.experiments.common.ExperimentConfig.task_key`
plus the cell's own identity — including the relevant codec ``spec()``
where a compressor is involved, so a cell produced by a *fitted*
DeepN-JPEG artifact is addressed by the fitted tables themselves, not
by which process happened to fit them.  Re-running a sweep with the
same configuration (any worker count) resumes from the store: completed
cells load instead of recomputing, and a fully warm store skips the
heavy shared state (dataset compression, classifier training) entirely.

Keys are SHA-256 digests of canonical JSON; values are JSON payloads
written atomically (temp file + rename), so concurrent sweeps sharing a
store directory at worst duplicate work, never corrupt it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
from typing import Optional

from repro.runtime.executor import CACHE_MISS

logger = logging.getLogger(__name__)


class ArtifactStoreError(RuntimeError):
    """A store write failed (disk full, permissions, unserialisable payload).

    Raised by :meth:`ArtifactStore.put` after cleaning up its temp file;
    the original exception rides along as ``__cause__``.
    """


def canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def all_cached(cached: list) -> bool:
    """True when a sweep's every lookup hit (non-empty sweeps only).

    The uniform warm-store early-return condition of the ``fig*``
    modules: an empty cell list never short-circuits.
    """
    return bool(cached) and all(value is not CACHE_MISS for value in cached)


def config_payload(config) -> dict:
    """The JSON identity of an experiment configuration.

    Uses :meth:`~repro.experiments.common.ExperimentConfig.task_key` so
    the ``workers`` knob — which never influences results — never
    influences the address either.
    """
    return dataclasses.asdict(config.task_key())


class ArtifactStore:
    """A directory of content-addressed JSON artifacts.

    Artifacts live under ``root/<first two hex digits>/<digest>.json``.
    ``hits`` / ``misses`` count lookups since construction, which is how
    the resume tests assert that a warm second run recomputed nothing.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def key(self, payload: dict) -> str:
        """The content address (SHA-256 hex digest) of a key payload."""
        return hashlib.sha256(
            canonical_json(payload).encode("utf-8")
        ).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def get(self, key: str):
        """The stored payload for ``key``, or ``None`` (counted as a miss).

        A corrupted or truncated artifact file (a crashed writer on a
        filesystem without atomic rename, manual tampering) is treated
        as a miss rather than an error: the sweep recomputes the cell
        and :meth:`put` atomically overwrites the poisoned file.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                value = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            logger.warning(
                "artifact %s is corrupted (%s); treating it as a cache "
                "miss, the cell will be recomputed and overwritten",
                path, error,
            )
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, payload) -> None:
        """Atomically persist ``payload`` (any JSON-able value) at ``key``.

        On any failure — an unserialisable payload, a full disk, a
        permission error on the rename — the temp file is removed so a
        failed write never litters the store, and the failure surfaces
        as an :class:`ArtifactStoreError` naming the key and path, with
        the original exception chained as its cause.  The final artifact
        path is only ever produced by a completed ``os.replace``, so a
        failed put leaves the store exactly as it was.
        """
        path = self._path(key)
        temporary = f"{path}.{os.getpid()}.tmp"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            os.replace(temporary, path)
        except Exception as error:
            try:
                os.remove(temporary)
            except OSError:
                pass
            raise ArtifactStoreError(
                f"failed to persist artifact {key} at {path}: {error}"
            ) from error

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for name in files if name.endswith(".json"))
        return count


class SweepCache:
    """Binds an :class:`ArtifactStore` to one figure sweep.

    A figure constructs one ``SweepCache(store, figure, config)`` and
    addresses each grid cell by a small JSON-able ``cell`` payload; the
    cache composes ``{figure, config, cell}`` into the content address.
    ``from_payload`` / ``to_payload`` translate between the figure's
    entry objects and their stored JSON form (identity by default).

    With ``store=None`` every lookup reports :data:`CACHE_MISS` and
    writes are dropped, so figures call the cache unconditionally.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore],
        figure: str,
        config,
        from_payload=None,
        to_payload=None,
    ) -> None:
        self.store = store
        self.figure = figure
        self._config = config_payload(config)
        self._from_payload = from_payload or (lambda payload: payload)
        self._to_payload = to_payload or (lambda value: value)

    def key(self, cell: dict) -> str:
        return self.store.key(
            {"figure": self.figure, "config": self._config, "cell": cell}
        )

    def lookup(self, cell: dict):
        """The decoded cached entry for ``cell``, or :data:`CACHE_MISS`."""
        if self.store is None:
            return CACHE_MISS
        key = self.key(cell)
        payload = self.store.get(key)
        if payload is None:
            return CACHE_MISS
        # Entries are stored wrapped ({"value": ...}) so a legitimately
        # null payload stays distinguishable from a missing artifact.  A
        # valid-JSON artifact without the wrapper is tampering the JSON
        # decoder cannot catch: demote the hit to a miss so the cell is
        # recomputed and overwritten, like any other corruption.
        if not isinstance(payload, dict) or "value" not in payload:
            logger.warning(
                "artifact %s is valid JSON but not a wrapped sweep entry; "
                "treating it as a cache miss, the cell will be recomputed "
                "and overwritten",
                key,
            )
            self.store.hits -= 1
            self.store.misses += 1
            return CACHE_MISS
        return self._from_payload(payload["value"])

    def lookup_many(self, cells: "list[dict]") -> list:
        """Decoded entries (or :data:`CACHE_MISS`) for every cell."""
        return [self.lookup(cell) for cell in cells]

    def record(self, cell: dict, value) -> None:
        """Persist one freshly computed entry (no-op without a store)."""
        if self.store is not None:
            self.store.put(self.key(cell), {"value": self._to_payload(value)})

    def recorder(self, cells: "list[dict]"):
        """An ``on_result(index, value)`` callback over indexed cells.

        The shape :func:`repro.runtime.executor.map_tasks_resumable`
        expects: fresh results are persisted under their cell's address
        as they arrive.
        """

        def on_result(index: int, value) -> None:
            self.record(cells[index], value)

        return on_result
