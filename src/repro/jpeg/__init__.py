"""JPEG codec substrate.

A complete, self-contained JPEG-style still image codec implemented with
numpy.  It mirrors the structure of the baseline sequential JPEG pipeline
(ITU-T T.81): colour conversion, 8x8 block partitioning, forward DCT,
scalar quantization against a 64-entry table, zig-zag reordering, DPCM
coding of DC terms, run-length coding of AC terms, and Huffman entropy
coding into an actual byte stream.  The codec is the substrate on which
the DeepN-JPEG quantization tables (:mod:`repro.core`) are evaluated: it
reports real compressed sizes, so compression ratios are measured rather
than estimated.

Public entry points
-------------------
:class:`~repro.jpeg.codec.GrayscaleJpegCodec`
    Encode/decode single-channel images.
:class:`~repro.jpeg.codec.ColorJpegCodec`
    Encode/decode RGB images through the YCbCr path with optional 4:2:0
    chroma subsampling.
:class:`~repro.jpeg.quantization.QuantizationTable`
    A 64-entry table with quality-factor scaling, the object DeepN-JPEG
    redesigns.
"""

from repro.jpeg.codec import (
    ColorJpegCodec,
    CompressionResult,
    EncodedChannel,
    EncodedImage,
    GrayscaleJpegCodec,
)
from repro.jpeg.container import (
    ContainerError,
    decode_image_bytes,
    pack_color_image,
    pack_grayscale_image,
    unpack_container,
)
from repro.jpeg.dct import block_dct2d, block_idct2d, dct2d, idct2d
from repro.jpeg.metrics import mse, psnr
from repro.jpeg.quantization import (
    STANDARD_CHROMINANCE_TABLE,
    STANDARD_LUMINANCE_TABLE,
    QuantizationTable,
    scale_table_for_quality,
)
from repro.jpeg.zigzag import ZIGZAG_ORDER, inverse_zigzag, zigzag

__all__ = [
    "ColorJpegCodec",
    "CompressionResult",
    "ContainerError",
    "EncodedChannel",
    "EncodedImage",
    "GrayscaleJpegCodec",
    "QuantizationTable",
    "decode_image_bytes",
    "pack_color_image",
    "pack_grayscale_image",
    "unpack_container",
    "STANDARD_CHROMINANCE_TABLE",
    "STANDARD_LUMINANCE_TABLE",
    "ZIGZAG_ORDER",
    "block_dct2d",
    "block_idct2d",
    "dct2d",
    "idct2d",
    "inverse_zigzag",
    "mse",
    "psnr",
    "scale_table_for_quality",
    "zigzag",
]
