"""Bit-level writer and reader used by the entropy coder.

The JPEG entropy-coded segment is a stream of variable-length Huffman
codes and raw magnitude bits.  ``BitWriter`` packs bits MSB-first into a
``bytearray`` (with the 0xFF byte-stuffing rule applied, as in T.81
section B.1.1.5) and ``BitReader`` unpacks them again.
"""

from __future__ import annotations

import numpy as np


class BitWriter:
    """Accumulates bits MSB-first and emits a stuffed JPEG byte stream."""

    def __init__(self, byte_stuffing: bool = True) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0
        self._bits_written = 0
        self._byte_stuffing = byte_stuffing

    def write_bits(self, value: int, length: int) -> None:
        """Append the ``length`` low-order bits of ``value``, MSB first."""
        if length < 0:
            raise ValueError("bit length must be non-negative")
        if length == 0:
            return
        if value < 0 or value >= (1 << length):
            raise ValueError(
                f"value {value} does not fit in {length} bits"
            )
        self._accumulator = (self._accumulator << length) | value
        self._bit_count += length
        self._bits_written += length
        while self._bit_count >= 8:
            self._bit_count -= 8
            byte = (self._accumulator >> self._bit_count) & 0xFF
            self._emit_byte(byte)
        self._accumulator &= (1 << self._bit_count) - 1

    def write_code(self, code: "tuple[int, int]") -> None:
        """Append a ``(value, length)`` Huffman code."""
        value, length = code
        self.write_bits(value, length)

    def _emit_byte(self, byte: int) -> None:
        self._buffer.append(byte)
        if self._byte_stuffing and byte == 0xFF:
            self._buffer.append(0x00)

    def getvalue(self) -> bytes:
        """Flush (padding the final partial byte with 1-bits) and return bytes."""
        if self._bit_count:
            pad = 8 - self._bit_count
            padded = (self._accumulator << pad) | ((1 << pad) - 1)
            self._emit_byte(padded & 0xFF)
            self._accumulator = 0
            self._bit_count = 0
        return bytes(self._buffer)

    def __len__(self) -> int:
        """Number of whole bytes emitted so far (excluding pending bits)."""
        return len(self._buffer)

    @property
    def bit_length(self) -> int:
        """Total number of payload bits written so far (excludes stuffing)."""
        return self._bits_written


class BitReader:
    """Reads bits MSB-first from a stuffed JPEG byte stream."""

    def __init__(self, data: bytes, byte_stuffing: bool = True) -> None:
        self._data = bytes(data)
        self._byte_stuffing = byte_stuffing
        self._position = 0
        self._accumulator = 0
        self._bit_count = 0

    def read_bit(self) -> int:
        """Read a single bit; raises ``EOFError`` when exhausted."""
        if self._bit_count == 0:
            self._fill()
        self._bit_count -= 1
        return (self._accumulator >> self._bit_count) & 1

    def read_bits(self, length: int) -> int:
        """Read ``length`` bits and return them as an unsigned integer."""
        if length < 0:
            raise ValueError("bit length must be non-negative")
        value = 0
        for _ in range(length):
            value = (value << 1) | self.read_bit()
        return value

    def _fill(self) -> None:
        if self._position >= len(self._data):
            raise EOFError("bit stream exhausted")
        byte = self._data[self._position]
        self._position += 1
        if (
            self._byte_stuffing
            and byte == 0xFF
            and self._position < len(self._data)
            and self._data[self._position] == 0x00
        ):
            self._position += 1
        self._accumulator = byte
        self._bit_count = 8


def magnitude_category(value: int) -> int:
    """Return the JPEG size category (number of magnitude bits) of ``value``."""
    value = int(value)
    if value == 0:
        return 0
    return int(np.ceil(np.log2(abs(value) + 1)))


def encode_magnitude(value: int) -> "tuple[int, int]":
    """Encode ``value`` as JPEG magnitude bits ``(bits, length)``.

    Positive values are written as-is; negative values use the one's
    complement convention of T.81 (section F.1.2.1.1).
    """
    category = magnitude_category(value)
    if category == 0:
        return 0, 0
    if value > 0:
        return int(value), category
    return int(value + (1 << category) - 1), category


def decode_magnitude(bits: int, category: int) -> int:
    """Invert :func:`encode_magnitude` given the raw bits and category."""
    if category == 0:
        return 0
    if bits >> (category - 1):
        return int(bits)
    return int(bits - (1 << category) + 1)
