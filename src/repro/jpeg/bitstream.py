"""Bit-level writer/reader and the vectorized bit-packing fast path.

The JPEG entropy-coded segment is a stream of variable-length Huffman
codes and raw magnitude bits.  Two implementations coexist:

* ``BitWriter`` / ``BitReader`` — the scalar reference: bits are packed
  MSB-first one value at a time (with the 0xFF byte-stuffing rule of
  T.81 section B.1.1.5) and unpacked again bit by bit.  This path is
  kept for parity testing and for readers of the spec.
* :func:`pack_bits` and the window/LUT helpers — the NumPy fast path:
  a whole stream of ``(value, length)`` pairs is packed in one pass via
  cumulative bit offsets, ``np.packbits`` and post-hoc byte stuffing,
  and decoding peeks 16-bit windows computed once for every bit offset
  so a dense lookup table resolves each Huffman code in O(1).

Both produce and consume bit-identical byte streams; the tests assert
this over random streams and the stuffing/padding edge cases.
"""

from __future__ import annotations

import numpy as np

def _build_category_lut(bits: int = 16) -> np.ndarray:
    """``lut[v] = v.bit_length()`` for every magnitude below ``2**bits``."""
    lut = np.zeros(1 << bits, dtype=np.int64)
    for length in range(1, bits + 1):
        lut[1 << (length - 1):1 << length] = length
    return lut


#: Dense bit-length table covering every magnitude a baseline JPEG
#: stream can carry (categories are at most 16).
_CATEGORY_LUT = _build_category_lut()

#: ``2**category - 1`` for every magnitude below 2**16: the one's
#: complement adjustment T.81 applies to negative values.
_CATEGORY_MASK_LUT = (1 << _CATEGORY_LUT) - 1


class BitWriter:
    """Accumulates bits MSB-first and emits a stuffed JPEG byte stream."""

    def __init__(self, byte_stuffing: bool = True) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0
        self._bits_written = 0
        self._byte_stuffing = byte_stuffing

    def write_bits(self, value: int, length: int) -> None:
        """Append the ``length`` low-order bits of ``value``, MSB first."""
        if length < 0:
            raise ValueError("bit length must be non-negative")
        if length == 0:
            return
        if value < 0 or value >= (1 << length):
            raise ValueError(
                f"value {value} does not fit in {length} bits"
            )
        self._accumulator = (self._accumulator << length) | value
        self._bit_count += length
        self._bits_written += length
        while self._bit_count >= 8:
            self._bit_count -= 8
            byte = (self._accumulator >> self._bit_count) & 0xFF
            self._emit_byte(byte)
        self._accumulator &= (1 << self._bit_count) - 1

    def write_code(self, code: "tuple[int, int]") -> None:
        """Append a ``(value, length)`` Huffman code."""
        value, length = code
        self.write_bits(value, length)

    def _emit_byte(self, byte: int) -> None:
        self._buffer.append(byte)
        if self._byte_stuffing and byte == 0xFF:
            self._buffer.append(0x00)

    def getvalue(self) -> bytes:
        """Flush (padding the final partial byte with 1-bits) and return bytes."""
        if self._bit_count:
            pad = 8 - self._bit_count
            padded = (self._accumulator << pad) | ((1 << pad) - 1)
            self._emit_byte(padded & 0xFF)
            self._accumulator = 0
            self._bit_count = 0
        return bytes(self._buffer)

    def __len__(self) -> int:
        """Number of whole bytes emitted so far (excluding pending bits)."""
        return len(self._buffer)

    @property
    def bit_length(self) -> int:
        """Total number of payload bits written so far (excludes stuffing)."""
        return self._bits_written


class BitReader:
    """Reads bits MSB-first from a stuffed JPEG byte stream."""

    def __init__(self, data: bytes, byte_stuffing: bool = True) -> None:
        self._data = bytes(data)
        self._byte_stuffing = byte_stuffing
        self._position = 0
        self._accumulator = 0
        self._bit_count = 0

    def read_bit(self) -> int:
        """Read a single bit; raises ``EOFError`` when exhausted."""
        if self._bit_count == 0:
            self._fill()
        self._bit_count -= 1
        return (self._accumulator >> self._bit_count) & 1

    def read_bits(self, length: int) -> int:
        """Read ``length`` bits and return them as an unsigned integer."""
        if length < 0:
            raise ValueError("bit length must be non-negative")
        value = 0
        for _ in range(length):
            value = (value << 1) | self.read_bit()
        return value

    def _fill(self) -> None:
        if self._position >= len(self._data):
            raise EOFError("bit stream exhausted")
        byte = self._data[self._position]
        self._position += 1
        if (
            self._byte_stuffing
            and byte == 0xFF
            and self._position < len(self._data)
            and self._data[self._position] == 0x00
        ):
            self._position += 1
        self._accumulator = byte
        self._bit_count = 8


def magnitude_category(value: int) -> int:
    """Return the JPEG size category (number of magnitude bits) of ``value``.

    Exactly ``ceil(log2(|value| + 1))``, computed with integer bit-length
    arithmetic so large DC differences cannot hit float rounding.
    """
    return abs(int(value)).bit_length()


def magnitude_category_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`magnitude_category` over an integer array.

    Magnitudes below 2**16 (everything a baseline stream can code) come
    from a dense bit-length table; anything larger falls back to
    bit-smearing plus a population count.  Both are exact integer
    arithmetic, unlike ``ceil(log2(...))`` in floating point.
    """
    magnitudes = np.abs(np.asarray(values, dtype=np.int64))
    if magnitudes.shape[0] == 0 or int(magnitudes.max()) < (1 << 16):
        return _CATEGORY_LUT[magnitudes]
    smeared = magnitudes.astype(np.uint64)
    smeared |= smeared >> np.uint64(1)
    smeared |= smeared >> np.uint64(2)
    smeared |= smeared >> np.uint64(4)
    smeared |= smeared >> np.uint64(8)
    smeared |= smeared >> np.uint64(16)
    smeared |= smeared >> np.uint64(32)
    if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
        return np.bitwise_count(smeared).astype(np.int64)
    # Smearing makes the value 2**k - 1, so k is the float exponent of
    # value + 1 — a power of two, exactly representable in float64.
    return (
        np.frexp(smeared.astype(np.float64) + 1.0)[1].astype(np.int64) - 1
    )


def encode_magnitude(value: int) -> "tuple[int, int]":
    """Encode ``value`` as JPEG magnitude bits ``(bits, length)``.

    Positive values are written as-is; negative values use the one's
    complement convention of T.81 (section F.1.2.1.1).
    """
    category = magnitude_category(value)
    if category == 0:
        return 0, 0
    if value > 0:
        return int(value), category
    return int(value + (1 << category) - 1), category


def encode_magnitude_array(values: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized :func:`encode_magnitude`: returns ``(bits, lengths)`` arrays."""
    values = np.asarray(values, dtype=np.int64)
    lengths = magnitude_category_array(values)
    bits = np.where(values >= 0, values, values + (1 << lengths) - 1)
    return bits, lengths


def decode_magnitude(bits: int, category: int) -> int:
    """Invert :func:`encode_magnitude` given the raw bits and category."""
    if category == 0:
        return 0
    if bits >> (category - 1):
        return int(bits)
    return int(bits - (1 << category) + 1)


def stuff_byte_array(data: np.ndarray) -> np.ndarray:
    """Insert a 0x00 after every 0xFF byte (T.81 B.1.1.5), vectorized."""
    data = np.asarray(data, dtype=np.uint8)
    is_ff = data == 0xFF
    if not is_ff.any():
        return data
    # Each byte lands after all the stuffed zeros of the 0xFFs before it;
    # the gaps left in the zero-initialised output are the stuffed bytes.
    inclusive = np.cumsum(is_ff)
    out = np.zeros(data.shape[0] + int(inclusive[-1]), dtype=np.uint8)
    out[np.arange(data.shape[0]) + inclusive - is_ff] = data
    return out


def destuff_bytes(data: bytes) -> bytes:
    """Remove the 0x00 stuffed after every 0xFF byte."""
    return bytes(data).replace(b"\xff\x00", b"\xff")


def pack_bits(
    values: np.ndarray, lengths: np.ndarray, byte_stuffing: bool = True
) -> bytes:
    """Pack a stream of ``(value, length)`` pairs into a JPEG byte stream.

    The vectorized equivalent of writing every pair through
    :class:`BitWriter`: bits are concatenated MSB-first, the final
    partial byte is padded with 1-bits and 0xFF bytes are stuffed.
    Zero-length entries contribute nothing, as in the scalar writer.
    """
    values = np.asarray(values, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape[0] == 0:
        return b""
    ends = np.cumsum(lengths)
    total_bits = int(ends[-1])
    if total_bits == 0:
        return b""
    pad = (-total_bits) % 8
    token_index = np.repeat(np.arange(lengths.shape[0]), lengths)
    # Stream position p inside token i carries bit (ends[i] - 1 - p) of
    # the token's value, i.e. MSB first.
    shifts = ends[token_index] - np.arange(1, total_bits + 1)
    raw_bits = (values[token_index] >> shifts) & 1
    if pad:
        # The final partial byte is padded with 1-bits, as the scalar
        # writer does on flush.
        bits = np.ones(total_bits + pad, dtype=np.uint8)
        bits[:total_bits] = raw_bits
    else:
        bits = raw_bits.astype(np.uint8)
    data = np.packbits(bits)
    if byte_stuffing:
        data = stuff_byte_array(data)
    return data.tobytes()


def peek_words(
    data: bytes, byte_stuffing: bool = True
) -> "tuple[np.ndarray, int]":
    """Return 64-bit big-endian peek words for every byte of a stream.

    ``words[i]`` holds bytes ``i .. i+7`` of the (destuffed) payload,
    padded past the end with 1-bits, so the 32 bits starting at any bit
    offset ``p`` are ``(words[p >> 3] >> (32 - (p & 7))) & 0xFFFFFFFF``
    — one table-driven Huffman resolution plus its magnitude bits per
    peek, with no bit-at-a-time reads.  Returned as a ``uint64`` array
    so vectorized consumers can gather windows without boxing scalars
    (the scalar walk converts to a list at its own call site).  The
    second element is the number of real payload bits.
    """
    if byte_stuffing:
        data = destuff_bytes(data)
    count = len(data)
    extended = np.empty(count + 8, dtype=np.uint8)
    extended[:count] = np.frombuffer(data, dtype=np.uint8)
    extended[count:] = 0xFF
    words = extended[:count + 1].astype(np.uint64)
    for offset in range(1, 8):
        words <<= np.uint64(8)
        words |= extended[offset:count + 1 + offset]
    return words, count * 8
