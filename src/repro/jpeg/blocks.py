"""Partitioning images into 8x8 blocks and reassembling them.

JPEG operates on non-overlapping 8x8 blocks.  Images whose dimensions are
not multiples of eight are padded by edge replication (the strategy used
by libjpeg) before partitioning, and the padding is stripped again on
reassembly.
"""

from __future__ import annotations

import numpy as np

from repro.jpeg.dct import BLOCK_SIZE


def pad_to_block_multiple(channel: np.ndarray) -> np.ndarray:
    """Pad a 2-D channel with edge replication to a multiple of 8."""
    channel = _require_channel(channel)
    height, width = channel.shape
    pad_h = (-height) % BLOCK_SIZE
    pad_w = (-width) % BLOCK_SIZE
    if pad_h == 0 and pad_w == 0:
        return channel
    return np.pad(channel, ((0, pad_h), (0, pad_w)), mode="edge")


def partition_blocks(channel: np.ndarray) -> tuple:
    """Split a 2-D channel into a stack of 8x8 blocks.

    Returns
    -------
    (blocks, grid_shape):
        ``blocks`` has shape ``(N, 8, 8)`` where blocks are ordered
        row-major over the block grid.  ``grid_shape`` is the number of
        block rows and columns, needed by :func:`assemble_blocks`.
    """
    padded = pad_to_block_multiple(channel)
    rows = padded.shape[0] // BLOCK_SIZE
    cols = padded.shape[1] // BLOCK_SIZE
    blocks = (
        padded.reshape(rows, BLOCK_SIZE, cols, BLOCK_SIZE)
        .transpose(0, 2, 1, 3)
        .reshape(rows * cols, BLOCK_SIZE, BLOCK_SIZE)
    )
    return blocks, (rows, cols)


def assemble_blocks(
    blocks: np.ndarray, grid_shape: tuple, image_shape: tuple
) -> np.ndarray:
    """Reassemble blocks produced by :func:`partition_blocks`.

    Parameters
    ----------
    blocks:
        Stack of shape ``(rows * cols, 8, 8)``.
    grid_shape:
        ``(rows, cols)`` of the block grid.
    image_shape:
        Original ``(height, width)``; padding added before partitioning is
        cropped away.
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    rows, cols = grid_shape
    if blocks.shape != (rows * cols, BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(
            f"blocks shape {blocks.shape} does not match grid {grid_shape}"
        )
    channel = (
        blocks.reshape(rows, cols, BLOCK_SIZE, BLOCK_SIZE)
        .transpose(0, 2, 1, 3)
        .reshape(rows * BLOCK_SIZE, cols * BLOCK_SIZE)
    )
    height, width = image_shape
    return channel[:height, :width]


def partition_blocks_batch(stack: np.ndarray) -> tuple:
    """8x8-block an ``(N, H, W)`` channel stack without copying.

    Pads by edge replication to block multiples (exactly like
    :func:`partition_blocks`) and returns a ``(N, rows, cols, 8, 8)``
    view plus the ``(rows, cols)`` grid shape; blocks of each image are
    ordered row-major over the grid.  The single shared batched blocking
    implementation behind the codec pipelines and the frequency
    analysis.
    """
    stack = np.asarray(stack)
    if stack.ndim != 3:
        raise ValueError(f"expected an (N, H, W) stack, got {stack.shape}")
    count, height, width = stack.shape
    pad_h = (-height) % BLOCK_SIZE
    pad_w = (-width) % BLOCK_SIZE
    if pad_h or pad_w:
        stack = np.pad(
            stack, ((0, 0), (0, pad_h), (0, pad_w)), mode="edge"
        )
    rows = stack.shape[1] // BLOCK_SIZE
    cols = stack.shape[2] // BLOCK_SIZE
    blocked = stack.reshape(
        count, rows, BLOCK_SIZE, cols, BLOCK_SIZE
    ).transpose(0, 1, 3, 2, 4)
    return blocked, (rows, cols)


def level_shift(channel: np.ndarray) -> np.ndarray:
    """Shift pixel values from ``[0, 255]`` to ``[-128, 127]``."""
    return np.asarray(channel, dtype=np.float64) - 128.0


def inverse_level_shift(channel: np.ndarray) -> np.ndarray:
    """Undo :func:`level_shift` and clip back into ``[0, 255]``."""
    return np.clip(np.asarray(channel, dtype=np.float64) + 128.0, 0.0, 255.0)


def _require_channel(channel: np.ndarray) -> np.ndarray:
    channel = np.asarray(channel, dtype=np.float64)
    if channel.ndim != 2:
        raise ValueError(f"expected a 2-D channel, got shape {channel.shape}")
    if channel.shape[0] == 0 or channel.shape[1] == 0:
        raise ValueError("channel must be non-empty")
    return channel
