"""High-level JPEG-style encoders and decoders.

Two codecs are provided:

* :class:`GrayscaleJpegCodec` — single-channel images, one quantization
  table, DC/AC luminance Huffman tables.
* :class:`ColorJpegCodec` — RGB images through the YCbCr path with
  optional 4:2:0 chroma subsampling, separate luma/chroma quantization
  and Huffman tables.

Both produce a real entropy-coded byte stream (so compressed sizes and
compression ratios are measured, not estimated), and both can decode it
back for accuracy-after-compression experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.jpeg import color as color_mod
from repro.jpeg.bitstream import BitReader, BitWriter, decode_magnitude
from repro.jpeg.blocks import (
    assemble_blocks,
    inverse_level_shift,
    level_shift,
    partition_blocks,
)
from repro.jpeg.dct import block_dct2d, block_idct2d
from repro.jpeg.huffman import HuffmanTable
from repro.jpeg.metrics import compression_ratio, psnr
from repro.jpeg.quantization import QuantizationTable
from repro.jpeg.rle import (
    EOB_SYMBOL,
    MAX_ZERO_RUN,
    ZRL_SYMBOL,
    block_symbol_histograms,
    encode_ac,
    encode_dc,
)
from repro.jpeg.zigzag import inverse_zigzag, zigzag

# Fixed marker-segment overheads of a baseline JFIF file (bytes).
_SOI_BYTES = 2
_EOI_BYTES = 2
_APP0_BYTES = 18
_DQT_BYTES_PER_TABLE = 2 + 2 + 1 + 64
_SOS_FIXED_BYTES = 2 + 6
_SOS_PER_COMPONENT_BYTES = 2
_SOF_FIXED_BYTES = 2 + 8
_SOF_PER_COMPONENT_BYTES = 3
_DHT_FIXED_BYTES = 2 + 2


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing (and decompressing) one image.

    Attributes
    ----------
    payload_bytes:
        Size of the entropy-coded scan data.
    header_bytes:
        Size of the marker segments (SOI, APP0, DQT, SOF, DHT, SOS, EOI).
    original_bytes:
        Size of the uncompressed image (one byte per sample).
    reconstructed:
        The decoded image, same shape as the input, float64 in [0, 255].
    """

    payload_bytes: int
    header_bytes: int
    original_bytes: int
    reconstructed: np.ndarray

    @property
    def total_bytes(self) -> int:
        """Compressed file size including headers."""
        return self.payload_bytes + self.header_bytes

    @property
    def compression_ratio(self) -> float:
        """Original size divided by total compressed size."""
        return compression_ratio(self.original_bytes, self.total_bytes)

    @property
    def payload_compression_ratio(self) -> float:
        """Original size divided by entropy-coded payload size only."""
        return compression_ratio(self.original_bytes, self.payload_bytes)

    def psnr(self, original: np.ndarray) -> float:
        """PSNR of the reconstruction against ``original``."""
        return psnr(original, self.reconstructed)


@dataclass
class EncodedChannel:
    """Entropy-coded representation of one channel."""

    data: bytes
    grid_shape: tuple
    channel_shape: tuple
    block_count: int


class _ChannelCoder:
    """Encode / decode one channel with a given quantization table."""

    def __init__(
        self,
        table: QuantizationTable,
        dc_huffman: HuffmanTable,
        ac_huffman: HuffmanTable,
    ) -> None:
        self.table = table
        self.dc_huffman = dc_huffman
        self.ac_huffman = ac_huffman

    def quantized_blocks(self, channel: np.ndarray) -> tuple:
        """Return (zig-zag quantized blocks ``(N, 64)``, grid shape)."""
        blocks, grid_shape = partition_blocks(level_shift(channel))
        coefficients = block_dct2d(blocks)
        quantized = self.table.quantize(coefficients)
        return zigzag(quantized), grid_shape

    def encode(self, channel: np.ndarray) -> EncodedChannel:
        """Entropy-code one channel into bytes."""
        zz_blocks, grid_shape = self.quantized_blocks(channel)
        writer = BitWriter()
        previous_dc = 0
        for block in zz_blocks:
            dc_token = encode_dc(int(block[0]), previous_dc)
            previous_dc = int(block[0])
            writer.write_code(self.dc_huffman.encode(dc_token.symbol))
            writer.write_bits(dc_token.amplitude_bits, dc_token.amplitude_length)
            for token in encode_ac(block[1:]):
                writer.write_code(self.ac_huffman.encode(token.symbol))
                writer.write_bits(token.amplitude_bits, token.amplitude_length)
        return EncodedChannel(
            data=writer.getvalue(),
            grid_shape=grid_shape,
            channel_shape=(channel.shape[0], channel.shape[1]),
            block_count=zz_blocks.shape[0],
        )

    def decode(self, encoded: EncodedChannel) -> np.ndarray:
        """Decode an :class:`EncodedChannel` back into a pixel channel."""
        reader = BitReader(encoded.data)
        zz_blocks = np.zeros((encoded.block_count, 64), dtype=np.int32)
        previous_dc = 0
        for block_index in range(encoded.block_count):
            category = self.dc_huffman.decode_symbol(reader)
            bits = reader.read_bits(category)
            previous_dc += decode_magnitude(bits, category)
            zz_blocks[block_index, 0] = previous_dc
            position = 1
            while position < 64:
                symbol = self.ac_huffman.decode_symbol(reader)
                if symbol == EOB_SYMBOL:
                    break
                if symbol == ZRL_SYMBOL:
                    position += MAX_ZERO_RUN + 1
                    continue
                run = symbol >> 4
                category = symbol & 0x0F
                position += run
                if position >= 64:
                    raise ValueError("AC stream overruns block during decode")
                bits = reader.read_bits(category)
                zz_blocks[block_index, position] = decode_magnitude(
                    bits, category
                )
                position += 1
        quantized = inverse_zigzag(zz_blocks)
        coefficients = self.table.dequantize(quantized)
        blocks = block_idct2d(coefficients)
        channel = assemble_blocks(
            blocks, encoded.grid_shape, encoded.channel_shape
        )
        return inverse_level_shift(channel)


class GrayscaleJpegCodec:
    """Baseline-JPEG-style codec for single-channel images.

    Parameters
    ----------
    table:
        The quantization table used for every block; this is the object
        DeepN-JPEG replaces.
    optimize_huffman:
        If true, build per-image optimized Huffman tables from the symbol
        histogram (like ``jpeg_set_optimize`` in libjpeg); otherwise the
        Annex K standard tables are used.
    """

    def __init__(
        self, table: QuantizationTable, optimize_huffman: bool = False
    ) -> None:
        self.table = table
        self.optimize_huffman = bool(optimize_huffman)
        self._standard_dc = HuffmanTable.standard_dc_luminance()
        self._standard_ac = HuffmanTable.standard_ac_luminance()

    def _coder_for(self, channel: np.ndarray) -> _ChannelCoder:
        if not self.optimize_huffman:
            return _ChannelCoder(self.table, self._standard_dc, self._standard_ac)
        base = _ChannelCoder(self.table, self._standard_dc, self._standard_ac)
        zz_blocks, _ = base.quantized_blocks(channel)
        dc_counts, ac_counts = block_symbol_histograms(zz_blocks)
        dc_table = HuffmanTable.from_frequencies(dc_counts, "dc-optimized")
        ac_table = HuffmanTable.from_frequencies(ac_counts, "ac-optimized")
        return _ChannelCoder(self.table, dc_table, ac_table)

    def encode(self, image: np.ndarray) -> EncodedChannel:
        """Entropy-code a 2-D image; returns the encoded channel."""
        image = _require_grayscale(image)
        return self._coder_for(image).encode(image)

    def decode(self, encoded: EncodedChannel) -> np.ndarray:
        """Decode an image previously produced by :meth:`encode`."""
        return _ChannelCoder(
            self.table, self._standard_dc, self._standard_ac
        ).decode(encoded) if not self.optimize_huffman else self._decode_optimized(encoded)

    def _decode_optimized(self, encoded: EncodedChannel) -> np.ndarray:
        raise NotImplementedError(
            "decoding with per-image optimized tables requires keeping the "
            "tables alongside the EncodedChannel; use compress() for "
            "round-trip measurements"
        )

    def compress(self, image: np.ndarray) -> CompressionResult:
        """Round-trip one image and report sizes and the reconstruction."""
        image = _require_grayscale(image)
        coder = self._coder_for(image)
        encoded = coder.encode(image)
        reconstructed = coder.decode(encoded)
        header = self.header_bytes(coder)
        return CompressionResult(
            payload_bytes=len(encoded.data),
            header_bytes=header,
            original_bytes=int(image.shape[0] * image.shape[1]),
            reconstructed=reconstructed,
        )

    def header_bytes(self, coder: _ChannelCoder = None) -> int:
        """Marker-segment overhead of a single-component baseline file."""
        if coder is None:
            coder = _ChannelCoder(self.table, self._standard_dc, self._standard_ac)
        dht = (
            2 * _DHT_FIXED_BYTES
            + coder.dc_huffman.header_cost_bytes()
            + coder.ac_huffman.header_cost_bytes()
        )
        return (
            _SOI_BYTES
            + _APP0_BYTES
            + _DQT_BYTES_PER_TABLE
            + _SOF_FIXED_BYTES
            + _SOF_PER_COMPONENT_BYTES
            + dht
            + _SOS_FIXED_BYTES
            + _SOS_PER_COMPONENT_BYTES
            + _EOI_BYTES
        )


class ColorJpegCodec:
    """Baseline-JPEG-style codec for RGB images via the YCbCr path.

    Parameters
    ----------
    luma_table:
        Quantization table for the Y channel.
    chroma_table:
        Quantization table for Cb and Cr.  If omitted, the luma table is
        reused (DeepN-JPEG designs its table from luma statistics and the
        paper applies the framework per colour component).
    subsample_chroma:
        Apply 4:2:0 chroma subsampling before coding (the common default).
    """

    def __init__(
        self,
        luma_table: QuantizationTable,
        chroma_table: QuantizationTable = None,
        subsample_chroma: bool = True,
        optimize_huffman: bool = False,
    ) -> None:
        self.luma_table = luma_table
        self.chroma_table = chroma_table if chroma_table is not None else luma_table
        self.subsample_chroma = bool(subsample_chroma)
        self.optimize_huffman = bool(optimize_huffman)
        self._dc_luma = HuffmanTable.standard_dc_luminance()
        self._ac_luma = HuffmanTable.standard_ac_luminance()
        self._dc_chroma = HuffmanTable.standard_dc_chrominance()
        self._ac_chroma = HuffmanTable.standard_ac_chrominance()

    def _coders(self, planes: "list[np.ndarray]") -> "list[_ChannelCoder]":
        tables = [self.luma_table, self.chroma_table, self.chroma_table]
        huffmans = [
            (self._dc_luma, self._ac_luma),
            (self._dc_chroma, self._ac_chroma),
            (self._dc_chroma, self._ac_chroma),
        ]
        coders = []
        for plane, table, (dc_table, ac_table) in zip(planes, tables, huffmans):
            if self.optimize_huffman:
                base = _ChannelCoder(table, dc_table, ac_table)
                zz_blocks, _ = base.quantized_blocks(plane)
                dc_counts, ac_counts = block_symbol_histograms(zz_blocks)
                dc_table = HuffmanTable.from_frequencies(dc_counts, "dc-optimized")
                ac_table = HuffmanTable.from_frequencies(ac_counts, "ac-optimized")
            coders.append(_ChannelCoder(table, dc_table, ac_table))
        return coders

    def compress(self, image: np.ndarray) -> CompressionResult:
        """Round-trip one RGB image and report sizes and the reconstruction."""
        image = _require_rgb(image)
        height, width, _ = image.shape
        ycbcr = color_mod.rgb_to_ycbcr(image)
        planes = [ycbcr[..., 0]]
        if self.subsample_chroma:
            planes.append(color_mod.subsample_420(ycbcr[..., 1]))
            planes.append(color_mod.subsample_420(ycbcr[..., 2]))
        else:
            planes.append(ycbcr[..., 1])
            planes.append(ycbcr[..., 2])
        coders = self._coders(planes)
        payload = 0
        decoded_planes = []
        for plane, coder in zip(planes, coders):
            encoded = coder.encode(plane)
            payload += len(encoded.data)
            decoded_planes.append(coder.decode(encoded))
        luma = decoded_planes[0]
        if self.subsample_chroma:
            cb = color_mod.upsample_420(decoded_planes[1], (height, width))
            cr = color_mod.upsample_420(decoded_planes[2], (height, width))
        else:
            cb, cr = decoded_planes[1], decoded_planes[2]
        reconstructed = color_mod.ycbcr_to_rgb(np.stack([luma, cb, cr], axis=-1))
        return CompressionResult(
            payload_bytes=payload,
            header_bytes=self.header_bytes(coders),
            original_bytes=int(height * width * 3),
            reconstructed=reconstructed,
        )

    def header_bytes(self, coders: "list[_ChannelCoder]" = None) -> int:
        """Marker-segment overhead of a three-component baseline file."""
        if coders is None:
            coders = self._coders(
                [np.zeros((8, 8))] * 3
            ) if not self.optimize_huffman else None
        if coders is None:
            raise ValueError(
                "optimized Huffman header size depends on the image; pass coders"
            )
        unique_tables = {id(self.luma_table), id(self.chroma_table)}
        dht = 0
        seen = set()
        for coder in coders:
            for table in (coder.dc_huffman, coder.ac_huffman):
                if id(table) in seen:
                    continue
                seen.add(id(table))
                dht += _DHT_FIXED_BYTES + table.header_cost_bytes()
        return (
            _SOI_BYTES
            + _APP0_BYTES
            + len(unique_tables) * _DQT_BYTES_PER_TABLE
            + _SOF_FIXED_BYTES
            + 3 * _SOF_PER_COMPONENT_BYTES
            + dht
            + _SOS_FIXED_BYTES
            + 3 * _SOS_PER_COMPONENT_BYTES
            + _EOI_BYTES
        )


def _require_grayscale(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(
            f"expected a 2-D grayscale image, got shape {image.shape}"
        )
    return image


def _require_rgb(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[-1] != 3:
        raise ValueError(
            f"expected an (H, W, 3) RGB image, got shape {image.shape}"
        )
    return image
