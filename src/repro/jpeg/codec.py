"""High-level JPEG-style encoders and decoders.

Two codecs are provided:

* :class:`GrayscaleJpegCodec` — single-channel images, one quantization
  table, DC/AC luminance Huffman tables.
* :class:`ColorJpegCodec` — RGB images through the YCbCr path with
  optional 4:2:0 chroma subsampling, separate luma/chroma quantization
  and Huffman tables.

Both produce a real entropy-coded byte stream (so compressed sizes and
compression ratios are measured, not estimated), and both can decode it
back for accuracy-after-compression experiments.

Entropy coding runs on a NumPy-vectorized fast path: the whole block
stack is tokenized at once (:func:`repro.jpeg.rle.tokenize_blocks`),
Huffman codes are assigned with dense lookup arrays and the bit stream
is packed in one pass (:func:`repro.jpeg.bitstream.pack_bits`).
Decoding resolves Huffman codes against precomputed 16-bit windows and
a dense LUT instead of walking the stream bit by bit.  The scalar
reference implementations are kept as ``encode_scalar`` /
``decode_scalar`` and the tests assert both paths produce bit-identical
streams.  ``compress`` additionally skips the redundant entropy decode
of the round trip: the reconstruction is computed directly from the
quantized coefficients, which is exactly what decoding the (lossless)
entropy layer would return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.jpeg import color as color_mod
from repro.jpeg.bitstream import (
    _CATEGORY_LUT,
    _CATEGORY_MASK_LUT,
    BitReader,
    BitWriter,
    decode_magnitude,
    pack_bits,
    peek_words,
)
from repro.jpeg.blocks import level_shift, partition_blocks_batch
from repro.jpeg.dct import _DCT8, _DCT8_T
from repro.jpeg.fsm_decode import decode_streams
from repro.jpeg.huffman import HuffmanTable
from repro.jpeg.metrics import CompressedSizeMixin, psnr
from repro.jpeg.quantization import QuantizationTable
from repro.jpeg.rle import (
    DC_SYMBOL_OFFSET,
    EOB_SYMBOL,
    MAX_ZERO_RUN,
    ZRL_SYMBOL,
    block_run_stats,
    block_symbol_histograms,
    encode_ac,
    encode_dc,
    tokenize_blocks,
)
from repro.jpeg.zigzag import INVERSE_ZIGZAG_ORDER, ZIGZAG_ORDER

# Fixed marker-segment overheads of a baseline JFIF file (bytes).
_SOI_BYTES = 2
_EOI_BYTES = 2
_APP0_BYTES = 18
_DQT_BYTES_PER_TABLE = 2 + 2 + 1 + 64
_SOS_FIXED_BYTES = 2 + 6
_SOS_PER_COMPONENT_BYTES = 2
_SOF_FIXED_BYTES = 2 + 8
_SOF_PER_COMPONENT_BYTES = 3
_DHT_FIXED_BYTES = 2 + 2


@dataclass(frozen=True)
class CompressionResult(CompressedSizeMixin):
    """Outcome of compressing (and decompressing) one image.

    Attributes
    ----------
    payload_bytes:
        Size of the entropy-coded scan data.
    header_bytes:
        Size of the marker segments (SOI, APP0, DQT, SOF, DHT, SOS, EOI).
    original_bytes:
        Size of the uncompressed image (one byte per sample).
    reconstructed:
        The decoded image, same shape as the input, float64 in [0, 255].

    ``total_bytes`` / ``compression_ratio`` / ``payload_compression_ratio``
    come from :class:`~repro.jpeg.metrics.CompressedSizeMixin`.
    """

    payload_bytes: int
    header_bytes: int
    original_bytes: int
    reconstructed: np.ndarray

    def psnr(self, original: np.ndarray) -> float:
        """PSNR of the reconstruction against ``original``."""
        return psnr(original, self.reconstructed)


@dataclass
class EncodedChannel:
    """Entropy-coded representation of one channel.

    When the stream was coded with per-image optimized Huffman tables,
    ``dc_huffman``/``ac_huffman`` carry those tables so the stream can be
    decoded without out-of-band knowledge (mirroring the DHT segments a
    real JPEG file would embed).  ``None`` means the standard tables.
    """

    data: bytes
    grid_shape: tuple
    channel_shape: tuple
    block_count: int
    dc_huffman: Optional[HuffmanTable] = None
    ac_huffman: Optional[HuffmanTable] = None


@dataclass
class EncodedImage:
    """Entropy-coded representation of one RGB image (three planes).

    ``planes`` holds the Y, Cb, Cr :class:`EncodedChannel` streams in
    that order (chroma planes at subsampled resolution when
    ``subsample_chroma`` is set); ``image_shape`` is the original
    ``(height, width)`` needed to invert the subsampling.
    """

    planes: "tuple[EncodedChannel, ...]"
    image_shape: tuple
    subsample_chroma: bool


class _ChannelCoder:
    """Encode / decode one channel with a given quantization table."""

    def __init__(
        self,
        table: QuantizationTable,
        dc_huffman: HuffmanTable,
        ac_huffman: HuffmanTable,
    ) -> None:
        self.table = table
        self.dc_huffman = dc_huffman
        self.ac_huffman = ac_huffman
        # Quantization steps in zig-zag order: quantizing after the
        # zig-zag gather is elementwise-identical to quantizing before
        # it, and saves a pass over the (N, 8, 8) stack.
        self._zz_steps = np.asarray(table.values, dtype=np.float64).reshape(
            64
        )[ZIGZAG_ORDER].copy()
        # One dense code table over the combined DC/AC symbol space of
        # the token stream (AC at 0–255, DC at 256–511), so a mixed
        # stream is coded with two fancy-indexing gathers.
        ac_codes, ac_lengths = ac_huffman.encode_arrays()
        dc_codes, dc_lengths = dc_huffman.encode_arrays()
        self._codes = np.concatenate([ac_codes, dc_codes])
        self._code_lengths = np.concatenate([ac_lengths, dc_lengths])
        # Constants of the fused fast path: the EOB code and a table of
        # 0–3 repetitions of the ZRL code (63 AC slots never need more).
        self._eob_code = int(ac_codes[EOB_SYMBOL])
        self._eob_length = int(ac_lengths[EOB_SYMBOL])
        zrl_code = int(ac_codes[ZRL_SYMBOL])
        zrl_length = int(ac_lengths[ZRL_SYMBOL])
        chain = [0]
        for _ in range(3):
            chain.append((chain[-1] << zrl_length) | zrl_code)
        self._zrl_chain_codes = np.asarray(chain, dtype=np.int64)
        self._zrl_chain_lengths = np.arange(4, dtype=np.int64) * zrl_length
        # Pre-fused lookup tables: entry values already carry the Huffman
        # code shifted left by the magnitude category, so coding a token
        # is one gather plus an OR with its magnitude bits.  A length of
        # 0 marks a symbol absent from the table.
        categories = np.arange(17, dtype=np.int64)
        self._dc_fused_codes = dc_codes[:17] << categories
        self._dc_fused_lengths = np.where(
            dc_lengths[:17] > 0, dc_lengths[:17] + categories, 0
        )
        ac_cat = np.arange(256, dtype=np.int64) & 0x0F
        self._ac_fused_codes = ac_codes << ac_cat
        self._ac_fused_lengths = np.where(
            ac_lengths > 0, ac_lengths + ac_cat, 0
        )
        # Static worst case of a fused AC entry ([ZRL]*3 + code +
        # magnitude bits); when it fits 63 bits no per-call overflow
        # check is needed.  Degenerate optimized tables missing ZRL/EOB
        # route through the general path.
        ac_worst = int(self._ac_fused_lengths.max())
        self._max_fused_bits = 3 * zrl_length + ac_worst
        self._fast_tables = zrl_length > 0 and self._eob_length > 0

    def quantized_batch(self, images: np.ndarray) -> tuple:
        """Zig-zag quantized blocks of an ``(N, H, W)`` stack.

        Inlined equivalent of partition → DCT → quantize → zig-zag, with
        the quantization performed after the zig-zag gather (elementwise,
        so bit-identical) and the 8x8 blocking done with views.  Returns
        ``(zz_blocks, grid_shape)``, where blocks of image ``i`` occupy
        the contiguous range ``[i * rows * cols, (i + 1) * rows * cols)``.
        The single shared quantization pipeline behind both the
        per-image and the batch paths.
        """
        blocks, (rows, cols) = partition_blocks_batch(level_shift(images))
        coefficients = (_DCT8 @ blocks) @ _DCT8_T
        flat = coefficients.reshape(images.shape[0] * rows * cols, 64)
        zz = np.rint(flat[:, ZIGZAG_ORDER] / self._zz_steps).astype(np.int64)
        return zz, (rows, cols)

    def quantized_blocks(self, channel: np.ndarray) -> tuple:
        """Return (zig-zag quantized blocks ``(N, 64)``, grid shape)."""
        return self.quantized_batch(
            np.asarray(channel, dtype=np.float64)[np.newaxis]
        )

    def reconstruct_batch(
        self, zz_blocks: np.ndarray, count: int, grid_shape: tuple,
        image_shape: tuple,
    ) -> np.ndarray:
        """``(N, H, W)`` images from a batch of zig-zag quantized blocks."""
        rows, cols = grid_shape
        height, width = image_shape
        dequantized = (zz_blocks * self._zz_steps)[:, INVERSE_ZIGZAG_ORDER]
        coefficients = dequantized.reshape(count, rows, cols, 8, 8)
        blocks = (_DCT8_T @ coefficients) @ _DCT8
        channels = (
            blocks.transpose(0, 1, 3, 2, 4).reshape(count, rows * 8, cols * 8)
        )
        pixels = channels[:, :height, :width] + 128.0
        return np.clip(pixels, 0.0, 255.0, out=pixels)

    def reconstruct(
        self, zz_blocks: np.ndarray, grid_shape: tuple, channel_shape: tuple
    ) -> np.ndarray:
        """Pixel channel from zig-zag quantized blocks (inverse pipeline)."""
        return self.reconstruct_batch(
            zz_blocks, 1, grid_shape, channel_shape
        )[0]

    # ------------------------------------------------------------------
    # Vectorized fast path
    # ------------------------------------------------------------------

    def entropy_code(
        self, zz_blocks: np.ndarray, reset_interval: int = 0
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Huffman-code a block stack into packable ``(values, lengths)``.

        Returns parallel ``(values, lengths)`` arrays ready for
        :func:`~repro.jpeg.bitstream.pack_bits`, plus the number of
        entries contributed by each block (for batch splitting).  The
        fused fast path emits ONE entry per coded unit — a DC entry
        fuses Huffman code and magnitude bits; a nonzero-AC entry
        additionally fuses its preceding ZRL escapes — which keeps the
        arrays small and avoids scattering per-token records.  Inputs
        that could overflow the 63-bit fusion budget (or need symbols a
        degenerate optimized table lacks) fall back to the general
        token-stream path; both produce identical bit streams.
        """
        zz = np.asarray(zz_blocks, dtype=np.int64)
        if zz.ndim != 2 or zz.shape[1] != 64:
            raise ValueError(
                f"expected blocks of shape (N, 64), got {zz.shape}"
            )
        n_blocks = zz.shape[0]
        if n_blocks == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        if not self._fast_tables or self._max_fused_bits > 63:
            return self._entropy_code_general(zz, reset_interval)

        diffs, ac, rows, cols, ac_values, zrl_counts, runs, has_eob = (
            block_run_stats(zz, reset_interval)
        )
        n_nonzero = rows.shape[0]

        # One fused magnitude pass over DC diffs and AC values.
        magnitudes = np.concatenate([diffs, ac_values])
        absolutes = np.abs(magnitudes)
        try:
            categories = _CATEGORY_LUT[absolutes]
        except IndexError:
            # Some magnitude needs more than 16 bits; no baseline table
            # can code it.  The general path raises the right error
            # (ValueError for an AC category > 15, KeyError for a DC
            # category the table lacks).
            return self._entropy_code_general(zz, reset_interval)
        # T.81 one's complement: negatives add (2**category - 1); the
        # arithmetic sign mask replaces a `np.where` over two branches.
        amplitude_bits = magnitudes + (
            (magnitudes >> 63) & _CATEGORY_MASK_LUT[absolutes]
        )

        dc_categories = categories[:n_blocks]
        dc_lengths = self._dc_fused_lengths[dc_categories]
        if not dc_lengths.all():
            return self._entropy_code_general(zz, reset_interval)
        dc_values = self._dc_fused_codes[dc_categories] | amplitude_bits[
            :n_blocks
        ]

        if n_nonzero:
            symbols = ((runs & MAX_ZERO_RUN) << 4) | categories[n_blocks:]
            coded_lengths = self._ac_fused_lengths[symbols]
            if not coded_lengths.all():
                return self._entropy_code_general(zz, reset_interval)
            # Fuse [ZRL]*k + code + magnitude into one entry.
            coded = self._ac_fused_codes[symbols] | amplitude_bits[n_blocks:]
            ac_values = (
                self._zrl_chain_codes[zrl_counts] << coded_lengths
            ) | coded
            ac_lengths = self._zrl_chain_lengths[zrl_counts] + coded_lengths
            nonzeros_per_block = np.bincount(rows, minlength=n_blocks)
        else:
            nonzeros_per_block = np.zeros(n_blocks, dtype=np.int64)

        entries_per_block = nonzeros_per_block + 1
        entries_per_block += has_eob
        block_ends = np.cumsum(entries_per_block)
        block_starts = block_ends - entries_per_block
        total = int(block_ends[-1])

        buffer = np.empty((2, total), dtype=np.int64)
        values = buffer[0]
        lengths = buffer[1]
        values[block_starts] = dc_values
        lengths[block_starts] = dc_lengths
        if n_nonzero:
            first_nonzero_of_block = np.empty(n_blocks, dtype=np.int64)
            first_nonzero_of_block[0] = 0
            np.cumsum(
                nonzeros_per_block[:-1], out=first_nonzero_of_block[1:]
            )
            offsets = block_starts + 1
            offsets -= first_nonzero_of_block
            positions = offsets[rows] + np.arange(n_nonzero)
            values[positions] = ac_values
            lengths[positions] = ac_lengths
        eob_positions = block_ends[has_eob] - 1
        values[eob_positions] = self._eob_code
        lengths[eob_positions] = self._eob_length
        return values, lengths, entries_per_block

    def _entropy_code_general(
        self, zz_blocks: np.ndarray, reset_interval: int = 0
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Token-stream reference: one packable entry per token."""
        stream = tokenize_blocks(zz_blocks, reset_interval=reset_interval)
        symbols = stream.symbols
        codes = self._codes[symbols]
        code_lengths = self._code_lengths[symbols]
        if symbols.shape[0] and not code_lengths.all():
            missing = int(symbols[code_lengths == 0][0])
            table = (
                self.dc_huffman if missing >= DC_SYMBOL_OFFSET
                else self.ac_huffman
            )
            raise KeyError(
                f"symbol {missing % DC_SYMBOL_OFFSET:#x} not present in "
                f"Huffman table '{table.name}'"
            )
        values = (codes << stream.amplitude_lengths) | stream.amplitudes
        lengths = code_lengths + stream.amplitude_lengths
        return values, lengths, stream.block_token_counts

    def encode_quantized(self, zz_blocks: np.ndarray) -> bytes:
        """Entropy-code pre-quantized zig-zag blocks into a byte stream."""
        values, lengths, _ = self.entropy_code(zz_blocks)
        return pack_bits(values, lengths)

    def encode(self, channel: np.ndarray) -> EncodedChannel:
        """Entropy-code one channel into bytes (vectorized fast path)."""
        zz_blocks, grid_shape = self.quantized_blocks(channel)
        return EncodedChannel(
            data=self.encode_quantized(zz_blocks),
            grid_shape=grid_shape,
            channel_shape=(channel.shape[0], channel.shape[1]),
            block_count=zz_blocks.shape[0],
        )

    #: Below this many streams the batched FSM decoder's fixed NumPy
    #: dispatch overhead outweighs its throughput (it parallelizes across
    #: streams, so a near-empty batch has nothing to vectorize over);
    #: measured crossover on a 1-CPU container is ~20 streams.
    FSM_MIN_STREAMS = 16

    def decode_to_zigzag(self, data: bytes, block_count: int) -> np.ndarray:
        """Entropy-decode a byte stream into ``(block_count, 64)`` blocks.

        A single stream offers the stream-parallel FSM decoder nothing
        to vectorize over, so this path stays on the sequential
        table-driven walk; :meth:`decode_to_zigzag_batch` is the fast
        path for dataset-level decoding.
        """
        return self.decode_to_zigzag_walk(data, block_count)

    def decode_to_zigzag_batch(
        self, datas: "list[bytes]", block_counts: "list[int]"
    ) -> "list[np.ndarray]":
        """Entropy-decode many streams in one batched FSM pass.

        All streams share this coder's Huffman tables (the dataset-level
        decode path: every image of a sweep decodes against the standard
        tables).  Flagged streams fall back to the sequential walk so
        malformed data raises exactly as the per-stream path does.
        Small batches (below :data:`FSM_MIN_STREAMS`) skip the FSM and
        walk each stream directly.
        """
        if len(datas) < self.FSM_MIN_STREAMS:
            return [
                self.decode_to_zigzag_walk(data, count)
                for data, count in zip(datas, block_counts)
            ]
        results, flagged = decode_streams(
            datas, block_counts, self.dc_huffman, self.ac_huffman
        )
        for index in flagged:
            results[index] = self.decode_to_zigzag_walk(
                datas[index], block_counts[index]
            )
        return results

    def decode_to_zigzag_walk(
        self, data: bytes, block_count: int
    ) -> np.ndarray:
        """Sequential reference decode (and error path) for one stream.

        Table-driven but scalar: Huffman codes are resolved in O(1)
        against 16-bit peek windows precomputed for every bit offset of
        the destuffed payload, walked one token at a time.  Kept as the
        bit-exact reference for the FSM decoder and as the path that
        raises precise errors on malformed streams.
        """
        words, total_bits = peek_words(data)
        dc_symbols, dc_lengths = self.dc_huffman.decode_lut()
        ac_symbols, ac_lengths = self.ac_huffman.decode_lut()
        zz_blocks = np.zeros((block_count, 64), dtype=np.int32)
        try:
            self._decode_walk(
                # The walk indexes words with Python ints; a plain list
                # avoids boxing a NumPy scalar per peek.
                words.tolist(), total_bits, zz_blocks, block_count,
                dc_symbols, dc_lengths, ac_symbols, ac_lengths,
            )
        except IndexError:
            # A code decoded from padding bits of a truncated stream can
            # push the cursor past the peek-word list.
            raise EOFError("bit stream exhausted") from None
        return zz_blocks

    def _decode_walk(
        self, words, total_bits, zz_blocks, block_count,
        dc_symbols, dc_lengths, ac_symbols, ac_lengths,
    ) -> None:
        position = 0
        previous_dc = 0
        for block_index in range(block_count):
            if position > total_bits:
                raise EOFError("bit stream exhausted")
            # 32 bits starting at `position`: enough for the longest
            # Huffman code (16) plus its magnitude bits (16).
            peek = (words[position >> 3] >> (32 - (position & 7))) & 0xFFFFFFFF
            window = peek >> 16
            category = dc_symbols[window]
            if category < 0:
                if position + 16 > total_bits:
                    raise EOFError("bit stream exhausted")
                raise ValueError(
                    f"invalid Huffman code in table '{self.dc_huffman.name}'"
                )
            if category:
                length = dc_lengths[window]
                amplitude = (peek >> (32 - length - category)) & (
                    (1 << category) - 1
                )
                position += length + category
                if amplitude >> (category - 1):
                    previous_dc += amplitude
                else:
                    previous_dc += amplitude - (1 << category) + 1
            else:
                position += dc_lengths[window]
            zz_blocks[block_index, 0] = previous_dc
            index = 1
            while index < 64:
                peek = (
                    words[position >> 3] >> (32 - (position & 7))
                ) & 0xFFFFFFFF
                window = peek >> 16
                symbol = ac_symbols[window]
                length = ac_lengths[window]
                position += length
                if symbol == EOB_SYMBOL:
                    break
                if symbol == ZRL_SYMBOL:
                    index += MAX_ZERO_RUN + 1
                    continue
                if symbol < 0:
                    # A code window that spills past the payload means
                    # the stream was cut short, not that the table is bad.
                    if position - length + 16 > total_bits:
                        raise EOFError("bit stream exhausted")
                    raise ValueError(
                        "invalid Huffman code in table "
                        f"'{self.ac_huffman.name}'"
                    )
                index += symbol >> 4
                if index >= 64:
                    raise ValueError(
                        "AC stream overruns block during decode"
                    )
                category = symbol & 0x0F
                amplitude = (peek >> (32 - length - category)) & (
                    (1 << category) - 1
                )
                position += category
                if amplitude >> (category - 1):
                    zz_blocks[block_index, index] = amplitude
                else:
                    zz_blocks[block_index, index] = (
                        amplitude - (1 << category) + 1
                    )
                index += 1
        # A valid decode never reads past the payload: the final token
        # ends at or before the last real bit (the remainder of the
        # closing byte is padding).  Any overrun means truncation.
        if position > total_bits:
            raise EOFError("bit stream exhausted")

    def decode(self, encoded: EncodedChannel) -> np.ndarray:
        """Decode an :class:`EncodedChannel` back into a pixel channel."""
        zz_blocks = self.decode_to_zigzag(encoded.data, encoded.block_count)
        return self.reconstruct(
            zz_blocks, encoded.grid_shape, encoded.channel_shape
        )

    # ------------------------------------------------------------------
    # Scalar reference path (kept for parity testing)
    # ------------------------------------------------------------------

    def encode_scalar(self, channel: np.ndarray) -> EncodedChannel:
        """Reference encoder: one token at a time through a BitWriter."""
        zz_blocks, grid_shape = self.quantized_blocks(channel)
        writer = BitWriter()
        previous_dc = 0
        for block in zz_blocks:
            dc_token = encode_dc(int(block[0]), previous_dc)
            previous_dc = int(block[0])
            writer.write_code(self.dc_huffman.encode(dc_token.symbol))
            writer.write_bits(dc_token.amplitude_bits, dc_token.amplitude_length)
            for token in encode_ac(block[1:]):
                writer.write_code(self.ac_huffman.encode(token.symbol))
                writer.write_bits(token.amplitude_bits, token.amplitude_length)
        return EncodedChannel(
            data=writer.getvalue(),
            grid_shape=grid_shape,
            channel_shape=(channel.shape[0], channel.shape[1]),
            block_count=zz_blocks.shape[0],
        )

    def decode_scalar(self, encoded: EncodedChannel) -> np.ndarray:
        """Reference decoder: bit-at-a-time through a BitReader."""
        reader = BitReader(encoded.data)
        zz_blocks = np.zeros((encoded.block_count, 64), dtype=np.int32)
        previous_dc = 0
        for block_index in range(encoded.block_count):
            category = self.dc_huffman.decode_symbol(reader)
            bits = reader.read_bits(category)
            previous_dc += decode_magnitude(bits, category)
            zz_blocks[block_index, 0] = previous_dc
            position = 1
            while position < 64:
                symbol = self.ac_huffman.decode_symbol(reader)
                if symbol == EOB_SYMBOL:
                    break
                if symbol == ZRL_SYMBOL:
                    position += MAX_ZERO_RUN + 1
                    continue
                run = symbol >> 4
                category = symbol & 0x0F
                position += run
                if position >= 64:
                    raise ValueError("AC stream overruns block during decode")
                bits = reader.read_bits(category)
                zz_blocks[block_index, position] = decode_magnitude(
                    bits, category
                )
                position += 1
        return self.reconstruct(
            zz_blocks, encoded.grid_shape, encoded.channel_shape
        )


class GrayscaleJpegCodec:
    """Baseline-JPEG-style codec for single-channel images.

    Parameters
    ----------
    table:
        The quantization table used for every block; this is the object
        DeepN-JPEG replaces.
    optimize_huffman:
        If true, build per-image optimized Huffman tables from the symbol
        histogram (like ``jpeg_set_optimize`` in libjpeg); otherwise the
        Annex K standard tables are used.
    """

    def __init__(
        self, table: QuantizationTable, optimize_huffman: bool = False
    ) -> None:
        self.table = table
        self.optimize_huffman = bool(optimize_huffman)
        self._standard_dc = HuffmanTable.standard_dc_luminance()
        self._standard_ac = HuffmanTable.standard_ac_luminance()
        self._cached_coder = _ChannelCoder(
            table, self._standard_dc, self._standard_ac
        )
        self._standard_header = None

    def _standard_coder(self) -> _ChannelCoder:
        return self._cached_coder

    def _optimized_coder(self, zz_blocks: np.ndarray) -> _ChannelCoder:
        return _optimized_channel_coder(self.table, zz_blocks)

    def spec(self) -> dict:
        """JSON-able description; rebuilds this codec via the registry."""
        return {
            "codec": "jpeg-grayscale",
            "table": self.table.to_json(),
            "optimize_huffman": self.optimize_huffman,
        }

    def encode(self, image: np.ndarray) -> EncodedChannel:
        """Entropy-code a 2-D image; returns the encoded channel.

        With ``optimize_huffman`` the per-image tables ride along on the
        returned :class:`EncodedChannel` so :meth:`decode` can invert the
        stream without out-of-band state.
        """
        image = _require_grayscale(image)
        coder = self._standard_coder()
        zz_blocks, grid_shape = coder.quantized_blocks(image)
        if self.optimize_huffman:
            coder = self._optimized_coder(zz_blocks)
        return EncodedChannel(
            data=coder.encode_quantized(zz_blocks),
            grid_shape=grid_shape,
            channel_shape=(image.shape[0], image.shape[1]),
            block_count=zz_blocks.shape[0],
            dc_huffman=coder.dc_huffman if self.optimize_huffman else None,
            ac_huffman=coder.ac_huffman if self.optimize_huffman else None,
        )

    def decode(self, encoded: EncodedChannel) -> np.ndarray:
        """Decode an image previously produced by :meth:`encode`."""
        if encoded.dc_huffman is None and encoded.ac_huffman is None:
            return self._cached_coder.decode(encoded)
        dc_table = encoded.dc_huffman or self._standard_dc
        ac_table = encoded.ac_huffman or self._standard_ac
        return _ChannelCoder(self.table, dc_table, ac_table).decode(encoded)

    def decode_batch(
        self, encoded_list: "list[EncodedChannel]"
    ) -> "list[np.ndarray]":
        """Decode many encoded channels at once.

        Channels carrying no per-image Huffman tables (the standard-
        table fleet a sweep produces) are entropy-decoded as one
        vectorized FSM batch; channels with their own tables decode
        individually.
        """
        results = [None] * len(encoded_list)
        shared = [
            index for index, encoded in enumerate(encoded_list)
            if encoded.dc_huffman is None and encoded.ac_huffman is None
        ]
        if shared:
            coder = self._cached_coder
            blocks_list = coder.decode_to_zigzag_batch(
                [encoded_list[index].data for index in shared],
                [encoded_list[index].block_count for index in shared],
            )
            for index, zz_blocks in zip(shared, blocks_list):
                encoded = encoded_list[index]
                results[index] = coder.reconstruct(
                    zz_blocks, encoded.grid_shape, encoded.channel_shape
                )
        for index, encoded in enumerate(encoded_list):
            if results[index] is None:
                results[index] = self.decode(encoded)
        return results

    def encode_to_bytes(self, image: np.ndarray) -> bytes:
        """Encode one image into a self-contained byte container.

        The container embeds the quantization table (and, with
        ``optimize_huffman``, the per-image Huffman tables), so
        :func:`repro.jpeg.container.decode_image_bytes` inverts it with
        no out-of-band state.
        """
        from repro.jpeg.container import pack_grayscale_image

        return pack_grayscale_image(self.encode(image), self.table)

    def compress(self, image: np.ndarray) -> CompressionResult:
        """Round-trip one image and report sizes and the reconstruction.

        The reconstruction is computed directly from the quantized
        coefficients: the entropy layer is lossless, so decoding the
        just-encoded stream would yield exactly the same blocks (the
        tests assert this equivalence against :meth:`decode`).
        """
        image = _require_grayscale(image)
        coder = self._standard_coder()
        zz_blocks, grid_shape = coder.quantized_blocks(image)
        if self.optimize_huffman:
            coder = self._optimized_coder(zz_blocks)
            header = self.header_bytes(coder)
        else:
            header = self._cached_header_bytes()
        data = coder.encode_quantized(zz_blocks)
        reconstructed = coder.reconstruct(
            zz_blocks, grid_shape, (image.shape[0], image.shape[1])
        )
        return CompressionResult(
            payload_bytes=len(data),
            header_bytes=header,
            original_bytes=int(image.shape[0] * image.shape[1]),
            reconstructed=reconstructed,
        )

    def _cached_header_bytes(self) -> int:
        if self._standard_header is None:
            self._standard_header = self.header_bytes(self._standard_coder())
        return self._standard_header

    def compress_batch(self, images: np.ndarray) -> "list[CompressionResult]":
        """Round-trip a stack of same-shaped images ``(N, H, W)`` at once.

        One coder and one set of Huffman tables are shared across the
        whole batch; blocking, DCT, quantization, tokenization and
        Huffman code assignment each run as a single vectorized pass
        over every block of every image.  Per-image byte streams are
        identical to what :meth:`compress` produces image by image.
        With ``optimize_huffman`` (per-image tables by definition) this
        falls back to the per-image path.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 3:
            raise ValueError(
                f"expected an (N, H, W) image stack, got shape {images.shape}"
            )
        if self.optimize_huffman:
            return [self.compress(image) for image in images]
        count, height, width = images.shape
        coder = self._standard_coder()
        zz_blocks, grid_shape = coder.quantized_batch(images)
        blocks_per_image = grid_shape[0] * grid_shape[1]
        values, lengths, block_tokens = coder.entropy_code(
            zz_blocks, reset_interval=blocks_per_image
        )
        tokens_per_image = np.add.reduceat(
            block_tokens, np.arange(0, count * blocks_per_image,
                                    blocks_per_image),
        )
        boundaries = np.concatenate(
            [[0], np.cumsum(tokens_per_image)]
        ).astype(np.int64)
        reconstructed = coder.reconstruct_batch(
            zz_blocks, count, grid_shape, (height, width)
        )
        header = self._cached_header_bytes()
        results = []
        for index in range(count):
            data = pack_bits(
                values[boundaries[index]:boundaries[index + 1]],
                lengths[boundaries[index]:boundaries[index + 1]],
            )
            results.append(
                CompressionResult(
                    payload_bytes=len(data),
                    header_bytes=header,
                    original_bytes=int(height * width),
                    reconstructed=reconstructed[index],
                )
            )
        return results

    def header_bytes(self, coder: "Optional[_ChannelCoder]" = None) -> int:
        """Marker-segment overhead of a single-component baseline file."""
        if coder is None:
            coder = self._standard_coder()
        dht = (
            2 * _DHT_FIXED_BYTES
            + coder.dc_huffman.header_cost_bytes()
            + coder.ac_huffman.header_cost_bytes()
        )
        return (
            _SOI_BYTES
            + _APP0_BYTES
            + _DQT_BYTES_PER_TABLE
            + _SOF_FIXED_BYTES
            + _SOF_PER_COMPONENT_BYTES
            + dht
            + _SOS_FIXED_BYTES
            + _SOS_PER_COMPONENT_BYTES
            + _EOI_BYTES
        )


class ColorJpegCodec:
    """Baseline-JPEG-style codec for RGB images via the YCbCr path.

    Parameters
    ----------
    luma_table:
        Quantization table for the Y channel.
    chroma_table:
        Quantization table for Cb and Cr.  If omitted, the luma table is
        reused (DeepN-JPEG designs its table from luma statistics and the
        paper applies the framework per colour component).
    subsample_chroma:
        Apply 4:2:0 chroma subsampling before coding (the common default).
    """

    def __init__(
        self,
        luma_table: QuantizationTable,
        chroma_table: Optional[QuantizationTable] = None,
        subsample_chroma: bool = True,
        optimize_huffman: bool = False,
    ) -> None:
        self.luma_table = luma_table
        self.chroma_table = chroma_table if chroma_table is not None else luma_table
        self.subsample_chroma = bool(subsample_chroma)
        self.optimize_huffman = bool(optimize_huffman)
        self._dc_luma = HuffmanTable.standard_dc_luminance()
        self._ac_luma = HuffmanTable.standard_ac_luminance()
        self._dc_chroma = HuffmanTable.standard_dc_chrominance()
        self._ac_chroma = HuffmanTable.standard_ac_chrominance()
        # Standard-table coders shared by every compress call (Cb and Cr
        # use the same coder; coders are stateless across images).
        luma_coder = _ChannelCoder(self.luma_table, self._dc_luma, self._ac_luma)
        chroma_coder = _ChannelCoder(
            self.chroma_table, self._dc_chroma, self._ac_chroma
        )
        self._plane_coders = [luma_coder, chroma_coder, chroma_coder]
        self._standard_header = None

    def _cached_header_bytes(self) -> int:
        if self._standard_header is None:
            self._standard_header = self.header_bytes(self._plane_coders)
        return self._standard_header

    def spec(self) -> dict:
        """JSON-able description; rebuilds this codec via the registry."""
        return {
            "codec": "jpeg-color",
            "luma_table": self.luma_table.to_json(),
            "chroma_table": self.chroma_table.to_json(),
            "subsample_chroma": self.subsample_chroma,
            "optimize_huffman": self.optimize_huffman,
        }

    def _planes_of(self, image: np.ndarray) -> "list[np.ndarray]":
        """The Y/Cb/Cr coding planes of one RGB image (subsampled chroma)."""
        ycbcr = color_mod.rgb_to_ycbcr(image)
        planes = [ycbcr[..., 0]]
        if self.subsample_chroma:
            planes.append(color_mod.subsample_420(ycbcr[..., 1]))
            planes.append(color_mod.subsample_420(ycbcr[..., 2]))
        else:
            planes.append(ycbcr[..., 1])
            planes.append(ycbcr[..., 2])
        return planes

    def _rgb_from_planes(
        self, decoded_planes: "list[np.ndarray]", image_shape: tuple
    ) -> np.ndarray:
        """Invert :meth:`_planes_of` on decoded pixel planes."""
        luma = decoded_planes[0]
        if self.subsample_chroma:
            cb = color_mod.upsample_420(decoded_planes[1], image_shape)
            cr = color_mod.upsample_420(decoded_planes[2], image_shape)
        else:
            cb, cr = decoded_planes[1], decoded_planes[2]
        return color_mod.ycbcr_to_rgb(np.stack([luma, cb, cr], axis=-1))

    def encode(self, image: np.ndarray) -> EncodedImage:
        """Entropy-code one RGB image into three per-plane byte streams.

        With ``optimize_huffman`` each plane's per-image tables ride
        along on its :class:`EncodedChannel` so :meth:`decode` can invert
        the streams without out-of-band state.
        """
        image = _require_rgb(image)
        planes = self._planes_of(image)
        encoded_planes = []
        for plane, coder in zip(planes, self._plane_coders):
            zz_blocks, grid_shape = coder.quantized_blocks(plane)
            if self.optimize_huffman:
                coder = _optimized_channel_coder(coder.table, zz_blocks)
            encoded_planes.append(
                EncodedChannel(
                    data=coder.encode_quantized(zz_blocks),
                    grid_shape=grid_shape,
                    channel_shape=(plane.shape[0], plane.shape[1]),
                    block_count=zz_blocks.shape[0],
                    dc_huffman=(
                        coder.dc_huffman if self.optimize_huffman else None
                    ),
                    ac_huffman=(
                        coder.ac_huffman if self.optimize_huffman else None
                    ),
                )
            )
        return EncodedImage(
            planes=tuple(encoded_planes),
            image_shape=(image.shape[0], image.shape[1]),
            subsample_chroma=self.subsample_chroma,
        )

    def decode(self, encoded: EncodedImage) -> np.ndarray:
        """Decode an RGB image previously produced by :meth:`encode`."""
        if len(encoded.planes) != 3:
            raise ValueError(
                f"expected 3 encoded planes, got {len(encoded.planes)}"
            )
        if encoded.subsample_chroma != self.subsample_chroma:
            raise ValueError(
                "encoded image subsampling does not match this codec"
            )
        coders = []
        for plane, coder in zip(encoded.planes, self._plane_coders):
            if plane.dc_huffman is not None or plane.ac_huffman is not None:
                coder = _ChannelCoder(
                    coder.table,
                    plane.dc_huffman or coder.dc_huffman,
                    plane.ac_huffman or coder.ac_huffman,
                )
            coders.append(coder)
        # Planes sharing one coder (Cb and Cr on the standard tables)
        # entropy-decode as a single FSM batch.
        groups = {}
        for index, coder in enumerate(coders):
            groups.setdefault(id(coder), (coder, []))[1].append(index)
        zz_by_plane = [None] * len(coders)
        for coder, indices in groups.values():
            blocks_list = coder.decode_to_zigzag_batch(
                [encoded.planes[index].data for index in indices],
                [encoded.planes[index].block_count for index in indices],
            )
            for index, zz_blocks in zip(indices, blocks_list):
                zz_by_plane[index] = zz_blocks
        decoded_planes = [
            coders[index].reconstruct(
                zz_by_plane[index],
                encoded.planes[index].grid_shape,
                encoded.planes[index].channel_shape,
            )
            for index in range(len(coders))
        ]
        return self._rgb_from_planes(decoded_planes, encoded.image_shape)

    def encode_to_bytes(self, image: np.ndarray) -> bytes:
        """Encode one RGB image into a self-contained byte container.

        See :meth:`GrayscaleJpegCodec.encode_to_bytes`; the color
        container embeds both quantization tables.
        """
        from repro.jpeg.container import pack_color_image

        return pack_color_image(
            self.encode(image), self.luma_table, self.chroma_table
        )

    def compress(self, image: np.ndarray) -> CompressionResult:
        """Round-trip one RGB image and report sizes and the reconstruction.

        Like :meth:`GrayscaleJpegCodec.compress`, each plane's
        reconstruction comes straight from its quantized coefficients
        (the entropy layer is lossless), so the stream is encoded but
        not redundantly decoded.
        """
        image = _require_rgb(image)
        height, width, _ = image.shape
        planes = self._planes_of(image)
        coders = []
        payload = 0
        decoded_planes = []
        for plane, coder in zip(planes, self._plane_coders):
            zz_blocks, grid_shape = coder.quantized_blocks(plane)
            if self.optimize_huffman:
                coder = _optimized_channel_coder(coder.table, zz_blocks)
            coders.append(coder)
            payload += len(coder.encode_quantized(zz_blocks))
            decoded_planes.append(
                coder.reconstruct(
                    zz_blocks, grid_shape, (plane.shape[0], plane.shape[1])
                )
            )
        reconstructed = self._rgb_from_planes(decoded_planes, (height, width))
        header = (
            self.header_bytes(coders) if self.optimize_huffman
            else self._cached_header_bytes()
        )
        return CompressionResult(
            payload_bytes=payload,
            header_bytes=header,
            original_bytes=int(height * width * 3),
            reconstructed=reconstructed,
        )

    def compress_batch(self, images: np.ndarray) -> "list[CompressionResult]":
        """Round-trip a stack of same-shaped RGB images ``(N, H, W, 3)``.

        Colour conversion, chroma subsampling and — per plane — blocking,
        DCT, quantization and entropy coding all run as single vectorized
        passes over the whole batch through the same shared
        :class:`_ChannelCoder` batch path the grayscale codec uses (the
        DC predictor resets at image boundaries, so per-image byte
        streams are identical to :meth:`compress`).  With
        ``optimize_huffman`` (per-image tables by definition) this falls
        back to the per-image path.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4 or images.shape[-1] != 3:
            raise ValueError(
                f"expected an (N, H, W, 3) image stack, got {images.shape}"
            )
        if self.optimize_huffman:
            return [self.compress(image) for image in images]
        count, height, width, _ = images.shape
        ycbcr = color_mod.rgb_to_ycbcr(images)
        planes = [ycbcr[..., 0]]
        if self.subsample_chroma:
            planes.append(color_mod.batch_subsample_420(ycbcr[..., 1]))
            planes.append(color_mod.batch_subsample_420(ycbcr[..., 2]))
        else:
            planes.append(ycbcr[..., 1])
            planes.append(ycbcr[..., 2])
        payloads = np.zeros(count, dtype=np.int64)
        decoded_planes = []
        for plane_stack, coder in zip(planes, self._plane_coders):
            zz_blocks, grid_shape = coder.quantized_batch(plane_stack)
            blocks_per_image = grid_shape[0] * grid_shape[1]
            values, lengths, block_tokens = coder.entropy_code(
                zz_blocks, reset_interval=blocks_per_image
            )
            tokens_per_image = np.add.reduceat(
                block_tokens,
                np.arange(0, count * blocks_per_image, blocks_per_image),
            )
            boundaries = np.concatenate(
                [[0], np.cumsum(tokens_per_image)]
            ).astype(np.int64)
            for index in range(count):
                payloads[index] += len(
                    pack_bits(
                        values[boundaries[index]:boundaries[index + 1]],
                        lengths[boundaries[index]:boundaries[index + 1]],
                    )
                )
            decoded_planes.append(
                coder.reconstruct_batch(
                    zz_blocks, count, grid_shape, plane_stack.shape[1:]
                )
            )
        luma = decoded_planes[0]
        if self.subsample_chroma:
            cb = color_mod.batch_upsample_420(
                decoded_planes[1], (height, width)
            )
            cr = color_mod.batch_upsample_420(
                decoded_planes[2], (height, width)
            )
        else:
            cb, cr = decoded_planes[1], decoded_planes[2]
        reconstructed = color_mod.ycbcr_to_rgb(
            np.stack([luma, cb, cr], axis=-1)
        )
        header = self._cached_header_bytes()
        return [
            CompressionResult(
                payload_bytes=int(payloads[index]),
                header_bytes=header,
                original_bytes=int(height * width * 3),
                reconstructed=reconstructed[index],
            )
            for index in range(count)
        ]

    def header_bytes(self, coders: "list[_ChannelCoder]" = None) -> int:
        """Marker-segment overhead of a three-component baseline file."""
        if coders is None:
            if self.optimize_huffman:
                raise ValueError(
                    "optimized Huffman header size depends on the image; "
                    "pass coders"
                )
            coders = self._plane_coders
        unique_tables = {id(self.luma_table), id(self.chroma_table)}
        dht = 0
        seen = set()
        for coder in coders:
            for table in (coder.dc_huffman, coder.ac_huffman):
                if id(table) in seen:
                    continue
                seen.add(id(table))
                dht += _DHT_FIXED_BYTES + table.header_cost_bytes()
        return (
            _SOI_BYTES
            + _APP0_BYTES
            + len(unique_tables) * _DQT_BYTES_PER_TABLE
            + _SOF_FIXED_BYTES
            + 3 * _SOF_PER_COMPONENT_BYTES
            + dht
            + _SOS_FIXED_BYTES
            + 3 * _SOS_PER_COMPONENT_BYTES
            + _EOI_BYTES
        )


def _optimized_channel_coder(
    table: QuantizationTable, zz_blocks: np.ndarray
) -> _ChannelCoder:
    """Per-image optimized coder built from the stream's symbol histograms."""
    dc_counts, ac_counts = block_symbol_histograms(zz_blocks)
    return _ChannelCoder(
        table,
        HuffmanTable.from_frequencies(dc_counts, "dc-optimized"),
        HuffmanTable.from_frequencies(ac_counts, "ac-optimized"),
    )


def _require_grayscale(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(
            f"expected a 2-D grayscale image, got shape {image.shape}"
        )
    return image


def _require_rgb(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[-1] != 3:
        raise ValueError(
            f"expected an (H, W, 3) RGB image, got shape {image.shape}"
        )
    return image
