"""Colour-space conversion and chroma subsampling.

JPEG compresses RGB images in the YCbCr colour space so that the two
chrominance channels can be quantized (and optionally subsampled) more
aggressively than luminance.  The conversion follows the JFIF convention
(ITU-R BT.601 coefficients, full-range, Cb/Cr offset by 128).
"""

from __future__ import annotations

import numpy as np

# BT.601 luma coefficients used by JFIF.
_KR = 0.299
_KG = 0.587
_KB = 0.114


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert an ``(..., H, W, 3)`` RGB image (or stack) to YCbCr.

    Parameters
    ----------
    rgb:
        Array of shape ``(H, W, 3)`` — or any stack with trailing channel
        axis, e.g. ``(N, H, W, 3)`` — with values in ``[0, 255]`` (any
        float or integer dtype).  The conversion is elementwise, so a
        whole dataset converts in one vectorized call.

    Returns
    -------
    numpy.ndarray
        Float64 array of the same shape; channel 0 is luma Y in
        ``[0, 255]``, channels 1 and 2 are Cb and Cr centred on 128.
    """
    rgb = _require_color_image(rgb)
    r = rgb[..., 0]
    g = rgb[..., 1]
    b = rgb[..., 2]
    y = _KR * r + _KG * g + _KB * b
    cb = 128.0 + (b - y) / (2.0 * (1.0 - _KB))
    cr = 128.0 + (r - y) / (2.0 * (1.0 - _KR))
    return np.stack([y, cb, cr], axis=-1)


def rgb_to_luma(rgb: np.ndarray) -> np.ndarray:
    """Luma (Y) channel of an ``(..., H, W, 3)`` RGB image or stack.

    Identical to ``rgb_to_ycbcr(rgb)[..., 0]`` (same BT.601 weighted sum
    in the same order) without materializing the Cb/Cr planes — the
    frequency analysis of whole colour datasets only needs Y.
    """
    rgb = _require_color_image(rgb)
    return _KR * rgb[..., 0] + _KG * rgb[..., 1] + _KB * rgb[..., 2]


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Convert an ``(..., H, W, 3)`` YCbCr image (or stack) back to RGB.

    Values are clipped to ``[0, 255]``; the output dtype is float64 so the
    caller decides when (or whether) to round to integers.
    """
    ycbcr = _require_color_image(ycbcr)
    y = ycbcr[..., 0]
    cb = ycbcr[..., 1] - 128.0
    cr = ycbcr[..., 2] - 128.0
    r = y + 2.0 * (1.0 - _KR) * cr
    b = y + 2.0 * (1.0 - _KB) * cb
    g = (y - _KR * r - _KB * b) / _KG
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(rgb, 0.0, 255.0)


def subsample_420(channel: np.ndarray) -> np.ndarray:
    """Subsample one chroma channel by 2x in both dimensions (4:2:0).

    Each output sample is the mean of the corresponding 2x2 block.  Odd
    dimensions are handled by edge replication before averaging.
    """
    channel = np.asarray(channel, dtype=np.float64)
    if channel.ndim != 2:
        raise ValueError(f"expected a 2-D channel, got shape {channel.shape}")
    height, width = channel.shape
    pad_h = height % 2
    pad_w = width % 2
    if pad_h or pad_w:
        channel = np.pad(channel, ((0, pad_h), (0, pad_w)), mode="edge")
    return channel.reshape(
        channel.shape[0] // 2, 2, channel.shape[1] // 2, 2
    ).mean(axis=(1, 3))


def upsample_420(channel: np.ndarray, shape: tuple) -> np.ndarray:
    """Invert :func:`subsample_420` by nearest-neighbour replication.

    Parameters
    ----------
    channel:
        The subsampled 2-D channel.
    shape:
        Target ``(height, width)`` of the full-resolution channel.
    """
    channel = np.asarray(channel, dtype=np.float64)
    if channel.ndim != 2:
        raise ValueError(f"expected a 2-D channel, got shape {channel.shape}")
    height, width = shape
    upsampled = np.repeat(np.repeat(channel, 2, axis=0), 2, axis=1)
    return upsampled[:height, :width]


def batch_subsample_420(channels: np.ndarray) -> np.ndarray:
    """4:2:0-subsample a stack ``(N, H, W)`` of chroma channels at once.

    Per-image results are bit-identical to :func:`subsample_420` (same
    2x2 means in the same order); odd dimensions are edge-replicated.
    """
    channels = np.asarray(channels, dtype=np.float64)
    if channels.ndim != 3:
        raise ValueError(
            f"expected an (N, H, W) channel stack, got shape {channels.shape}"
        )
    _, height, width = channels.shape
    pad_h = height % 2
    pad_w = width % 2
    if pad_h or pad_w:
        channels = np.pad(
            channels, ((0, 0), (0, pad_h), (0, pad_w)), mode="edge"
        )
    return channels.reshape(
        channels.shape[0], channels.shape[1] // 2, 2, channels.shape[2] // 2, 2
    ).mean(axis=(2, 4))


def batch_upsample_420(channels: np.ndarray, shape: tuple) -> np.ndarray:
    """Invert :func:`batch_subsample_420` by nearest-neighbour replication."""
    channels = np.asarray(channels, dtype=np.float64)
    if channels.ndim != 3:
        raise ValueError(
            f"expected an (N, H, W) channel stack, got shape {channels.shape}"
        )
    height, width = shape
    upsampled = np.repeat(np.repeat(channels, 2, axis=1), 2, axis=2)
    return upsampled[:, :height, :width]


def _require_color_image(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim < 3 or image.shape[-1] != 3:
        raise ValueError(
            f"expected an (..., H, W, 3) colour image, got shape {image.shape}"
        )
    return image
