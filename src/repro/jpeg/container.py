"""Versioned byte containers for entropy-coded images.

A container is a self-contained artifact: it carries the quantization
table(s), the Huffman table spec (when per-image optimized tables were
used) and the entropy-coded bitstream(s), so a stream compressed on one
machine can be decoded on another with no out-of-band state — the
serving counterpart of the DHT/DQT segments a real JPEG file embeds.
Round-trips are exact: ``unpack_container(pack_*(...))`` reproduces the
:class:`~repro.jpeg.codec.EncodedChannel` /
:class:`~repro.jpeg.codec.EncodedImage` byte for byte.

Layout (all integers little-endian)::

    magic   b"DNJC"
    version u8  (currently 1)
    kind    u8  (0 = grayscale channel, 1 = color image)
    ... kind-specific records (tables, then channel streams) ...

Per-plane Huffman tables are stored as their T.81 ``BITS``/``HUFFVAL``
lists (the canonical identity); quantization tables as 64 raw bytes in
row-major order (steps are integers in [1, 255] by construction).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.jpeg.codec import (
    ColorJpegCodec,
    EncodedChannel,
    EncodedImage,
    GrayscaleJpegCodec,
)
from repro.jpeg.huffman import MAX_CODE_LENGTH, HuffmanTable
from repro.jpeg.quantization import QuantizationTable

CONTAINER_MAGIC = b"DNJC"
CONTAINER_VERSION = 1

KIND_GRAYSCALE = 0
KIND_COLOR = 1


class ContainerError(ValueError):
    """A byte container is malformed, truncated or unsupported."""


class _Writer:
    def __init__(self) -> None:
        self._parts: "list[bytes]" = []

    def u8(self, value: int) -> None:
        self._parts.append(struct.pack("<B", value))

    def u32(self, value: int) -> None:
        self._parts.append(struct.pack("<I", value))

    def raw(self, data: bytes) -> None:
        self._parts.append(data)

    def sized(self, data: bytes) -> None:
        self.u32(len(data))
        self.raw(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._offset = 0

    def u8(self) -> int:
        return struct.unpack_from("<B", self._take(1))[0]

    def u32(self) -> int:
        return struct.unpack_from("<I", self._take(4))[0]

    def raw(self, size: int) -> bytes:
        return self._take(size)

    def sized(self) -> bytes:
        return self.raw(self.u32())

    def done(self) -> bool:
        return self._offset == len(self._data)

    def _take(self, size: int) -> bytes:
        end = self._offset + size
        if end > len(self._data):
            raise ContainerError(
                f"container truncated: wanted {size} bytes at offset "
                f"{self._offset}, have {len(self._data) - self._offset}"
            )
        chunk = self._data[self._offset:end]
        self._offset = end
        return chunk


def _write_quantization_table(writer: _Writer, table: QuantizationTable) -> None:
    name = table.name.encode("utf-8")
    if len(name) > 255:
        raise ContainerError("quantization table name exceeds 255 bytes")
    writer.u8(len(name))
    writer.raw(name)
    writer.raw(bytes(int(step) for step in table.values.reshape(-1)))


def _read_quantization_table(reader: _Reader) -> QuantizationTable:
    name = reader.raw(reader.u8()).decode("utf-8")
    values = np.frombuffer(reader.raw(64), dtype=np.uint8)
    return QuantizationTable(
        values.reshape(8, 8).astype(np.float64), name=name
    )


def _write_huffman_table(writer: _Writer, table: HuffmanTable) -> None:
    name = table.name.encode("utf-8")
    if len(name) > 255:
        raise ContainerError("Huffman table name exceeds 255 bytes")
    writer.u8(len(name))
    writer.raw(name)
    writer.raw(bytes(table.bits))
    writer.u32(len(table.values))
    writer.raw(bytes(table.values))


def _read_huffman_table(reader: _Reader) -> HuffmanTable:
    name = reader.raw(reader.u8()).decode("utf-8")
    bits = list(reader.raw(MAX_CODE_LENGTH))
    values = list(reader.raw(reader.u32()))
    return HuffmanTable(bits=bits, values=values, name=name)


def _write_channel(writer: _Writer, encoded: EncodedChannel) -> None:
    height, width = encoded.channel_shape
    rows, cols = encoded.grid_shape
    for value in (height, width, rows, cols, encoded.block_count):
        writer.u32(int(value))
    embedded = (
        encoded.dc_huffman is not None or encoded.ac_huffman is not None
    )
    if embedded and (encoded.dc_huffman is None or encoded.ac_huffman is None):
        raise ContainerError(
            "optimized streams must embed both DC and AC Huffman tables"
        )
    writer.u8(1 if embedded else 0)
    if embedded:
        _write_huffman_table(writer, encoded.dc_huffman)
        _write_huffman_table(writer, encoded.ac_huffman)
    writer.sized(encoded.data)


def _read_channel(reader: _Reader) -> EncodedChannel:
    height, width, rows, cols, block_count = (reader.u32() for _ in range(5))
    dc_huffman = ac_huffman = None
    if reader.u8():
        dc_huffman = _read_huffman_table(reader)
        ac_huffman = _read_huffman_table(reader)
    return EncodedChannel(
        data=reader.sized(),
        grid_shape=(rows, cols),
        channel_shape=(height, width),
        block_count=block_count,
        dc_huffman=dc_huffman,
        ac_huffman=ac_huffman,
    )


def _write_header(writer: _Writer, kind: int) -> None:
    writer.raw(CONTAINER_MAGIC)
    writer.u8(CONTAINER_VERSION)
    writer.u8(kind)


def _read_header(reader: _Reader) -> int:
    magic = reader.raw(len(CONTAINER_MAGIC))
    if magic != CONTAINER_MAGIC:
        raise ContainerError(f"bad container magic {magic!r}")
    version = reader.u8()
    if version != CONTAINER_VERSION:
        raise ContainerError(
            f"unsupported container version {version} "
            f"(this build reads version {CONTAINER_VERSION})"
        )
    return reader.u8()


def pack_grayscale_image(
    encoded: EncodedChannel, table: QuantizationTable
) -> bytes:
    """Pack one encoded grayscale channel and its table into a container."""
    writer = _Writer()
    _write_header(writer, KIND_GRAYSCALE)
    _write_quantization_table(writer, table)
    _write_channel(writer, encoded)
    return writer.getvalue()


def pack_color_image(
    encoded: EncodedImage,
    luma_table: QuantizationTable,
    chroma_table: QuantizationTable,
) -> bytes:
    """Pack one encoded RGB image and its tables into a container."""
    if len(encoded.planes) != 3:
        raise ContainerError(
            f"expected 3 encoded planes, got {len(encoded.planes)}"
        )
    writer = _Writer()
    _write_header(writer, KIND_COLOR)
    writer.u8(1 if encoded.subsample_chroma else 0)
    writer.u32(int(encoded.image_shape[0]))
    writer.u32(int(encoded.image_shape[1]))
    _write_quantization_table(writer, luma_table)
    _write_quantization_table(writer, chroma_table)
    for plane in encoded.planes:
        _write_channel(writer, plane)
    return writer.getvalue()


def unpack_container(data: bytes) -> tuple:
    """Parse a container into ``(kind, encoded, tables)``.

    ``kind`` is ``"grayscale"`` (``encoded`` an
    :class:`~repro.jpeg.codec.EncodedChannel`, ``tables`` a one-tuple of
    its :class:`~repro.jpeg.quantization.QuantizationTable`) or
    ``"color"`` (``encoded`` an :class:`~repro.jpeg.codec.EncodedImage`,
    ``tables`` the ``(luma, chroma)`` pair).  Trailing bytes are
    rejected, so the container boundary is unambiguous in concatenated
    streams handled by the caller.
    """
    reader = _Reader(data)
    kind = _read_header(reader)
    if kind == KIND_GRAYSCALE:
        table = _read_quantization_table(reader)
        encoded = _read_channel(reader)
        result = ("grayscale", encoded, (table,))
    elif kind == KIND_COLOR:
        subsample = bool(reader.u8())
        image_shape = (reader.u32(), reader.u32())
        luma_table = _read_quantization_table(reader)
        chroma_table = _read_quantization_table(reader)
        planes = tuple(_read_channel(reader) for _ in range(3))
        encoded = EncodedImage(
            planes=planes,
            image_shape=image_shape,
            subsample_chroma=subsample,
        )
        result = ("color", encoded, (luma_table, chroma_table))
    else:
        raise ContainerError(f"unknown container kind {kind}")
    if not reader.done():
        raise ContainerError("trailing bytes after container payload")
    return result


def decode_image_bytes(data: bytes) -> np.ndarray:
    """Decode a container straight to pixels using its embedded tables.

    This is the edge-side entry point: no fitted pipeline or codec
    object is needed, only the container bytes.
    """
    kind, encoded, tables = unpack_container(data)
    if kind == "grayscale":
        return GrayscaleJpegCodec(tables[0]).decode(encoded)
    codec = ColorJpegCodec(
        tables[0], tables[1], subsample_chroma=encoded.subsample_chroma
    )
    return codec.decode(encoded)
