"""Two-dimensional type-II DCT and its inverse for 8x8 JPEG blocks.

The forward transform matches ITU-T T.81 Annex A: an orthonormal 2-D
DCT-II applied independently to every 8x8 block of level-shifted pixel
values.  The implementation is matrix based (``C @ block @ C.T``) which
vectorises cleanly over stacks of blocks and is exact up to floating
point, and is verified in the tests against ``scipy.fft.dctn``.
"""

from __future__ import annotations

import numpy as np

BLOCK_SIZE = 8


def dct_matrix(n: int = BLOCK_SIZE) -> np.ndarray:
    """Return the ``n x n`` orthonormal DCT-II matrix ``C``.

    The 1-D transform of a column vector ``x`` is ``C @ x``; the 2-D
    transform of a block ``B`` is ``C @ B @ C.T``.
    """
    k = np.arange(n).reshape(-1, 1)
    i = np.arange(n).reshape(1, -1)
    matrix = np.cos((2 * i + 1) * k * np.pi / (2 * n))
    matrix *= np.sqrt(2.0 / n)
    matrix[0, :] = np.sqrt(1.0 / n)
    return matrix


_DCT8 = dct_matrix(BLOCK_SIZE)
_DCT8_T = np.ascontiguousarray(_DCT8.T)


def dct2d(block: np.ndarray) -> np.ndarray:
    """Forward orthonormal 2-D DCT-II of a single 8x8 block."""
    block = _require_block(block)
    return _DCT8 @ block @ _DCT8.T


def idct2d(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dct2d` for a single 8x8 coefficient block."""
    coefficients = _require_block(coefficients)
    return _DCT8.T @ coefficients @ _DCT8


def block_dct2d(blocks: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of a stack of blocks of shape ``(N, 8, 8)``.

    Batched matrix products (``C @ block @ C.T``); bit-identical to the
    equivalent einsum contraction but without its per-call planning
    overhead, which dominates for small stacks.
    """
    blocks = _require_block_stack(blocks)
    return (_DCT8 @ blocks) @ _DCT8_T


def block_idct2d(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of a stack of coefficient blocks ``(N, 8, 8)``."""
    coefficients = _require_block_stack(coefficients)
    return (_DCT8_T @ coefficients) @ _DCT8


def _require_block(block: np.ndarray) -> np.ndarray:
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(
            f"expected an 8x8 block, got shape {block.shape}"
        )
    return block


def _require_block_stack(blocks: np.ndarray) -> np.ndarray:
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.ndim != 3 or blocks.shape[1:] != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(
            f"expected blocks of shape (N, 8, 8), got {blocks.shape}"
        )
    return blocks
