"""Vectorized stream-parallel Huffman decode.

Replaces the sequential Python loop in
:meth:`repro.jpeg.codec._ChannelCoder._decode_walk` for the dataset
path: decoding *many* entropy-coded streams that share one Huffman
table pair.  Instead of speculating transitions for every bit position
(which pays for ~8 positions per real token), the decoder runs the
scalar walk's token loop *once*, but each step is a NumPy pass across
every stream still inside its current block:

1.  Every stream's destuffed payload is concatenated into one buffer,
    each followed by a 16-byte ``0xFF`` guard (the same 1-bit padding
    :func:`repro.jpeg.bitstream.peek_words` appends, so windows that
    overlap the end of a payload are bit-identical to the scalar
    walk's).  One 64-bit peek-word array and one 16-bit window array
    (one window per bit position) cover the whole buffer.
2.  Blocks are decoded in lockstep: per block index, a vectorized DC
    step (category, amplitude, DPCM difference) followed by an AC
    token loop over a shrinking *active set* — streams drop out as
    their block hits EOB or fills 64 slots, exactly the scalar
    ``while index < 64``.  Per token, one window gather plus three
    2**16-entry LUT gathers (slot advance, bit advance, classification
    flags) replace all per-symbol branching.
3.  AC coefficient writes are not performed in the loop: (position,
    destination) pairs are recorded and every amplitude is extracted,
    sign-decoded and scattered in one batched pass at the end.

Each step mirrors the walk exactly — positions are the walk's
positions, not speculative ones — so decoded output is identical by
construction.  Error handling keeps exact parity without paying for it
in the hot path: the decoder only *flags* streams on which the walk
would raise (invalid Huffman window, block overrun, zero-category AC
symbol, or any position past the payload) and the caller re-decodes
just the flagged streams through the scalar walk, which raises the
identical exception.  Positions are monotone and clamped at a
per-stream cap of ``payload_bits + 8``, so every overrun the walk can
hit — including its ``IndexError``-mapped-to-``EOFError`` paths —
reduces to a position check here.

The parallelism is across streams: throughput grows with batch size,
and a batch of one gains nothing (the caller keeps single streams on
the scalar walk).
"""

import numpy as np

from repro.jpeg.bitstream import destuff_bytes

#: Guard bytes appended after every stream in the concatenated buffer.
#: 16 bytes of 0xFF guarantee (a) windows that overlap a payload's end
#: read the same 1-bit padding the scalar peek words contain, and (b)
#: the 8-byte word read at a stream's cap position stays inside the
#: buffer without touching the next stream's bytes.
GUARD_BYTES = 16

#: Soft limit on bit positions per decode super-batch; bounds peak
#: memory (~4 bytes per position across the window/word arrays).  The
#: token loop's per-iteration cost is batch-width-independent overhead
#: plus element work, so chunks should hold as many streams as memory
#: allows.
DEFAULT_CHUNK_POSITIONS = 1 << 24

_EOB = 0x00
_ZRL = 0xF0


def _decode_magnitude_vec(amplitudes: np.ndarray, categories: np.ndarray):
    """Vectorized :func:`repro.jpeg.bitstream.decode_magnitude`."""
    amp = amplitudes.astype(np.int64)
    cat = categories.astype(np.int64)
    top_bit = amp >> np.maximum(cat - 1, 0)
    return np.where(top_bit == 0, amp - (np.int64(1) << cat) + 1, amp)


def _amplitudes(words, positions, code_lengths, categories):
    """Magnitude bits following each Huffman code, as int64."""
    peek = (words[positions >> 3] >> (32 - (positions & 7)).astype(np.uint64))
    shifts = code_lengths.astype(np.uint64) + categories.astype(np.uint64)
    masks = (np.uint64(1) << categories.astype(np.uint64)) - np.uint64(1)
    return ((peek >> (np.uint64(32) - shifts)) & masks).astype(np.int64)


def _ac_luts(ac_table):
    """Per-window AC token LUTs, cached on the table object.

    For each of the 2**16 windows: ``slot_adv`` is the zig-zag slots the
    token accounts for (``run + 1``; 16 for ZRL; 64 — instant block
    termination — for EOB and invalid windows), ``pos_adv`` the bits it
    consumes (code plus magnitude) and ``emit``/``bad``/``normal`` the
    boolean classification masks, so the token loop needs no per-symbol
    branching — one fancy gather per decision.
    """
    try:
        return ac_table._fsm_ac_luts
    except AttributeError:
        pass
    symbols, lengths = ac_table.decode_arrays()
    invalid = symbols < 0
    normal = ~invalid & (symbols != _EOB) & (symbols != _ZRL)
    category = (symbols & 0x0F).astype(np.int16)

    slot_adv = ((symbols >> 4) + 1).astype(np.int16)  # ZRL: 15 + 1
    slot_adv[symbols == _EOB] = 64
    slot_adv[invalid] = 64

    pos_adv = lengths.astype(np.int16)
    pos_adv[normal] += category[normal]
    pos_adv[invalid] = 0

    emit = normal & (category > 0)
    bad = invalid | (normal & (category == 0))

    luts = (slot_adv, pos_adv, emit, bad, normal)
    for array in luts:
        array.setflags(write=False)
    object.__setattr__(ac_table, "_fsm_ac_luts", luts)
    return luts


def decode_streams(
    datas, block_counts, dc_table, ac_table,
    chunk_positions: int = DEFAULT_CHUNK_POSITIONS,
):
    """Decode many entropy-coded streams sharing one table pair.

    Parameters
    ----------
    datas:
        Byte streams (still byte-stuffed) to decode.
    block_counts:
        Expected block count per stream.
    dc_table, ac_table:
        The shared :class:`repro.jpeg.huffman.HuffmanTable` pair.
    chunk_positions:
        Soft per-super-batch bit-position budget; bounds peak memory.

    Returns
    -------
    (results, flagged):
        ``results[s]`` is the ``(block_counts[s], 64)`` int32 zig-zag
        block array for stream ``s`` (garbage for flagged streams);
        ``flagged`` lists stream indices the scalar walk would raise
        on — the caller must re-decode those through the reference
        path to surface the exact exception.
    """
    datas = list(datas)
    block_counts = [int(count) for count in block_counts]
    if len(datas) != len(block_counts):
        raise ValueError("datas and block_counts length mismatch")
    if not datas:
        return [], []
    payloads = [destuff_bytes(data) for data in datas]
    ac_luts = _ac_luts(ac_table)
    dc_arrays = dc_table.decode_arrays()
    ac_arrays = ac_table.decode_arrays()

    results = [None] * len(datas)
    flagged = []
    start = 0
    while start < len(payloads):
        stop = start + 1
        positions = 8 * (len(payloads[start]) + GUARD_BYTES)
        while stop < len(payloads):
            extra = 8 * (len(payloads[stop]) + GUARD_BYTES)
            if positions + extra > chunk_positions:
                break
            positions += extra
            stop += 1
        chunk_results, chunk_flags = _decode_chunk(
            payloads[start:stop], block_counts[start:stop],
            ac_luts, dc_arrays, ac_arrays,
        )
        results[start:stop] = chunk_results
        flagged.extend(start + index for index in chunk_flags)
        start = stop
    return results, flagged


def _decode_chunk(payloads, block_counts, ac_luts, dc_arrays, ac_arrays):
    """Decode one super-batch of destuffed payloads."""
    ac_slot_lut, ac_pos_lut, ac_emit_lut, ac_bad_lut, ac_normal_lut = ac_luts
    dc_symbols, dc_lengths = dc_arrays
    ac_symbols, ac_lengths = ac_arrays
    stream_count = len(payloads)
    counts = np.asarray(block_counts, dtype=np.int64)
    max_blocks = int(counts.max()) if stream_count else 0
    if max_blocks == 0:
        return [np.zeros((0, 64), dtype=np.int32)] * stream_count, []

    sizes = np.array([len(payload) for payload in payloads], dtype=np.int64)
    region_bytes = sizes + GUARD_BYTES
    base = np.zeros(stream_count + 1, dtype=np.int64)
    np.cumsum(region_bytes, out=base[1:])
    total_bytes = int(base[-1])

    buffer = np.full(total_bytes, 0xFF, dtype=np.uint8)
    for index, payload in enumerate(payloads):
        if payload:
            buffer[base[index]:base[index] + sizes[index]] = np.frombuffer(
                payload, dtype=np.uint8
            )

    word_count = total_bytes - 7
    words = buffer[:word_count].astype(np.uint64)
    for offset in range(1, 8):
        words <<= np.uint64(8)
        words |= buffer[offset:offset + word_count]

    # 16-bit Huffman windows at every bit position: column o of row i is
    # the window starting at bit 8*i + o (uint16 truncation is the mask).
    win16 = np.empty((word_count, 8), dtype=np.uint16)
    for offset in range(8):
        win16[:, offset] = (words >> np.uint64(48 - offset)).astype(np.uint16)
    win16 = win16.reshape(-1)

    stream_starts = 8 * base[:stream_count]
    payload_bits = 8 * sizes
    # Cap sentinel: strictly past the payload (so reaching it always
    # flags) yet low enough that the 8-byte word read at the cap stays
    # inside the stream's own guard region.
    caps = stream_starts + payload_bits + 8

    bad = np.zeros(stream_count, dtype=bool)
    cursor = stream_starts.copy()
    dc_diff = np.zeros((stream_count, max_blocks), dtype=np.int64)
    zigzag = np.zeros((stream_count, max_blocks, 64), dtype=np.int32)
    zz_flat = zigzag.reshape(-1)
    # The token loop records every visited token by *reference* — the
    # arrays it would rebind anyway — and a single batched pass after
    # the loop classifies tokens, extracts amplitudes and raises flags.
    # That keeps the sequential part of the decode down to: gather the
    # window, advance the slot and the cursor, retire finished blocks.
    rec_pos, rec_slot, rec_dest, rec_stream = [], [], [], []
    dc_pos, dc_dest = [], []

    for block in range(max_blocks):
        rows = np.nonzero((counts > block) & ~bad)[0]
        if not rows.shape[0]:
            break
        # --- DC token: the walk's per-block head --------------------
        pos = cursor[rows]
        window = win16[pos]
        category = dc_symbols[window]
        invalid = (category < 0) | (pos >= caps[rows])
        if invalid.any():
            bad[rows[invalid]] = True
            keep = ~invalid
            rows = rows[keep]
            pos = pos[keep]
            window = window[keep]
            category = category[keep]
            if not rows.shape[0]:
                continue
        dc_pos.append(pos)
        dc_dest.append(rows * max_blocks + block)
        pos = np.minimum(pos + dc_lengths[window] + category, caps[rows])

        # --- AC tokens: lanes retire as their block terminates ------
        # EOB, a full block and an invalid window (slot advance 64) all
        # push a lane's slot past 63; a flagged-to-be stream that is
        # still below 64 slots keeps walking garbage harmlessly until
        # its block fills — the batched pass flags it either way.
        # Retired lanes are handled *lazily*: their position freezes
        # (the masked advance) so the block-end cursor survives, and
        # every eighth iteration a checkpoint writes those cursors back
        # and compacts the dead lanes away.  In between, a dead lane
        # re-gathers the same garbage token — pure element work, while
        # eager per-iteration bookkeeping costs ~7 NumPy passes.  Dead
        # lanes' recorded tokens are masked out in the batched pass by
        # their pre-advance slot.
        active = rows
        slot = np.ones(rows.shape[0], dtype=np.int64)
        active_caps = caps[rows]
        dest = active * (max_blocks * 64) + block * 64
        alive = np.ones(rows.shape[0], dtype=bool)
        iteration = 0
        while True:
            window = win16[pos]
            slot = slot + ac_slot_lut[window]
            rec_pos.append(pos)
            rec_slot.append(slot)
            rec_dest.append(dest)
            rec_stream.append(active)
            advance = ac_pos_lut[window] * alive
            pos = pos + advance
            np.minimum(pos, active_caps, out=pos)
            np.logical_and(alive, slot < 64, out=alive)
            iteration += 1
            if iteration & 7:
                continue
            # Checkpoint: retire dead lanes (positions are frozen at
            # their block-end value, so the write-back is exact).
            dead = np.nonzero(~alive)[0]
            if not dead.shape[0]:
                continue
            cursor[active[dead]] = pos[dead]
            keep = np.nonzero(alive)[0]
            if not keep.shape[0]:
                break
            active = active[keep]
            pos = pos[keep]
            slot = slot[keep]
            active_caps = active_caps[keep]
            dest = dest[keep]
            alive = np.ones(keep.shape[0], dtype=bool)

    # --- Batched token classification + amplitude extraction --------
    if rec_pos:
        positions = np.concatenate(rec_pos)
        slots = np.concatenate(rec_slot)
        dests = np.concatenate(rec_dest)
        streams = np.concatenate(rec_stream)
        window = win16[positions]
        # Walk raise conditions per token: invalid window or
        # zero-category run/size, or block overrun on a run/size token
        # (the walk's index >= 64 check; slot is the post-advance value
        # run + index + 1).  Tokens a retired lane recorded before its
        # lazy compaction are no tokens of the walk at all — identified
        # (and masked) by a pre-advance slot already past 63.
        bad_token = ac_bad_lut[window]
        bad_token = bad_token | (ac_normal_lut[window] & (slots >= 65))
        bad_token &= (slots - ac_slot_lut[window]) < 64
        if bad_token.any():
            bad[streams[bad_token]] = True
        # A run/size token with category > 0 lands its coefficient at
        # slot - 1 unless the block overran.
        emit = ac_emit_lut[window] & (slots <= 64)
        hit = np.nonzero(emit)[0]
        if hit.shape[0]:
            window = window[hit]
            symbol = ac_symbols[window].astype(np.int64)
            category = symbol & 0x0F
            length = ac_lengths[window].astype(np.int64)
            amp = _amplitudes(words, positions[hit], length, category)
            zz_flat[dests[hit] + (slots[hit] - 1)] = _decode_magnitude_vec(
                amp, category
            )

    # The walk's trailing truncation check: a valid decode never ends
    # past the payload (intermediate overruns are monotone, so they
    # surface here too).
    bad |= (cursor - stream_starts) > payload_bits

    # --- DPCM DC pass: categories, amplitudes, cumulative sum --------
    if dc_pos:
        positions = np.concatenate(dc_pos)
        dests = np.concatenate(dc_dest)
        window = win16[positions]
        category = dc_symbols[window].astype(np.int64)
        length = dc_lengths[window].astype(np.int64)
        amp = _amplitudes(words, positions, length, category)
        dc_diff.reshape(-1)[dests] = _decode_magnitude_vec(amp, category)
    zigzag[:, :, 0] = np.cumsum(dc_diff, axis=1)

    flagged = [int(index) for index in np.nonzero(bad)[0]]
    results = [
        np.ascontiguousarray(zigzag[index, :block_counts[index]])
        for index in range(stream_count)
    ]
    return results, flagged
