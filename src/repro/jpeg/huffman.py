"""Huffman coding for the JPEG entropy coder.

Provides the four standard Annex K Huffman tables (DC/AC x luma/chroma)
and a constructor for optimized tables built from observed symbol
frequencies, length-limited to 16 bits as the baseline JPEG format
requires.  Tables are canonical: they are fully described by the T.81
``BITS``/``HUFFVAL`` lists, which is also how their header cost is
accounted.

For the vectorized fast path each table lazily materialises two dense
representations: :meth:`HuffmanTable.encode_arrays` (256-entry
code/length arrays so a whole symbol stream is coded with fancy
indexing) and :meth:`HuffmanTable.decode_lut` (a 2**16-entry table
resolving any 16-bit peek window to its symbol and code length in one
lookup).  Both are cached on the instance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

MAX_CODE_LENGTH = 16

#: Size of the dense symbol space (JPEG entropy symbols are one byte).
SYMBOL_SPACE = 256

# Annex K Table K.3 — luminance DC coefficient differences.
_DC_LUMA_BITS = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0]
_DC_LUMA_VALUES = list(range(12))

# Annex K Table K.4 — chrominance DC coefficient differences.
_DC_CHROMA_BITS = [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0]
_DC_CHROMA_VALUES = list(range(12))

# Annex K Table K.5 — luminance AC coefficients.
_AC_LUMA_BITS = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D]
_AC_LUMA_VALUES = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
    0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
    0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
    0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
    0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
    0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
    0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
    0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
    0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
    0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
    0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
    0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
    0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
    0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
    0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
    0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
]

# Annex K Table K.6 — chrominance AC coefficients.
_AC_CHROMA_BITS = [0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77]
_AC_CHROMA_VALUES = [
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
    0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
    0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
    0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
    0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34,
    0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
    0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38,
    0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
    0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
    0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
    0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
    0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
    0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96,
    0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
    0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
    0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
    0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2,
    0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
    0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9,
    0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
]


@dataclass
class HuffmanTable:
    """A canonical Huffman table in the T.81 BITS/HUFFVAL representation.

    Attributes
    ----------
    bits:
        ``bits[k]`` is the number of codes of length ``k + 1`` (16 entries).
    values:
        Symbols ordered by increasing code length, then assignment order.
    name:
        Optional label for debugging and reports.
    """

    bits: "list[int]"
    values: "list[int]"
    name: str = "huffman"
    _encode_map: dict = field(init=False, repr=False, compare=False)
    _decode_map: dict = field(init=False, repr=False, compare=False)
    _dense: tuple = field(init=False, repr=False, compare=False, default=None)
    _decode_lut: tuple = field(
        init=False, repr=False, compare=False, default=None
    )
    _decode_arrays: tuple = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if len(self.bits) != MAX_CODE_LENGTH:
            raise ValueError(
                f"bits must have {MAX_CODE_LENGTH} entries, got {len(self.bits)}"
            )
        if sum(self.bits) != len(self.values):
            raise ValueError(
                "sum(bits) must equal the number of symbols "
                f"({sum(self.bits)} != {len(self.values)})"
            )
        self._encode_map, self._decode_map = _build_canonical_codes(
            self.bits, self.values
        )

    def encode(self, symbol: int) -> "tuple[int, int]":
        """Return the ``(code, length)`` pair for ``symbol``."""
        try:
            return self._encode_map[symbol]
        except KeyError as exc:
            raise KeyError(
                f"symbol {symbol:#x} not present in Huffman table '{self.name}'"
            ) from exc

    def code_length(self, symbol: int) -> int:
        """Return the code length in bits for ``symbol``."""
        return self.encode(symbol)[1]

    def decode_symbol(self, reader) -> int:
        """Consume bits from a :class:`~repro.jpeg.bitstream.BitReader`."""
        code = 0
        length = 0
        while length < MAX_CODE_LENGTH:
            code = (code << 1) | reader.read_bit()
            length += 1
            symbol = self._decode_map.get((code, length))
            if symbol is not None:
                return symbol
        raise ValueError(
            f"invalid Huffman code in table '{self.name}'"
        )

    def encode_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """Dense ``(codes, lengths)`` lookup arrays indexed by symbol 0–255.

        ``lengths[s]`` is 0 for symbols absent from the table, so the
        vectorized encoder can map a whole symbol stream with two fancy
        indexing operations and detect missing symbols in one check.
        Built lazily and cached on the instance.
        """
        if self._dense is None:
            codes = np.zeros(SYMBOL_SPACE, dtype=np.int64)
            lengths = np.zeros(SYMBOL_SPACE, dtype=np.int64)
            for symbol, (code, length) in self._encode_map.items():
                codes[symbol] = code
                lengths[symbol] = length
            codes.setflags(write=False)
            lengths.setflags(write=False)
            object.__setattr__(self, "_dense", (codes, lengths))
        return self._dense

    def decode_lut(self) -> "tuple[list, list]":
        """Dense ``(symbols, lengths)`` decode tables over 16-bit windows.

        Entry ``w`` resolves the Huffman code found in the high bits of
        the 16-bit window ``w``: ``symbols[w]`` is the decoded symbol
        (-1 if no code matches) and ``lengths[w]`` its bit length.
        Returned as plain Python lists — the sequential decode walk
        indexes them with Python ints, which avoids NumPy scalar boxing.
        Built lazily and cached on the instance.
        """
        if self._decode_lut is None:
            symbols = np.full(1 << MAX_CODE_LENGTH, -1, dtype=np.int64)
            lengths = np.zeros(1 << MAX_CODE_LENGTH, dtype=np.int64)
            for (code, length), symbol in self._decode_map.items():
                start = code << (MAX_CODE_LENGTH - length)
                end = (code + 1) << (MAX_CODE_LENGTH - length)
                symbols[start:end] = symbol
                lengths[start:end] = length
            object.__setattr__(
                self, "_decode_lut", (symbols.tolist(), lengths.tolist())
            )
        return self._decode_lut

    def decode_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """NumPy ``(symbols, lengths)`` decode tables over 16-bit windows.

        Same contents as :meth:`decode_lut` but as read-only ``int16``
        arrays, so the vectorized FSM decoder can gather thousands of
        windows per pass.  Built lazily and cached on the instance.
        """
        if self._decode_arrays is None:
            symbols = np.full(1 << MAX_CODE_LENGTH, -1, dtype=np.int16)
            lengths = np.zeros(1 << MAX_CODE_LENGTH, dtype=np.int16)
            for (code, length), symbol in self._decode_map.items():
                start = code << (MAX_CODE_LENGTH - length)
                end = (code + 1) << (MAX_CODE_LENGTH - length)
                symbols[start:end] = symbol
                lengths[start:end] = length
            symbols.setflags(write=False)
            lengths.setflags(write=False)
            object.__setattr__(self, "_decode_arrays", (symbols, lengths))
        return self._decode_arrays

    def __contains__(self, symbol: int) -> bool:
        return symbol in self._encode_map

    def symbols(self) -> "list[int]":
        """All symbols the table can encode."""
        return list(self.values)

    def header_cost_bytes(self) -> int:
        """Size of the DHT segment payload describing this table.

        One class/id byte + 16 BITS bytes + one byte per symbol, matching
        the JPEG DHT marker segment layout.
        """
        return 1 + MAX_CODE_LENGTH + len(self.values)

    def to_json(self) -> dict:
        """JSON-able ``BITS``/``HUFFVAL`` payload (the canonical identity).

        The two lists fully describe a canonical table (exactly what a
        DHT marker segment carries), so :meth:`from_json` round-trips the
        table — and therefore every code it assigns — bit for bit.
        """
        return {
            "bits": [int(count) for count in self.bits],
            "values": [int(symbol) for symbol in self.values],
            "name": self.name,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "HuffmanTable":
        """Rebuild a table from a :meth:`to_json` payload."""
        return cls(
            bits=[int(count) for count in payload["bits"]],
            values=[int(symbol) for symbol in payload["values"]],
            name=str(payload.get("name", "huffman")),
        )

    @classmethod
    def standard_dc_luminance(cls) -> "HuffmanTable":
        """Annex K Table K.3."""
        return cls(list(_DC_LUMA_BITS), list(_DC_LUMA_VALUES), "dc-luma")

    @classmethod
    def standard_dc_chrominance(cls) -> "HuffmanTable":
        """Annex K Table K.4."""
        return cls(list(_DC_CHROMA_BITS), list(_DC_CHROMA_VALUES), "dc-chroma")

    @classmethod
    def standard_ac_luminance(cls) -> "HuffmanTable":
        """Annex K Table K.5."""
        return cls(list(_AC_LUMA_BITS), list(_AC_LUMA_VALUES), "ac-luma")

    @classmethod
    def standard_ac_chrominance(cls) -> "HuffmanTable":
        """Annex K Table K.6."""
        return cls(list(_AC_CHROMA_BITS), list(_AC_CHROMA_VALUES), "ac-chroma")

    @classmethod
    def from_frequencies(
        cls, frequencies: dict, name: str = "optimized"
    ) -> "HuffmanTable":
        """Build an optimized, 16-bit length-limited table from symbol counts.

        Implements the classical Huffman construction followed by the
        ``adjust_bits`` length-limiting procedure of T.81 Annex K.3, so the
        result is always a legal baseline JPEG table.
        """
        frequencies = {
            int(symbol): int(count)
            for symbol, count in frequencies.items()
            if count > 0
        }
        if not frequencies:
            raise ValueError("cannot build a Huffman table with no symbols")
        lengths = _huffman_code_lengths(frequencies)
        lengths = _limit_code_lengths(lengths, MAX_CODE_LENGTH)
        bits = [0] * MAX_CODE_LENGTH
        ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
        values = []
        for symbol, length in ordered:
            bits[length - 1] += 1
            values.append(symbol)
        return cls(bits, values, name)


def _build_canonical_codes(bits: "list[int]", values: "list[int]") -> tuple:
    """Assign canonical codes per T.81 Annex C (GENERATE_SIZE/CODE tables)."""
    encode_map = {}
    decode_map = {}
    code = 0
    index = 0
    for length_minus_one, count in enumerate(bits):
        length = length_minus_one + 1
        for _ in range(count):
            symbol = values[index]
            if symbol in encode_map:
                raise ValueError(f"duplicate symbol {symbol:#x} in Huffman table")
            encode_map[symbol] = (code, length)
            decode_map[(code, length)] = symbol
            code += 1
            index += 1
        code <<= 1
    return encode_map, decode_map


def _huffman_code_lengths(frequencies: dict) -> dict:
    """Return unrestricted Huffman code lengths for each symbol."""
    if len(frequencies) == 1:
        symbol = next(iter(frequencies))
        return {symbol: 1}
    heap = [
        (count, counter, {symbol: 0})
        for counter, (symbol, count) in enumerate(sorted(frequencies.items()))
    ]
    counter = len(heap)
    heapq.heapify(heap)
    while len(heap) > 1:
        count_a, _, tree_a = heapq.heappop(heap)
        count_b, _, tree_b = heapq.heappop(heap)
        merged = {symbol: depth + 1 for symbol, depth in tree_a.items()}
        merged.update(
            {symbol: depth + 1 for symbol, depth in tree_b.items()}
        )
        heapq.heappush(heap, (count_a + count_b, counter, merged))
        counter += 1
    return heap[0][2]


def _limit_code_lengths(lengths: dict, max_length: int) -> dict:
    """Limit code lengths to ``max_length`` while keeping the Kraft sum valid.

    Follows the ``adjust_bits`` procedure of T.81 Annex K.3 (also used by
    libjpeg): operate on the histogram of code lengths, repeatedly moving a
    pair of over-long codes up one level while demoting one shorter code,
    which preserves the Kraft inequality; then reassign lengths to symbols
    ordered by their original (optimal) depth.
    """
    lengths = dict(lengths)
    deepest = max(lengths.values())
    if deepest <= max_length:
        return lengths
    # Histogram of code lengths, index 1..deepest.
    counts = [0] * (deepest + 1)
    for length in lengths.values():
        counts[length] += 1
    for length in range(deepest, max_length, -1):
        while counts[length] > 0:
            shorter = length - 2
            while shorter > 0 and counts[shorter] == 0:
                shorter -= 1
            if shorter <= 0:
                raise ValueError("cannot length-limit Huffman code")
            # Remove two codes at `length`: one becomes length-1, the other
            # pairs with a split of a code at `shorter` into two at
            # `shorter + 1`.
            counts[length] -= 2
            counts[length - 1] += 1
            counts[shorter] -= 1
            counts[shorter + 1] += 2
    # Reassign: shortest lengths go to symbols that originally had the
    # shortest (most frequent) codes.
    pool = []
    for length in range(1, max_length + 1):
        pool.extend([length] * counts[length])
    ordered_symbols = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    if len(pool) != len(ordered_symbols):
        raise ValueError("length limiting did not conserve the symbol count")
    return {
        symbol: new_length
        for (symbol, _), new_length in zip(ordered_symbols, sorted(pool))
    }
