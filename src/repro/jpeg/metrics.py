"""Image distortion metrics used in the evaluation."""

from __future__ import annotations

import numpy as np


def mse(reference: np.ndarray, distorted: np.ndarray) -> float:
    """Mean squared error between two images of the same shape."""
    reference = np.asarray(reference, dtype=np.float64)
    distorted = np.asarray(distorted, dtype=np.float64)
    if reference.shape != distorted.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {distorted.shape}"
        )
    return float(np.mean((reference - distorted) ** 2))


def psnr(
    reference: np.ndarray, distorted: np.ndarray, peak: float = 255.0
) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical images)."""
    error = mse(reference, distorted)
    if error == 0.0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / error))


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """Ratio of original to compressed size; larger is better."""
    if compressed_bytes <= 0:
        raise ValueError("compressed size must be positive")
    if original_bytes < 0:
        raise ValueError("original size must be non-negative")
    return original_bytes / compressed_bytes


class CompressedSizeMixin:
    """Byte accounting shared by per-image and per-dataset results.

    Expects the host class to provide ``payload_bytes``, ``header_bytes``
    and ``original_bytes`` attributes (entropy-coded scan size, marker
    overhead, and uncompressed size respectively); derives the total and
    the two compression-ratio views from them.
    """

    payload_bytes: int
    header_bytes: int
    original_bytes: int

    @property
    def total_bytes(self) -> int:
        """Compressed size including headers."""
        return self.payload_bytes + self.header_bytes

    @property
    def compression_ratio(self) -> float:
        """Original size divided by total compressed size."""
        return compression_ratio(self.original_bytes, self.total_bytes)

    @property
    def payload_compression_ratio(self) -> float:
        """Original size divided by entropy-coded payload size only."""
        return compression_ratio(self.original_bytes, self.payload_bytes)
