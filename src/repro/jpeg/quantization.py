"""Quantization tables and scalar quantization of DCT coefficients.

The 64-entry quantization table is the object DeepN-JPEG redesigns.  This
module provides the standard ITU-T T.81 Annex K luminance and chrominance
tables, the libjpeg quality-factor scaling rule, and the quantize /
dequantize operations used by the codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.jpeg.dct import BLOCK_SIZE

#: Annex K Table K.1 — luminance quantization values (HVS tuned).
STANDARD_LUMINANCE_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

#: Annex K Table K.2 — chrominance quantization values.
STANDARD_CHROMINANCE_TABLE = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float64,
)

#: Maximum quantization step representable in a baseline JPEG DQT segment.
MAX_QUANT_STEP = 255
#: Minimum legal quantization step.
MIN_QUANT_STEP = 1


def scale_table_for_quality(
    table: np.ndarray, quality: int
) -> np.ndarray:
    """Scale a base quantization table by the libjpeg quality factor rule.

    ``quality`` follows the IJG convention: 50 leaves the table unchanged,
    100 forces every step to 1 (lossless quantization), and values below
    50 scale the steps up.  Steps are clipped to ``[1, 255]``.
    """
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    table = _require_table_array(table)
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    scaled = np.floor((table * scale + 50.0) / 100.0)
    return np.clip(scaled, MIN_QUANT_STEP, MAX_QUANT_STEP)


@dataclass(frozen=True)
class QuantizationTable:
    """A 64-entry scalar quantization table for 8x8 DCT blocks.

    Attributes
    ----------
    values:
        Array of shape ``(8, 8)``; entry ``(i, j)`` is the quantization
        step of frequency band ``(i, j)``.  Values are clipped to the
        baseline JPEG range ``[1, 255]`` at construction.
    name:
        A human-readable label used in experiment reports.
    """

    values: np.ndarray
    name: str = "custom"
    _frozen_values: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        values = _require_table_array(self.values)
        values = np.clip(np.round(values), MIN_QUANT_STEP, MAX_QUANT_STEP)
        values.setflags(write=False)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "_frozen_values", values)

    @classmethod
    def standard_luminance(cls, quality: int = 50) -> "QuantizationTable":
        """The Annex K luminance table scaled to ``quality``."""
        return cls(
            scale_table_for_quality(STANDARD_LUMINANCE_TABLE, quality),
            name=f"jpeg-luma-q{quality}",
        )

    @classmethod
    def standard_chrominance(cls, quality: int = 50) -> "QuantizationTable":
        """The Annex K chrominance table scaled to ``quality``."""
        return cls(
            scale_table_for_quality(STANDARD_CHROMINANCE_TABLE, quality),
            name=f"jpeg-chroma-q{quality}",
        )

    @classmethod
    def flat(cls, step: float, name: str = "") -> "QuantizationTable":
        """A table with the same step everywhere (the SAME-Q baseline)."""
        values = np.full((BLOCK_SIZE, BLOCK_SIZE), float(step))
        return cls(values, name=name or f"flat-q{step:g}")

    def scaled_by_quality(self, quality: int) -> "QuantizationTable":
        """Return a copy scaled by the libjpeg quality-factor rule."""
        return QuantizationTable(
            scale_table_for_quality(self.values, quality),
            name=f"{self.name}-q{quality}",
        )

    def quantize(self, coefficients: np.ndarray) -> np.ndarray:
        """Quantize DCT coefficients: ``round(c / q)`` (many-to-one, lossy)."""
        coefficients = np.asarray(coefficients, dtype=np.float64)
        _require_block_shape(coefficients)
        return np.round(coefficients / self.values).astype(np.int32)

    def dequantize(self, quantized: np.ndarray) -> np.ndarray:
        """Reconstruct coefficients from quantized integers: ``c' * q``."""
        quantized = np.asarray(quantized, dtype=np.float64)
        _require_block_shape(quantized)
        return quantized * self.values

    def mean_step(self) -> float:
        """Average quantization step, a coarse proxy for aggressiveness."""
        return float(self.values.mean())

    def to_json(self) -> dict:
        """JSON-able payload describing this table exactly.

        Steps are integers in ``[1, 255]`` after construction, so the
        payload round-trips the table bit for bit through
        :meth:`from_json`.
        """
        return {
            "values": [[int(step) for step in row] for row in self.values],
            "name": self.name,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "QuantizationTable":
        """Rebuild a table from a :meth:`to_json` payload."""
        return cls(
            np.asarray(payload["values"], dtype=np.float64),
            name=str(payload.get("name", "custom")),
        )

    def as_zigzag(self) -> np.ndarray:
        """Return the 64 steps in zig-zag order (DQT segment layout)."""
        from repro.jpeg.zigzag import zigzag

        return zigzag(self.values).astype(np.int32)


def _require_table_array(table: np.ndarray) -> np.ndarray:
    table = np.array(table, dtype=np.float64)
    if table.shape != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(
            f"quantization table must be 8x8, got shape {table.shape}"
        )
    if not np.all(np.isfinite(table)):
        raise ValueError("quantization table contains non-finite values")
    if np.any(table <= 0):
        raise ValueError("quantization steps must be strictly positive")
    return table


def _require_block_shape(array: np.ndarray) -> None:
    if array.shape[-2:] != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(
            f"expected trailing 8x8 dimensions, got shape {array.shape}"
        )
