"""DC differential coding and AC run-length coding of quantized blocks.

Quantized blocks (already in zig-zag order) are translated into the symbol
stream of baseline JPEG: the DC coefficient of each block is coded as the
difference from the previous block's DC (DPCM) using a size category plus
magnitude bits, and the 63 AC coefficients are coded as
``(zero-run, size)`` symbols with ZRL (16-zero run) and EOB (end of block)
escapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.jpeg.bitstream import encode_magnitude, magnitude_category

#: End-of-block AC symbol.
EOB_SYMBOL = 0x00
#: Zero-run-length AC symbol (a run of 16 zeros).
ZRL_SYMBOL = 0xF0
#: Longest zero run expressible in a single (run, size) symbol.
MAX_ZERO_RUN = 15


@dataclass(frozen=True)
class AcToken:
    """One AC entropy-coding token.

    ``symbol`` packs the zero run in the high nibble and the magnitude
    category in the low nibble.  ``amplitude_bits``/``amplitude_length``
    are the raw magnitude bits appended after the Huffman code for the
    symbol (zero-length for EOB and ZRL).
    """

    symbol: int
    amplitude_bits: int
    amplitude_length: int


@dataclass(frozen=True)
class DcToken:
    """One DC entropy-coding token (size category plus magnitude bits)."""

    symbol: int
    amplitude_bits: int
    amplitude_length: int


def encode_dc(dc_value: int, previous_dc: int) -> DcToken:
    """DPCM-encode a block's DC coefficient against the previous block's."""
    diff = int(dc_value) - int(previous_dc)
    category = magnitude_category(diff)
    bits, length = encode_magnitude(diff)
    return DcToken(symbol=category, amplitude_bits=bits, amplitude_length=length)


def encode_ac(ac_coefficients: np.ndarray) -> "list[AcToken]":
    """Run-length encode the 63 zig-zag-ordered AC coefficients of a block."""
    ac_coefficients = np.asarray(ac_coefficients)
    if ac_coefficients.shape != (63,):
        raise ValueError(
            f"expected 63 AC coefficients, got shape {ac_coefficients.shape}"
        )
    tokens = []
    run = 0
    for value in ac_coefficients:
        value = int(value)
        if value == 0:
            run += 1
            continue
        while run > MAX_ZERO_RUN:
            tokens.append(AcToken(ZRL_SYMBOL, 0, 0))
            run -= MAX_ZERO_RUN + 1
        category = magnitude_category(value)
        bits, length = encode_magnitude(value)
        tokens.append(
            AcToken(symbol=(run << 4) | category, amplitude_bits=bits,
                    amplitude_length=length)
        )
        run = 0
    if run > 0:
        tokens.append(AcToken(EOB_SYMBOL, 0, 0))
    return tokens


def decode_ac(tokens: "list[AcToken]") -> np.ndarray:
    """Invert :func:`encode_ac`, returning the 63 AC coefficients."""
    from repro.jpeg.bitstream import decode_magnitude

    coefficients = np.zeros(63, dtype=np.int32)
    position = 0
    for token in tokens:
        if token.symbol == EOB_SYMBOL:
            break
        if token.symbol == ZRL_SYMBOL:
            position += MAX_ZERO_RUN + 1
            continue
        run = token.symbol >> 4
        category = token.symbol & 0x0F
        position += run
        if position >= 63:
            raise ValueError("AC token stream overruns the block")
        coefficients[position] = decode_magnitude(
            token.amplitude_bits, category
        )
        position += 1
    return coefficients


def block_symbol_histograms(
    zigzag_blocks: np.ndarray,
) -> "tuple[dict, dict]":
    """Count DC and AC symbols over a stack of zig-zag quantized blocks.

    Used to build optimized Huffman tables.  ``zigzag_blocks`` has shape
    ``(N, 64)`` and must be ordered as they will be entropy coded, because
    DC symbols depend on the DPCM predecessor.
    """
    zigzag_blocks = np.asarray(zigzag_blocks)
    if zigzag_blocks.ndim != 2 or zigzag_blocks.shape[1] != 64:
        raise ValueError(
            f"expected blocks of shape (N, 64), got {zigzag_blocks.shape}"
        )
    dc_counts: dict = {}
    ac_counts: dict = {}
    previous_dc = 0
    for block in zigzag_blocks:
        dc_token = encode_dc(int(block[0]), previous_dc)
        previous_dc = int(block[0])
        dc_counts[dc_token.symbol] = dc_counts.get(dc_token.symbol, 0) + 1
        for token in encode_ac(block[1:]):
            ac_counts[token.symbol] = ac_counts.get(token.symbol, 0) + 1
    return dc_counts, ac_counts
