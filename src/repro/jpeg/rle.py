"""DC differential coding and AC run-length coding of quantized blocks.

Quantized blocks (already in zig-zag order) are translated into the symbol
stream of baseline JPEG: the DC coefficient of each block is coded as the
difference from the previous block's DC (DPCM) using a size category plus
magnitude bits, and the 63 AC coefficients are coded as
``(zero-run, size)`` symbols with ZRL (16-zero run) and EOB (end of block)
escapes.

Two implementations coexist.  :func:`encode_dc` / :func:`encode_ac` are
the scalar reference, one token at a time.  :func:`tokenize_blocks` is
the vectorized fast path: it derives the complete token stream of an
``(N, 64)`` block stack — DPCM diffs, magnitude categories, zero runs,
ZRL/EOB escapes and ``(run, size)`` symbols — with whole-array NumPy
ops, emitting parallel ``symbols`` / ``amplitudes`` / ``amplitude
lengths`` arrays instead of per-token dataclasses.  The two paths
produce identical streams; the tests assert bit-for-bit parity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.jpeg.bitstream import (
    encode_magnitude,
    encode_magnitude_array,
    magnitude_category,
)

#: End-of-block AC symbol.
EOB_SYMBOL = 0x00
#: Zero-run-length AC symbol (a run of 16 zeros).
ZRL_SYMBOL = 0xF0
#: Longest zero run expressible in a single (run, size) symbol.
MAX_ZERO_RUN = 15


@dataclass(frozen=True)
class AcToken:
    """One AC entropy-coding token.

    ``symbol`` packs the zero run in the high nibble and the magnitude
    category in the low nibble.  ``amplitude_bits``/``amplitude_length``
    are the raw magnitude bits appended after the Huffman code for the
    symbol (zero-length for EOB and ZRL).
    """

    symbol: int
    amplitude_bits: int
    amplitude_length: int


@dataclass(frozen=True)
class DcToken:
    """One DC entropy-coding token (size category plus magnitude bits)."""

    symbol: int
    amplitude_bits: int
    amplitude_length: int


#: Offset added to DC symbols inside :class:`TokenStream`, so one dense
#: 512-entry lookup array can code a mixed DC/AC stream in a single
#: fancy-indexing pass.
DC_SYMBOL_OFFSET = 256


@dataclass(frozen=True)
class TokenStream:
    """The complete entropy-coding token stream of a block stack.

    Parallel arrays, one entry per token, in coding order (each block:
    DC token, then its AC tokens, then EOB where applicable).

    Attributes
    ----------
    symbols:
        Combined coding index of each token: AC symbols are 0–255, DC
        symbols are the size category plus :data:`DC_SYMBOL_OFFSET`.
    amplitudes:
        Raw magnitude bits appended after each Huffman code.
    amplitude_lengths:
        Bit length of each amplitude (0 for EOB/ZRL and zero DC diffs).
    block_token_counts:
        Number of tokens contributed by each block, so callers can split
        the stream at block (or image) boundaries.
    """

    symbols: np.ndarray
    amplitudes: np.ndarray
    amplitude_lengths: np.ndarray
    block_token_counts: np.ndarray

    def __len__(self) -> int:
        return int(self.symbols.shape[0])

    @property
    def is_dc(self) -> np.ndarray:
        """True where the token is coded with the DC table."""
        return self.symbols >= DC_SYMBOL_OFFSET

    @property
    def huffman_symbols(self) -> np.ndarray:
        """The raw one-byte Huffman symbol of each token (0–255)."""
        return self.symbols & (DC_SYMBOL_OFFSET - 1)


def encode_dc(dc_value: int, previous_dc: int) -> DcToken:
    """DPCM-encode a block's DC coefficient against the previous block's."""
    diff = int(dc_value) - int(previous_dc)
    category = magnitude_category(diff)
    bits, length = encode_magnitude(diff)
    return DcToken(symbol=category, amplitude_bits=bits, amplitude_length=length)


def encode_ac(ac_coefficients: np.ndarray) -> "list[AcToken]":
    """Run-length encode the 63 zig-zag-ordered AC coefficients of a block."""
    ac_coefficients = np.asarray(ac_coefficients)
    if ac_coefficients.shape != (63,):
        raise ValueError(
            f"expected 63 AC coefficients, got shape {ac_coefficients.shape}"
        )
    tokens = []
    run = 0
    for value in ac_coefficients:
        value = int(value)
        if value == 0:
            run += 1
            continue
        while run > MAX_ZERO_RUN:
            tokens.append(AcToken(ZRL_SYMBOL, 0, 0))
            run -= MAX_ZERO_RUN + 1
        category = magnitude_category(value)
        bits, length = encode_magnitude(value)
        tokens.append(
            AcToken(symbol=(run << 4) | category, amplitude_bits=bits,
                    amplitude_length=length)
        )
        run = 0
    if run > 0:
        tokens.append(AcToken(EOB_SYMBOL, 0, 0))
    return tokens


def decode_ac(tokens: "list[AcToken]") -> np.ndarray:
    """Invert :func:`encode_ac`, returning the 63 AC coefficients."""
    from repro.jpeg.bitstream import decode_magnitude

    coefficients = np.zeros(63, dtype=np.int32)
    position = 0
    for token in tokens:
        if token.symbol == EOB_SYMBOL:
            break
        if token.symbol == ZRL_SYMBOL:
            position += MAX_ZERO_RUN + 1
            continue
        run = token.symbol >> 4
        category = token.symbol & 0x0F
        position += run
        if position >= 63:
            raise ValueError("AC token stream overruns the block")
        coefficients[position] = decode_magnitude(
            token.amplitude_bits, category
        )
        position += 1
    return coefficients


def block_run_stats(
    zz: np.ndarray, reset_interval: int = 0
) -> tuple:
    """Shared DC/AC run derivation of the vectorized coders.

    For an already-validated ``(N, 64)`` int64 stack, returns
    ``(diffs, ac, rows, cols, ac_values, zrl_counts, runs, has_eob)``:
    the DPCM DC differences (with the predictor reset every
    ``reset_interval`` blocks when nonzero), the ``(N, 63)`` AC view,
    the row/column indices and values of its nonzeros, the zero run
    preceding each nonzero with its ZRL-escape count, and the per-block
    end-of-block flags.  Both :func:`tokenize_blocks` and the fused
    coder in :mod:`repro.jpeg.codec` build on this so the run/DPCM
    semantics cannot drift apart.
    """
    n_blocks = zz.shape[0]
    dc = zz[:, 0]
    previous = np.empty(n_blocks, dtype=np.int64)
    previous[0] = 0
    previous[1:] = dc[:-1]
    if reset_interval:
        previous[::reset_interval] = 0
    diffs = dc - previous

    ac = zz[:, 1:]
    rows, cols = np.nonzero(ac)
    n_nonzero = rows.shape[0]
    if n_nonzero:
        ac_values = ac[rows, cols]
        previous_cols = np.empty(n_nonzero, dtype=np.int64)
        # A sentinel of -1 makes `cols - previous_cols - 1` the run
        # length for the first nonzero of each block too.
        previous_cols[0] = -1
        previous_cols[1:] = cols[:-1]
        first_mask = np.empty(n_nonzero, dtype=bool)
        first_mask[0] = False
        first_mask[1:] = rows[1:] != rows[:-1]
        previous_cols[first_mask] = -1
        runs = cols - previous_cols - 1
        zrl_counts = runs >> 4
    else:
        ac_values = np.empty(0, dtype=np.int64)
        runs = np.empty(0, dtype=np.int64)
        zrl_counts = np.empty(0, dtype=np.int64)
    has_eob = ac[:, -1] == 0
    return diffs, ac, rows, cols, ac_values, zrl_counts, runs, has_eob


def tokenize_blocks(
    zigzag_blocks: np.ndarray, reset_interval: int = 0
) -> TokenStream:
    """Vectorized tokenization of a zig-zag quantized ``(N, 64)`` stack.

    Produces exactly the token sequence the scalar :func:`encode_dc` /
    :func:`encode_ac` pair would emit block by block, as parallel arrays.

    Parameters
    ----------
    zigzag_blocks:
        Stack of shape ``(N, 64)`` in coding order.
    reset_interval:
        If nonzero, the DC predictor resets to 0 every ``reset_interval``
        blocks — used to tokenize a whole batch of images in one call
        (each image of ``B`` blocks predicts only within itself).
    """
    zz = np.asarray(zigzag_blocks, dtype=np.int64)
    if zz.ndim != 2 or zz.shape[1] != 64:
        raise ValueError(
            f"expected blocks of shape (N, 64), got {zz.shape}"
        )
    n_blocks = zz.shape[0]
    if n_blocks == 0:
        empty_i64 = np.empty(0, dtype=np.int64)
        return TokenStream(
            symbols=empty_i64.copy(), amplitudes=empty_i64.copy(),
            amplitude_lengths=empty_i64.copy(),
            block_token_counts=empty_i64.copy(),
        )

    diffs, ac, rows, cols, ac_values, zrl_counts, runs, has_eob = (
        block_run_stats(zz, reset_interval)
    )
    n_nonzero = rows.shape[0]

    # One fused magnitude pass over DC diffs and AC values.
    amplitudes, categories = encode_magnitude_array(
        np.concatenate([diffs, ac_values])
    )
    dc_amplitudes = amplitudes[:n_blocks]
    dc_categories = categories[:n_blocks]
    if int(dc_categories.max()) > 16:
        # Categories above 16 cannot be represented by any baseline
        # table and exceed what the table-driven decoder can invert.
        raise ValueError(
            "DC difference magnitude exceeds the baseline JPEG range "
            "(size category > 16)"
        )

    if n_nonzero:
        ac_categories = categories[n_blocks:]
        if int(ac_categories.max()) > 15:
            # The (run, size) symbol packs the category into 4 bits; a
            # larger category would alias into the run field and encode
            # a silently corrupt stream.
            raise ValueError(
                "AC coefficient magnitude exceeds the baseline JPEG "
                "range (size category > 15)"
            )
        ac_symbols = ((runs & MAX_ZERO_RUN) << 4) | ac_categories
        tokens_per_nonzero = zrl_counts + 1
        ac_tokens_per_block = np.bincount(
            rows, weights=tokens_per_nonzero, minlength=n_blocks
        ).astype(np.int64)
    else:
        ac_tokens_per_block = np.zeros(n_blocks, dtype=np.int64)
    block_token_counts = 1 + ac_tokens_per_block + has_eob
    block_starts = np.empty(n_blocks, dtype=np.int64)
    block_starts[0] = 0
    np.cumsum(block_token_counts[:-1], out=block_starts[1:])
    total_tokens = int(block_starts[-1] + block_token_counts[-1])

    # Fill with ZRL; every position not overwritten below is a ZRL escape
    # (their amplitudes stay zero-length, as do EOB amplitudes).
    symbols = np.full(total_tokens, ZRL_SYMBOL, dtype=np.int64)
    amplitude_values = np.zeros(total_tokens, dtype=np.int64)
    amplitude_lengths = np.zeros(total_tokens, dtype=np.int64)

    symbols[block_starts] = dc_categories + DC_SYMBOL_OFFSET
    amplitude_values[block_starts] = dc_amplitudes
    amplitude_lengths[block_starts] = dc_categories

    if n_nonzero:
        # Position of each nonzero's (run, size) token: after the block's
        # DC token, the tokens of earlier nonzeros in the block, and its
        # own ZRL escapes.
        exclusive = np.empty(n_nonzero, dtype=np.int64)
        exclusive[0] = 0
        np.cumsum(tokens_per_nonzero[:-1], out=exclusive[1:])
        before_block = np.empty(n_blocks, dtype=np.int64)
        before_block[0] = 0
        np.cumsum(ac_tokens_per_block[:-1], out=before_block[1:])
        positions = (
            block_starts[rows] + 1 + exclusive - before_block[rows]
            + zrl_counts
        )
        symbols[positions] = ac_symbols
        amplitude_values[positions] = amplitudes[n_blocks:]
        amplitude_lengths[positions] = ac_categories

    eob_positions = (block_starts + block_token_counts - 1)[has_eob]
    symbols[eob_positions] = EOB_SYMBOL

    return TokenStream(
        symbols=symbols,
        amplitudes=amplitude_values,
        amplitude_lengths=amplitude_lengths,
        block_token_counts=block_token_counts,
    )


def block_symbol_histograms(
    zigzag_blocks: np.ndarray,
) -> "tuple[dict, dict]":
    """Count DC and AC symbols over a stack of zig-zag quantized blocks.

    Used to build optimized Huffman tables.  ``zigzag_blocks`` has shape
    ``(N, 64)`` and must be ordered as they will be entropy coded, because
    DC symbols depend on the DPCM predecessor.  Computed with one
    vectorized tokenization plus ``np.bincount``.
    """
    stream = tokenize_blocks(zigzag_blocks)
    histogram = np.bincount(
        stream.symbols, minlength=2 * DC_SYMBOL_OFFSET
    )
    dc_counts = {
        int(symbol): int(count)
        for symbol, count in enumerate(histogram[DC_SYMBOL_OFFSET:]) if count
    }
    ac_counts = {
        int(symbol): int(count)
        for symbol, count in enumerate(histogram[:DC_SYMBOL_OFFSET]) if count
    }
    return dc_counts, ac_counts
