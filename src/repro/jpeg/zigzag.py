"""Zig-zag reordering of 8x8 DCT coefficient blocks.

The zig-zag scan orders the 64 coefficients of a block by increasing
spatial frequency so that the long runs of zeros produced by quantization
are contiguous and compress well under run-length coding.
"""

from __future__ import annotations

import numpy as np

from repro.jpeg.dct import BLOCK_SIZE


def _build_zigzag_order(n: int = BLOCK_SIZE) -> np.ndarray:
    """Return flat indices of an ``n x n`` block in zig-zag order."""
    order = []
    for diagonal in range(2 * n - 1):
        if diagonal % 2 == 0:
            # Even diagonals run bottom-left to top-right.
            row = min(diagonal, n - 1)
            col = diagonal - row
            while row >= 0 and col < n:
                order.append(row * n + col)
                row -= 1
                col += 1
        else:
            # Odd diagonals run top-right to bottom-left.
            col = min(diagonal, n - 1)
            row = diagonal - col
            while col >= 0 and row < n:
                order.append(row * n + col)
                row += 1
                col -= 1
    return np.asarray(order, dtype=np.intp)


#: Flat indices of an 8x8 block in zig-zag order; ``ZIGZAG_ORDER[0]`` is the
#: DC term and ``ZIGZAG_ORDER[63]`` the highest-frequency AC term.
ZIGZAG_ORDER = _build_zigzag_order(BLOCK_SIZE)

#: Inverse permutation: position of each flat index within the zig-zag scan.
INVERSE_ZIGZAG_ORDER = np.argsort(ZIGZAG_ORDER)


def zigzag(block: np.ndarray) -> np.ndarray:
    """Flatten an 8x8 block (or a stack ``(N, 8, 8)``) in zig-zag order."""
    block = np.asarray(block)
    if block.shape[-2:] != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(f"expected trailing 8x8 dims, got {block.shape}")
    flat = block.reshape(*block.shape[:-2], BLOCK_SIZE * BLOCK_SIZE)
    return flat[..., ZIGZAG_ORDER]


def inverse_zigzag(sequence: np.ndarray) -> np.ndarray:
    """Rebuild 8x8 blocks from zig-zag sequences of length 64."""
    sequence = np.asarray(sequence)
    if sequence.shape[-1] != BLOCK_SIZE * BLOCK_SIZE:
        raise ValueError(
            f"expected trailing dimension of 64, got {sequence.shape}"
        )
    flat = sequence[..., INVERSE_ZIGZAG_ORDER]
    return flat.reshape(*sequence.shape[:-1], BLOCK_SIZE, BLOCK_SIZE)


def zigzag_index_of_band(row: int, col: int) -> int:
    """Return the 0-based zig-zag position of frequency band ``(row, col)``."""
    if not (0 <= row < BLOCK_SIZE and 0 <= col < BLOCK_SIZE):
        raise ValueError(f"band ({row}, {col}) outside the 8x8 grid")
    return int(INVERSE_ZIGZAG_ORDER[row * BLOCK_SIZE + col])


def band_of_zigzag_index(index: int) -> tuple:
    """Return the ``(row, col)`` frequency band at zig-zag position ``index``."""
    if not 0 <= index < BLOCK_SIZE * BLOCK_SIZE:
        raise ValueError(f"zig-zag index {index} out of range")
    flat = int(ZIGZAG_ORDER[index])
    return flat // BLOCK_SIZE, flat % BLOCK_SIZE
