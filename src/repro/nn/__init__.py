"""A compact, from-scratch neural-network framework built on numpy.

This package is the training/inference substrate for the DeepN-JPEG
evaluation.  It provides the familiar building blocks of convolutional
classifiers — convolution (im2col based), pooling, batch normalisation,
dense layers, residual and inception blocks — plus losses, optimizers and
a small training loop, so the accuracy-vs-compression experiments of the
paper can run end-to-end on CPU without any deep-learning dependency.

Quick use::

    from repro.nn import models, Trainer, SGD

    model = models.alexnet_mini(num_classes=8, input_shape=(1, 32, 32))
    trainer = Trainer(model, optimizer=SGD(learning_rate=0.05, momentum=0.9))
    history = trainer.fit(train_images, train_labels, epochs=5)
    accuracy = trainer.evaluate(test_images, test_labels)
"""

from repro.nn import models
from repro.nn.dtype import DEFAULT_DTYPE, REFERENCE_DTYPE, resolve_dtype
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    InceptionBlock,
    Layer,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.trainer import Trainer, TrainingHistory

__all__ = [
    "Adam",
    "AvgPool2D",
    "BatchNorm2D",
    "Conv2D",
    "DEFAULT_DTYPE",
    "REFERENCE_DTYPE",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2D",
    "InceptionBlock",
    "Layer",
    "MaxPool2D",
    "Optimizer",
    "ReLU",
    "ResidualBlock",
    "SGD",
    "Sequential",
    "SoftmaxCrossEntropy",
    "resolve_dtype",
    "Trainer",
    "TrainingHistory",
    "models",
]
