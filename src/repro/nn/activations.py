"""Activation layers.

Activations are dtype-preserving: they compute in whatever float dtype
flows in (float32 fast mode or float64 reference mode) instead of
casting, so the compute dtype chosen at the model level governs the
whole stack.
"""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer
from repro.nn.dtype import as_float


class ReLU(Layer):
    """Rectified linear unit, ``max(x, 0)``.

    Supports the fused conv→ReLU inference epilogue: when the preceding
    layer applies the rectification in place on its own output,
    :class:`~repro.nn.base.Sequential` skips this layer's forward and
    hands it the fused output via :meth:`accept_fused_output`.  A later
    backward (the saliency path runs one after an inference forward)
    recomputes the mask from that output — ``max(x, 0) > 0`` if and
    only if ``x > 0``, so the recovered mask is exact.
    """

    #: Advertises to Sequential that a producer may fuse this activation.
    accepts_fused_relu = True

    def __init__(self) -> None:
        self._mask = None
        self._fused_output = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = as_float(inputs)
        self._fused_output = None
        self._mask = inputs > 0
        return inputs * self._mask

    def accept_fused_output(self, outputs: np.ndarray) -> None:
        """Record the already-rectified output of a fused forward."""
        self._mask = None
        self._fused_output = outputs

    def plan_inference(self, builder, source):
        # The standalone (unfused) rectification: the exact mask-multiply
        # sequence of forward(), for bit-parity with the dynamic path.
        out = builder.activation(source.shape)
        mask = builder.scratch(source.shape, dtype=bool)

        def build(bind):
            x = bind(source)
            y = bind(out)
            m = bind(mask)

            def step():
                np.greater(x, 0, out=m)
                np.multiply(x, m, out=y)

            return step

        builder.emit(build, reads=(source,), writes=(out,), scratch=(mask,))
        builder.free(mask)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            if self._fused_output is None:
                raise RuntimeError("backward called before forward")
            self._mask = self._fused_output > 0
        return as_float(grad_output) * self._mask


class LeakyReLU(Layer):
    """Leaky rectified linear unit with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = float(negative_slope)
        self._mask = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = as_float(inputs)
        self._mask = inputs > 0
        return np.where(self._mask, inputs, self.negative_slope * inputs)

    def plan_inference(self, builder, source):
        out = builder.activation(source.shape)
        mask = builder.scratch(source.shape, dtype=bool)

        def build(bind):
            x = bind(source)
            y = bind(out)
            m = bind(mask)
            slope = self.negative_slope

            def step():
                np.greater(x, 0, out=m)
                np.multiply(x, slope, out=y)
                np.copyto(y, x, where=m)

            return step

        builder.emit(build, reads=(source,), writes=(out,), scratch=(mask,))
        builder.free(mask)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_output = as_float(grad_output)
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._output = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._output = np.tanh(as_float(inputs))
        return self._output

    def plan_inference(self, builder, source):
        out = builder.activation(source.shape)

        def build(bind):
            x = bind(source)
            y = bind(out)

            def step():
                np.tanh(x, out=y)

            return step

        builder.emit(build, reads=(source,), writes=(out,))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return as_float(grad_output) * (1.0 - self._output ** 2)
