"""Core abstractions of the neural-network framework.

A :class:`Parameter` couples a value array with its gradient.  A
:class:`Layer` is anything with a ``forward``/``backward`` pair and a list
of parameters.  :class:`Sequential` chains layers, and is the container
all models in :mod:`repro.nn.models` are built from.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import REFERENCE_DTYPE, resolve_dtype


class Parameter:
    """A trainable tensor and its accumulated gradient.

    ``dtype`` fixes the compute dtype of the value and gradient buffers
    (float32 fast mode or float64 reference mode); ``None`` keeps the
    historical float64 default.
    """

    def __init__(
        self, value: np.ndarray, name: str = "param", dtype=None
    ) -> None:
        self.value = np.asarray(value, dtype=resolve_dtype(dtype))
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def dtype(self) -> np.dtype:
        return self.value.dtype

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    @property
    def shape(self) -> tuple:
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`; layers with
    trainable state override :meth:`parameters`.
    """

    #: Whether the layer behaves differently in training vs inference
    #: (dropout, batch norm); purely informational.
    stochastic = False

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for ``inputs``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and accumulate parameter gradients."""
        raise NotImplementedError

    def parameters(self) -> "list[Parameter]":
        """Trainable parameters of this layer (possibly empty)."""
        return []

    def zero_grad(self) -> None:
        """Zero the gradients of all parameters."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def plan_inference(self, builder, source):
        """Emit this layer's inference steps into an execution plan.

        Layers that support the planned engine (:mod:`repro.nn.engine`)
        override this to allocate arena slots and emit kernel steps via
        ``builder``, returning the output slot.  The default refuses,
        which makes the engine fall back to the dynamic path.
        """
        from repro.nn.engine import PlanError

        raise PlanError(
            f"{type(self).__name__} does not support planned inference"
        )

    def __call__(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(inputs, training=training)

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.value.size for p in self.parameters()))


class Sequential(Layer):
    """A layer that applies its children in order.

    On the inference path (``training=False``) adjacent fusible pairs —
    a layer exposing ``forward_fused_relu`` followed by an activation
    with ``accepts_fused_relu`` (conv → ReLU in every built-in model) —
    run as one fused step: the ReLU is applied in place on the
    producer's GEMM output, skipping the activation's separate mask and
    multiply passes.  The skipped activation is handed the fused output
    so a backward pass after an inference forward (the saliency
    analysis) still works.  ``fuse_inference=False`` restores the
    layer-by-layer path; both produce equal outputs.
    """

    def __init__(self, layers: "list[Layer]" = None, name: str = "sequential") -> None:
        self.layers = list(layers) if layers is not None else []
        self.name = name
        self.fuse_inference = True
        #: Inference-engine knobs (see repro.nn.engine.predict_proba):
        #: None defers to the REPRO_NN_ENGINE / REPRO_BLAS_THREADS
        #: environment and the "plan" / full-precision defaults.
        self.inference_engine = None
        self.storage_dtype = None
        self.blas_threads = None

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer and return ``self`` for chaining."""
        self.layers.append(layer)
        self.__dict__.pop("_plan_cache", None)
        return self

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        fuse = not training and getattr(self, "fuse_inference", True)
        outputs = inputs
        index = 0
        while index < len(self.layers):
            layer = self.layers[index]
            successor = (
                self.layers[index + 1]
                if fuse and index + 1 < len(self.layers) else None
            )
            if (
                successor is not None
                and hasattr(layer, "forward_fused_relu")
                and getattr(successor, "accepts_fused_relu", False)
            ):
                outputs = layer.forward_fused_relu(outputs)
                successor.accept_fused_output(outputs)
                index += 2
                continue
            outputs = layer.forward(outputs, training=training)
            index += 1
        return outputs

    def backward(
        self, grad_output: np.ndarray, need_input_grad: bool = True
    ) -> np.ndarray:
        """Backpropagate through all layers.

        With ``need_input_grad=False`` the first layer may skip computing
        the gradient with respect to the network input (the training loop
        discards it; the saliency analysis, which needs it, keeps the
        default).  Layers advertise support via ``backward_params_only``.
        """
        grad = grad_output
        for index in range(len(self.layers) - 1, 0, -1):
            grad = self.layers[index].backward(grad)
        if not self.layers:
            return grad
        first = self.layers[0]
        if not need_input_grad and hasattr(first, "backward_params_only"):
            return first.backward_params_only(grad)
        return first.backward(grad)

    def parameters(self) -> "list[Parameter]":
        params = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    @property
    def dtype(self) -> np.dtype:
        """Compute dtype of the model (dtype of its first parameter)."""
        for parameter in self.parameters():
            return parameter.dtype
        return REFERENCE_DTYPE

    def plan_children(self) -> "list[Layer]":
        """Child layers reachable by the plan compiler (cache keying)."""
        return list(self.layers)

    def plan_inference(self, builder, source):
        """Compile the children into plan steps, mirroring ``forward``.

        Applies the exact fusion decisions of the dynamic inference path
        (conv → ReLU pairs collapse into the producer's fused kernel
        when ``fuse_inference`` is set), frees every intermediate slot
        once its consumer has been emitted, and never frees ``source``
        (the caller owns it — e.g. a residual block still feeding it to
        the shortcut branch).
        """
        fuse = getattr(self, "fuse_inference", True)
        previous = source
        index = 0
        while index < len(self.layers):
            layer = self.layers[index]
            successor = (
                self.layers[index + 1]
                if fuse and index + 1 < len(self.layers) else None
            )
            if (
                successor is not None
                and hasattr(layer, "plan_fused_relu")
                and getattr(successor, "accepts_fused_relu", False)
            ):
                output = layer.plan_fused_relu(builder, previous)
                index += 2
            else:
                output = layer.plan_inference(builder, previous)
                index += 1
            if previous is not source and output is not previous:
                builder.free(previous)
            previous = output
        return previous

    def predict_proba(self, inputs: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Class probabilities for a batch of inputs (inference mode).

        Runs through the planned engine (:mod:`repro.nn.engine`) —
        bit-identical to the dynamic path for float32/float64 — honouring
        the model's ``inference_engine`` / ``storage_dtype`` /
        ``blas_threads`` knobs, and falling back to
        :meth:`predict_proba_dynamic` when the model cannot be planned.
        """
        from repro.nn import engine

        return engine.predict_proba(self, inputs, batch_size=batch_size)

    def predict_proba_dynamic(
        self, inputs: np.ndarray, batch_size: int = 64
    ) -> np.ndarray:
        """The legacy layer-by-layer probabilities (the parity reference)."""
        from repro.nn.losses import softmax

        inputs = np.asarray(inputs, dtype=self.dtype)
        outputs = []
        for start in range(0, inputs.shape[0], batch_size):
            logits = self.forward(inputs[start:start + batch_size], training=False)
            outputs.append(softmax(logits))
        return np.concatenate(outputs, axis=0)

    def predict(self, inputs: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Predicted class indices for a batch of inputs."""
        return np.argmax(self.predict_proba(inputs, batch_size=batch_size), axis=1)

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential(name={self.name!r}, layers=[{inner}])"
