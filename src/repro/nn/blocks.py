"""Composite blocks: residual (ResNet) and inception (GoogLeNet).

These reproduce the family-specific structure of the paper's evaluation
models (Fig. 8) at a scale trainable on CPU.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.base import Layer, Parameter, Sequential
from repro.nn.conv import Conv2D
from repro.nn.dtype import as_float, resolve_dtype
from repro.nn.engine import PlanError
from repro.nn.init import fallback_rng
from repro.nn.norm import BatchNorm2D


class ResidualBlock(Layer):
    """A two-convolution residual block with identity (or 1x1) shortcut.

    Structure: ``conv3x3 -> BN -> ReLU -> conv3x3 -> BN``, added to the
    shortcut branch and passed through a final ReLU, as in ResNet basic
    blocks.  When the channel count or stride changes, the shortcut is a
    1x1 convolution with batch norm.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator = None,
        name: str = "residual",
        dtype=None,
    ) -> None:
        rng = fallback_rng(rng)
        dtype = resolve_dtype(dtype)
        self.body = Sequential(
            [
                Conv2D(in_channels, out_channels, 3, stride=stride, padding=1,
                       rng=rng, name=f"{name}.conv1", dtype=dtype),
                BatchNorm2D(out_channels, name=f"{name}.bn1", dtype=dtype),
                ReLU(),
                Conv2D(out_channels, out_channels, 3, stride=1, padding=1,
                       rng=rng, name=f"{name}.conv2", dtype=dtype),
                BatchNorm2D(out_channels, name=f"{name}.bn2", dtype=dtype),
            ],
            name=f"{name}.body",
        )
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                [
                    Conv2D(in_channels, out_channels, 1, stride=stride,
                           padding=0, rng=rng, name=f"{name}.proj",
                           dtype=dtype),
                    BatchNorm2D(out_channels, name=f"{name}.proj_bn",
                                dtype=dtype),
                ],
                name=f"{name}.shortcut",
            )
        else:
            self.shortcut = None
        self._final_relu_mask = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        body_out = self.body.forward(inputs, training=training)
        if self.shortcut is not None:
            identity = self.shortcut.forward(inputs, training=training)
        else:
            identity = inputs
        summed = body_out + identity
        self._final_relu_mask = summed > 0
        return summed * self._final_relu_mask

    def plan_children(self) -> "list[Layer]":
        children = [self.body]
        if self.shortcut is not None:
            children.append(self.shortcut)
        return children

    def plan_inference(self, builder, source):
        body_out = self.body.plan_inference(builder, source)
        if self.shortcut is not None:
            identity = self.shortcut.plan_inference(builder, source)
        else:
            identity = source
        if identity.shape != body_out.shape:
            raise PlanError(
                f"residual shapes disagree: body {body_out.shape} "
                f"vs shortcut {identity.shape}"
            )
        out = builder.activation(body_out.shape)
        mask = builder.scratch(body_out.shape, dtype=bool)

        def build(bind):
            b = bind(body_out)
            i = bind(identity)
            y = bind(out)
            m = bind(mask)

            def step():
                np.add(b, i, out=y)
                np.greater(y, 0, out=m)
                np.multiply(y, m, out=y)

            return step

        builder.emit(
            build, reads=(body_out, identity), writes=(out,), scratch=(mask,)
        )
        builder.free(mask, body_out)
        if identity is not source:
            builder.free(identity)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._final_relu_mask is None:
            raise RuntimeError("backward called before forward")
        grad_sum = as_float(grad_output) * self._final_relu_mask
        grad_body = self.body.backward(grad_sum)
        if self.shortcut is not None:
            grad_shortcut = self.shortcut.backward(grad_sum)
        else:
            grad_shortcut = grad_sum
        return grad_body + grad_shortcut

    def parameters(self) -> "list[Parameter]":
        params = self.body.parameters()
        if self.shortcut is not None:
            params = params + self.shortcut.parameters()
        return params


class InceptionBlock(Layer):
    """A simplified inception module with four parallel branches.

    Branches: 1x1 convolution, 3x3 convolution (with 1x1 reduction), 5x5
    convolution (with 1x1 reduction), and 3x3 max-pool followed by a 1x1
    projection.  Outputs are concatenated along the channel axis, as in
    GoogLeNet.
    """

    def __init__(
        self,
        in_channels: int,
        branch1_channels: int,
        branch3_reduce: int,
        branch3_channels: int,
        branch5_reduce: int,
        branch5_channels: int,
        pool_proj_channels: int,
        rng: np.random.Generator = None,
        name: str = "inception",
        dtype=None,
    ) -> None:
        rng = fallback_rng(rng)
        dtype = resolve_dtype(dtype)
        self.branch1 = Sequential(
            [
                Conv2D(in_channels, branch1_channels, 1, rng=rng,
                       name=f"{name}.b1", dtype=dtype),
                ReLU(),
            ]
        )
        self.branch3 = Sequential(
            [
                Conv2D(in_channels, branch3_reduce, 1, rng=rng,
                       name=f"{name}.b3r", dtype=dtype),
                ReLU(),
                Conv2D(branch3_reduce, branch3_channels, 3, padding=1, rng=rng,
                       name=f"{name}.b3", dtype=dtype),
                ReLU(),
            ]
        )
        self.branch5 = Sequential(
            [
                Conv2D(in_channels, branch5_reduce, 1, rng=rng,
                       name=f"{name}.b5r", dtype=dtype),
                ReLU(),
                Conv2D(branch5_reduce, branch5_channels, 5, padding=2, rng=rng,
                       name=f"{name}.b5", dtype=dtype),
                ReLU(),
            ]
        )
        self.branch_pool = Sequential(
            [
                _PaddedMaxPool(),
                Conv2D(in_channels, pool_proj_channels, 1, rng=rng,
                       name=f"{name}.bp", dtype=dtype),
                ReLU(),
            ]
        )
        self._split_channels = [
            branch1_channels,
            branch3_channels,
            branch5_channels,
            pool_proj_channels,
        ]
        self.out_channels = sum(self._split_channels)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        outputs = [
            self.branch1.forward(inputs, training=training),
            self.branch3.forward(inputs, training=training),
            self.branch5.forward(inputs, training=training),
            self.branch_pool.forward(inputs, training=training),
        ]
        return np.concatenate(outputs, axis=1)

    def plan_children(self) -> "list[Layer]":
        return [self.branch1, self.branch3, self.branch5, self.branch_pool]

    def plan_inference(self, builder, source):
        branch_outs = [
            self.branch1.plan_inference(builder, source),
            self.branch3.plan_inference(builder, source),
            self.branch5.plan_inference(builder, source),
            self.branch_pool.plan_inference(builder, source),
        ]
        spatial = branch_outs[0].shape[2:]
        for branch_out, channels in zip(branch_outs, self._split_channels):
            if (
                branch_out.shape[1] != channels
                or branch_out.shape[2:] != spatial
            ):
                raise PlanError(
                    f"inception branch produced {branch_out.shape}, "
                    f"expected ({source.shape[0]}, {channels}, *{spatial})"
                )
        out = builder.activation(
            (source.shape[0], self.out_channels) + spatial
        )

        def build(bind):
            y = bind(out)
            targets = []
            start = 0
            for branch_out, channels in zip(branch_outs, self._split_channels):
                targets.append((y[:, start:start + channels], bind(branch_out)))
                start += channels

            def step():
                for target, branch_value in targets:
                    np.copyto(target, branch_value)

            return step

        builder.emit(build, reads=tuple(branch_outs), writes=(out,))
        builder.free(*branch_outs)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = as_float(grad_output)
        grads = []
        start = 0
        branches = [self.branch1, self.branch3, self.branch5, self.branch_pool]
        for branch, channels in zip(branches, self._split_channels):
            grads.append(
                branch.backward(grad_output[:, start:start + channels])
            )
            start += channels
        return sum(grads)

    def parameters(self) -> "list[Parameter]":
        params = []
        for branch in (self.branch1, self.branch3, self.branch5, self.branch_pool):
            params.extend(branch.parameters())
        return params


class _PaddedMaxPool(Layer):
    """3x3 stride-1 max pooling with same-size output (pad by edge value).

    Implemented directly (not via im2col) because the inception pool branch
    needs 'same' padding, which the generic pooling layers do not support.
    """

    def __init__(self) -> None:
        self._cache = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = as_float(inputs)
        padded = np.pad(
            inputs, ((0, 0), (0, 0), (1, 1), (1, 1)), mode="constant",
            constant_values=-np.inf,
        )
        batch, channels, height, width = inputs.shape
        windows = np.empty(
            (9, batch, channels, height, width), dtype=inputs.dtype
        )
        index = 0
        for dy in range(3):
            for dx in range(3):
                windows[index] = padded[:, :, dy:dy + height, dx:dx + width]
                index += 1
        argmax = windows.argmax(axis=0)
        outputs = windows.max(axis=0)
        self._cache = (inputs.shape, argmax)
        return outputs

    def plan_inference(self, builder, source):
        if source.ndim != 4:
            raise PlanError(f"expected NCHW input, got {source.shape}")
        batch, channels, height, width = source.shape
        out = builder.activation(source.shape)
        padded = builder.scratch((batch, channels, height + 2, width + 2))
        windows = builder.scratch((9, batch, channels, height, width))

        def build(bind):
            x = bind(source)
            y = bind(out)
            padded_view = bind(padded)
            window_buffer = bind(windows)
            interior = padded_view[:, :, 1:1 + height, 1:1 + width]
            # Borders must be refilled every run: the arena may hand
            # these bytes to another slot within the same pass.
            borders = (
                padded_view[:, :, :1, :],
                padded_view[:, :, 1 + height:, :],
                padded_view[:, :, 1:1 + height, :1],
                padded_view[:, :, 1:1 + height, 1 + width:],
            )
            shifts = [
                padded_view[:, :, dy:dy + height, dx:dx + width]
                for dy in range(3)
                for dx in range(3)
            ]

            def step():
                for border in borders:
                    border[...] = -np.inf
                np.copyto(interior, x)
                for index, shifted in enumerate(shifts):
                    np.copyto(window_buffer[index], shifted)
                window_buffer.max(axis=0, out=y)

            return step

        builder.emit(
            build,
            reads=(source,),
            writes=(out,),
            scratch=(padded, windows),
        )
        builder.free(padded, windows)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, argmax = self._cache
        grad_output = as_float(grad_output)
        batch, channels, height, width = input_shape
        grad_padded = np.zeros(
            (batch, channels, height + 2, width + 2), dtype=grad_output.dtype
        )
        for index in range(9):
            dy, dx = divmod(index, 3)
            mask = argmax == index
            grad_padded[:, :, dy:dy + height, dx:dx + width] += grad_output * mask
        return grad_padded[:, :, 1:1 + height, 1:1 + width]
