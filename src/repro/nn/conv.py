"""2-D convolution layer implemented with im2col."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer, Parameter
from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.init import he_normal


class Conv2D(Layer):
    """Convolution over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of input and output feature maps.
    kernel_size:
        Side of the square kernel.
    stride, padding:
        Convolution stride and symmetric zero padding.
    rng:
        Source of randomness for weight initialisation; pass a seeded
        generator for reproducible models.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator = None,
        name: str = "conv",
    ) -> None:
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("channel counts and kernel size must be positive")
        if stride <= 0 or padding < 0:
            raise ValueError("stride must be positive and padding non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            he_normal(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in,
                rng,
            ),
            name=f"{name}.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name=f"{name}.bias")
        self._cache = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got {inputs.shape}"
            )
        batch, _, height, width = inputs.shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        columns = im2col(
            inputs, self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        kernel_matrix = self.weight.value.reshape(self.out_channels, -1)
        outputs = columns @ kernel_matrix.T + self.bias.value
        outputs = outputs.reshape(batch, out_h, out_w, self.out_channels)
        outputs = outputs.transpose(0, 3, 1, 2)
        self._cache = (inputs.shape, columns)
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, columns = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, _, out_h, out_w = grad_output.shape
        grad_matrix = grad_output.transpose(0, 2, 3, 1).reshape(
            batch * out_h * out_w, self.out_channels
        )
        kernel_matrix = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += (grad_matrix.T @ columns).reshape(
            self.weight.value.shape
        )
        self.bias.grad += grad_matrix.sum(axis=0)
        grad_columns = grad_matrix @ kernel_matrix
        return col2im(
            grad_columns,
            input_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def parameters(self) -> "list[Parameter]":
        return [self.weight, self.bias]
