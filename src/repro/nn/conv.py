"""2-D convolution layer implemented with im2col."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer, Parameter
from repro.nn.dtype import resolve_dtype
from repro.nn.im2col import col2im_patches, conv_output_size, im2col_patches
from repro.nn.init import he_normal


class Conv2D(Layer):
    """Convolution over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of input and output feature maps.
    kernel_size:
        Side of the square kernel.
    stride, padding:
        Convolution stride and symmetric zero padding.
    rng:
        Source of randomness for weight initialisation; pass a seeded
        generator for reproducible models.
    dtype:
        Compute dtype of the layer (weights, activations, gradients);
        ``None`` keeps the float64 reference mode.

    The forward pass is one batched GEMM over the channel-major patch
    tensor of :func:`~repro.nn.im2col.im2col_patches`, producing
    NCHW-contiguous outputs with no transpose.  The patch tensor — the
    layer's dominant allocation — is written into one scratch buffer
    reused across steps.  In inference mode (``training=False``) the
    patches are not cached at all; only a reference to the input is
    kept, so a (rare) backward pass after an inference forward (the
    saliency analysis) recomputes them on demand.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator = None,
        name: str = "conv",
        dtype=None,
    ) -> None:
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("channel counts and kernel size must be positive")
        if stride <= 0 or padding < 0:
            raise ValueError("stride must be positive and padding non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dtype = resolve_dtype(dtype)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            he_normal(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in,
                rng,
                dtype=self.dtype,
            ),
            name=f"{name}.weight",
            dtype=self.dtype,
        )
        self.bias = Parameter(
            np.zeros(out_channels), name=f"{name}.bias", dtype=self.dtype
        )
        self._cache = None
        self._patch_scratch = None
        self._grad_patch_scratch = None

    def _patches(self, inputs: np.ndarray) -> np.ndarray:
        patches = im2col_patches(
            inputs,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
            out=self._patch_scratch,
        )
        self._patch_scratch = patches
        return patches

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=self.dtype)
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got {inputs.shape}"
            )
        batch, _, height, width = inputs.shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        patches = self._patches(inputs)
        kernel_matrix = self.weight.value.reshape(self.out_channels, -1)
        outputs = np.matmul(kernel_matrix, patches)
        outputs += self.bias.value[:, None]
        if training:
            self._cache = (inputs.shape, patches, None)
        else:
            self._cache = (inputs.shape, None, inputs)
        return outputs.reshape(batch, self.out_channels, out_h, out_w)

    def forward_fused_relu(self, inputs: np.ndarray) -> np.ndarray:
        """Inference forward with the successor ReLU fused in place.

        Called by :class:`~repro.nn.base.Sequential` when this layer is
        immediately followed by a ReLU and ``training=False``: the
        rectification happens with one in-place ``maximum`` on the conv
        GEMM output instead of the activation's separate mask-allocate
        and multiply passes.  Outputs equal ``ReLU(forward(inputs))``.
        """
        outputs = self.forward(inputs, training=False)
        return np.maximum(outputs, 0.0, out=outputs)

    def backward_params_only(self, grad_output: np.ndarray) -> None:
        """Accumulate weight/bias gradients without the input gradient.

        Used by the training loop for the network's first layer, whose
        input gradient nobody consumes — skipping it avoids the col2im
        scatter and one GEMM per step.
        """
        self._accumulate_param_grads(grad_output)
        return None

    def _accumulate_param_grads(self, grad_output: np.ndarray) -> tuple:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, patches, inputs = self._cache
        if patches is None:
            patches = self._patches(inputs)
        grad_output = np.asarray(grad_output, dtype=self.dtype)
        batch, _, out_h, out_w = grad_output.shape
        grad_matrix = grad_output.reshape(
            batch, self.out_channels, out_h * out_w
        )
        self.weight.grad += np.matmul(
            grad_matrix, patches.transpose(0, 2, 1)
        ).sum(axis=0).reshape(self.weight.value.shape)
        self.bias.grad += grad_matrix.sum(axis=(0, 2))
        return input_shape, patches, grad_matrix

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape, patches, grad_matrix = self._accumulate_param_grads(
            grad_output
        )
        kernel_matrix = self.weight.value.reshape(self.out_channels, -1)
        scratch = self._grad_patch_scratch
        if scratch is None or scratch.shape != patches.shape or (
            scratch.dtype != patches.dtype
        ):
            scratch = np.empty_like(patches)
            self._grad_patch_scratch = scratch
        grad_patches = np.matmul(kernel_matrix.T, grad_matrix, out=scratch)
        return col2im_patches(
            grad_patches,
            input_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def parameters(self) -> "list[Parameter]":
        return [self.weight, self.bias]
