"""2-D convolution layer implemented with im2col."""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.base import Layer, Parameter
from repro.nn.dtype import resolve_dtype
from repro.nn.engine import PlanError
from repro.nn.im2col import col2im_patches, conv_output_size, im2col_patches
from repro.nn.init import fallback_rng, he_normal

#: Per-shape scratch buffers kept per layer.  Two shapes flow through a
#: typical predict/fit loop (the full tile and the remainder tile); a
#: couple more covers validation sets of a different size without
#: letting pathological callers grow the cache without bound.
_SCRATCH_SLOTS = 4


def _cached_scratch(cache: dict, key, buffer) -> None:
    """Insert ``buffer`` under ``key``, evicting oldest beyond the bound."""
    while len(cache) >= _SCRATCH_SLOTS:
        cache.pop(next(iter(cache)))
    cache[key] = buffer


class Conv2D(Layer):
    """Convolution over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of input and output feature maps.
    kernel_size:
        Side of the square kernel.
    stride, padding:
        Convolution stride and symmetric zero padding.
    rng:
        Source of randomness for weight initialisation; pass a seeded
        generator for reproducible models.
    dtype:
        Compute dtype of the layer (weights, activations, gradients);
        ``None`` keeps the float64 reference mode.

    The forward pass is one batched GEMM over the channel-major patch
    tensor of :func:`~repro.nn.im2col.im2col_patches`, producing
    NCHW-contiguous outputs with no transpose.  The patch tensor — the
    layer's dominant allocation — is written into one scratch buffer
    reused across steps.  In inference mode (``training=False``) the
    patches are not cached at all; only a reference to the input is
    kept, so a (rare) backward pass after an inference forward (the
    saliency analysis) recomputes them on demand.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator = None,
        name: str = "conv",
        dtype=None,
    ) -> None:
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("channel counts and kernel size must be positive")
        if stride <= 0 or padding < 0:
            raise ValueError("stride must be positive and padding non-negative")
        rng = fallback_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dtype = resolve_dtype(dtype)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            he_normal(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in,
                rng,
                dtype=self.dtype,
            ),
            name=f"{name}.weight",
            dtype=self.dtype,
        )
        self.bias = Parameter(
            np.zeros(out_channels), name=f"{name}.bias", dtype=self.dtype
        )
        self._cache = None
        self._patch_scratch = {}
        self._grad_patch_scratch = {}

    def _patches(self, inputs: np.ndarray) -> np.ndarray:
        # Keyed per (shape, dtype) so the full-tile / remainder-tile
        # alternation of predict and fit loops hits a stable buffer
        # instead of reallocating the scratch twice per call.
        key = (inputs.shape, inputs.dtype.str)
        patches = im2col_patches(
            inputs,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
            out=self._patch_scratch.get(key),
        )
        if patches is not self._patch_scratch.get(key):
            _cached_scratch(self._patch_scratch, key, patches)
        return patches

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=self.dtype)
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got {inputs.shape}"
            )
        batch, _, height, width = inputs.shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        patches = self._patches(inputs)
        kernel_matrix = self.weight.value.reshape(self.out_channels, -1)
        outputs = np.matmul(kernel_matrix, patches)
        outputs += self.bias.value[:, None]
        if training:
            self._cache = (inputs.shape, patches, None)
        else:
            self._cache = (inputs.shape, None, inputs)
        return outputs.reshape(batch, self.out_channels, out_h, out_w)

    def forward_fused_relu(self, inputs: np.ndarray) -> np.ndarray:
        """Inference forward with the successor ReLU fused in place.

        Called by :class:`~repro.nn.base.Sequential` when this layer is
        immediately followed by a ReLU and ``training=False``: the
        rectification happens with one in-place ``maximum`` on the conv
        GEMM output instead of the activation's separate mask-allocate
        and multiply passes.  Outputs equal ``ReLU(forward(inputs))``.
        """
        outputs = self.forward(inputs, training=False)
        return np.maximum(outputs, 0.0, out=outputs)

    def plan_inference(self, builder, source):
        return self._plan_conv(builder, source, fuse_relu=False)

    def plan_fused_relu(self, builder, source):
        """Plan hook for the fused conv → ReLU inference epilogue."""
        return self._plan_conv(builder, source, fuse_relu=True)

    def _plan_conv(self, builder, source, fuse_relu: bool):
        """Emit the im2col-GEMM kernel into an inference plan.

        Same operation sequence as :meth:`forward` (gather, one batched
        ``matmul``, in-place bias add, optional in-place ``maximum``),
        so outputs are bit-identical to the dynamic path; the patch
        tensor and padded-input buffer live in reusable arena scratch.
        1x1/stride-1/pad-0 convolutions skip the gather entirely — the
        input reshaped to ``(N, C, H*W)`` *is* the patch tensor.
        """
        if source.ndim != 4 or source.shape[1] != self.in_channels:
            raise PlanError(
                f"expected (N, {self.in_channels}, H, W) input, "
                f"got {source.shape}"
            )
        batch, _, height, width = source.shape
        kernel = self.kernel_size
        stride = self.stride
        pad = self.padding
        out_h = conv_output_size(height, kernel, stride, pad)
        out_w = conv_output_size(width, kernel, stride, pad)
        positions = out_h * out_w
        out = builder.activation((batch, self.out_channels, out_h, out_w))

        if kernel == 1 and stride == 1 and pad == 0:
            def build(bind):
                x3 = bind(source).reshape(batch, self.in_channels, positions)
                y3 = bind(out).reshape(batch, self.out_channels, positions)

                def step():
                    weights = self.weight.value.reshape(self.out_channels, -1)
                    np.matmul(weights, x3, out=y3)
                    np.add(y3, self.bias.value[:, None], out=y3)
                    if fuse_relu:
                        np.maximum(y3, 0.0, out=y3)

                return step

            builder.emit(build, reads=(source,), writes=(out,))
            return out

        patches = builder.scratch(
            (batch, self.in_channels * kernel * kernel, positions)
        )
        padded = (
            builder.scratch(
                (batch, self.in_channels, height + 2 * pad, width + 2 * pad)
            )
            if pad else None
        )

        def build(bind):
            x = bind(source)
            y3 = bind(out).reshape(batch, self.out_channels, positions)
            patch_buffer = bind(patches)
            sink = patch_buffer.reshape(
                batch, self.in_channels, kernel, kernel, out_h, out_w
            )
            if pad:
                padded_view = bind(padded)
                interior = padded_view[:, :, pad:pad + height, pad:pad + width]
                # The border must be re-zeroed every run: the arena may
                # hand these bytes to a later slot within the same pass.
                borders = (
                    padded_view[:, :, :pad, :],
                    padded_view[:, :, pad + height:, :],
                    padded_view[:, :, pad:pad + height, :pad],
                    padded_view[:, :, pad:pad + height, pad + width:],
                )
                window_source = padded_view
            else:
                interior = None
                borders = ()
                window_source = x
            windows = sliding_window_view(
                window_source, (kernel, kernel), axis=(2, 3)
            )[:, :, ::stride, ::stride].transpose(0, 1, 4, 5, 2, 3)

            def step():
                if interior is not None:
                    for border in borders:
                        border[...] = 0.0
                    np.copyto(interior, x)
                np.copyto(sink, windows)
                weights = self.weight.value.reshape(self.out_channels, -1)
                np.matmul(weights, patch_buffer, out=y3)
                np.add(y3, self.bias.value[:, None], out=y3)
                if fuse_relu:
                    np.maximum(y3, 0.0, out=y3)

            return step

        scratch = (patches,) + ((padded,) if padded is not None else ())
        builder.emit(build, reads=(source,), writes=(out,), scratch=scratch)
        builder.free(*scratch)
        return out

    def backward_params_only(self, grad_output: np.ndarray) -> None:
        """Accumulate weight/bias gradients without the input gradient.

        Used by the training loop for the network's first layer, whose
        input gradient nobody consumes — skipping it avoids the col2im
        scatter and one GEMM per step.
        """
        self._accumulate_param_grads(grad_output)
        return None

    def _accumulate_param_grads(self, grad_output: np.ndarray) -> tuple:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, patches, inputs = self._cache
        if patches is None:
            patches = self._patches(inputs)
        grad_output = np.asarray(grad_output, dtype=self.dtype)
        batch, _, out_h, out_w = grad_output.shape
        grad_matrix = grad_output.reshape(
            batch, self.out_channels, out_h * out_w
        )
        self.weight.grad += np.matmul(
            grad_matrix, patches.transpose(0, 2, 1)
        ).sum(axis=0).reshape(self.weight.value.shape)
        self.bias.grad += grad_matrix.sum(axis=(0, 2))
        return input_shape, patches, grad_matrix

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape, patches, grad_matrix = self._accumulate_param_grads(
            grad_output
        )
        kernel_matrix = self.weight.value.reshape(self.out_channels, -1)
        key = (patches.shape, patches.dtype.str)
        scratch = self._grad_patch_scratch.get(key)
        if scratch is None:
            scratch = np.empty_like(patches)
            _cached_scratch(self._grad_patch_scratch, key, scratch)
        grad_patches = np.matmul(kernel_matrix.T, grad_matrix, out=scratch)
        return col2im_patches(
            grad_patches,
            input_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def parameters(self) -> "list[Parameter]":
        return [self.weight, self.bias]
