"""Fully-connected layer and flattening."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer, Parameter
from repro.nn.dtype import as_float, resolve_dtype
from repro.nn.engine import PlanError
from repro.nn.init import fallback_rng, he_normal


class Dense(Layer):
    """Affine transform ``y = x W + b`` over flattened feature vectors."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator = None,
        name: str = "dense",
        dtype=None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = fallback_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.dtype = resolve_dtype(dtype)
        self.weight = Parameter(
            he_normal(
                (in_features, out_features), in_features, rng,
                dtype=self.dtype,
            ),
            name=f"{name}.weight",
            dtype=self.dtype,
        )
        self.bias = Parameter(
            np.zeros(out_features), name=f"{name}.bias", dtype=self.dtype
        )
        self._inputs = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=self.dtype)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected (N, {self.in_features}) input, got {inputs.shape}"
            )
        self._inputs = inputs
        return inputs @ self.weight.value + self.bias.value

    def plan_inference(self, builder, source):
        if source.ndim != 2 or source.shape[1] != self.in_features:
            raise PlanError(
                f"expected (N, {self.in_features}) input, got {source.shape}"
            )
        out = builder.activation((source.shape[0], self.out_features))

        def build(bind):
            x = bind(source)
            y = bind(out)

            def step():
                np.matmul(x, self.weight.value, out=y)
                np.add(y, self.bias.value, out=y)

            return step

        builder.emit(build, reads=(source,), writes=(out,))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=self.dtype)
        self.weight.grad += self._inputs.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> "list[Parameter]":
        return [self.weight, self.bias]


class Flatten(Layer):
    """Flatten NCHW feature maps into (N, C*H*W) vectors."""

    def __init__(self) -> None:
        self._input_shape = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = as_float(inputs)
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def plan_inference(self, builder, source):
        if source.ndim < 2:
            raise PlanError(f"expected batched input, got {source.shape}")
        batch = source.shape[0]
        # A pure reshape: alias the producer's allocation, no step at all.
        return builder.alias(source, (batch, source.size // max(batch, 1)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return as_float(grad_output).reshape(self._input_shape)
