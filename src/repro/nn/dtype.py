"""Compute-dtype policy for the neural-network stack.

Every layer, loss, optimizer and the trainer agree on one floating-point
compute dtype instead of hard-casting to float64 at each boundary.  Two
dtypes are supported:

* ``float32`` — the fast path; default for models built through
  :func:`repro.nn.models.build_model` and for the experiment configs.
* ``float64`` — the reference/parity mode; default for layers constructed
  directly (so numerical gradient checks and the pre-existing float64
  behaviour are preserved bit for bit).

The policy is threaded through constructors (``dtype=`` on layers, model
builders and :class:`~repro.nn.trainer.Trainer`); activations, pooling and
other stateless layers simply preserve whatever floating dtype flows in.
"""

from __future__ import annotations

import numpy as np

#: Fast compute dtype used by the model builders and experiment configs.
DEFAULT_DTYPE = np.dtype(np.float32)

#: Reference dtype: the historical behaviour of the stack, kept for parity
#: testing and for direct layer construction.
REFERENCE_DTYPE = np.dtype(np.float64)

_SUPPORTED = (np.dtype(np.float32), np.dtype(np.float64))


def resolve_dtype(dtype, default=REFERENCE_DTYPE) -> np.dtype:
    """Normalise a user-facing dtype spec to a supported numpy dtype.

    ``None`` resolves to ``default``.  Accepts strings (``"float32"``),
    numpy types and dtypes; anything but float32/float64 is rejected.
    """
    if dtype is None:
        dtype = default
    dtype = np.dtype(dtype)
    if dtype not in _SUPPORTED:
        raise ValueError(
            f"unsupported compute dtype {dtype}; use float32 or float64"
        )
    return dtype


#: Reduced-precision dtypes accepted as activation *storage* (compute
#: still happens in a supported compute dtype; see repro.nn.engine).
STORAGE_DTYPES = (np.dtype(np.float16),)


def resolve_storage_dtype(storage, compute) -> "np.dtype | None":
    """Normalise an activation-storage dtype spec against a compute dtype.

    ``None`` (or a spec equal to the compute dtype) means "store
    activations in the compute dtype" and resolves to ``None``.  The
    only reduced-precision storage supported is float16; anything else
    is rejected so a typo cannot silently change numerics.
    """
    if storage is None:
        return None
    storage = np.dtype(storage)
    if storage == np.dtype(compute):
        return None
    if storage not in STORAGE_DTYPES:
        raise ValueError(
            f"unsupported storage dtype {storage}; use float16 (or None "
            f"to store activations in the compute dtype)"
        )
    return storage


def as_float(array) -> np.ndarray:
    """View ``array`` as a float ndarray without changing float dtypes.

    Float32/float64 inputs pass through untouched (no copy, no cast);
    anything else (ints, bools, lists) is promoted to the reference
    float64, matching the stack's historical behaviour.
    """
    array = np.asarray(array)
    if array.dtype in _SUPPORTED:
        return array
    return array.astype(REFERENCE_DTYPE)
