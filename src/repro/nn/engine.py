"""Planned inference engine: shape-specialized execution plans over an arena.

The dynamic path (:meth:`repro.nn.base.Sequential.forward`) walks the
layer list on every call, allocating activations and im2col scratch as
it goes.  This module compiles a :class:`~repro.nn.base.Sequential` once
per ``(input shape, compute dtype, storage dtype, fusion signature)``
into an :class:`InferencePlan`: every activation, im2col patch tensor
and pooling scratch buffer is laid out ahead of time into one reusable
arena allocation, and a forward pass executes as a flat list of kernel
closures writing in place into arena slots — zero per-call buffer
allocation after the plan is built.

Parity contract
---------------
A float32/float64 plan emits the *exact* floating-point operation
sequence of the legacy fused inference path (in-place ``out=`` ufunc
variants of the same operations), so plan outputs are bit-identical to
``Sequential.forward(..., training=False)``.  The dynamic path stays the
reference; ``tests/nn/test_engine.py`` pins the parity across every
model-zoo architecture and both reference dtypes.

Layers participate by implementing ``plan_inference(builder, source)``
(and optionally ``plan_fused_relu`` for the conv→ReLU epilogue) against
the :class:`PlanBuilder` API; anything without a hook raises
:class:`PlanError` and the caller falls back to the dynamic path.

Execution knobs (resolved per model, see :func:`predict_proba`):

``inference_engine``
    ``"plan"`` (default, also ``REPRO_NN_ENGINE``) or ``"dynamic"``.
``storage_dtype``
    ``None`` keeps activations in the compute dtype; ``"float16"``
    stores activation slots half-precision and stages each kernel's
    operands through float32 compute buffers (accuracy-level, not
    bit-level, agreement — the reference dtypes are never staged).
``blas_threads``
    Thread count pinned around plan execution via
    :func:`blas_thread_limit` (also ``REPRO_BLAS_THREADS``).

Weights and biases are read from their layers at kernel run time, so
in-place optimizer updates *and* wholesale ``Parameter.value`` /
BatchNorm running-statistic reassignment between calls are both picked
up without recompiling.  Plans are cached on the model (bounded LRU) and
re-resolved on any shape, dtype, storage or fusion-flag change;
:meth:`Sequential.add` invalidates the cache.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager

import numpy as np

from repro.nn.dtype import resolve_storage_dtype

__all__ = [
    "InferencePlan",
    "PlanBuilder",
    "PlanError",
    "Slot",
    "blas_thread_limit",
    "clear_plan_cache",
    "compile_plan",
    "get_plan",
    "predict_proba",
]

#: Plans kept per model before least-recently-used eviction.
PLAN_CACHE_SIZE = 8

#: Arena slot alignment in bytes (cache-line sized).
_ALIGN = 64

#: Engine selector environment variable ("plan" or "dynamic").
ENGINE_ENV_VAR = "REPRO_NN_ENGINE"

#: BLAS thread-count environment variable (positive integer).
BLAS_THREADS_ENV_VAR = "REPRO_BLAS_THREADS"


class PlanError(Exception):
    """A model (or one of its layers) cannot be compiled into a plan.

    Raising this from a ``plan_inference`` hook is not an error
    condition for the caller: :func:`predict_proba` falls back to the
    dynamic layer-by-layer path and caches the verdict.
    """


# ----------------------------------------------------------------------
# Virtual arena: compile-time layout with refcounted slot lifetimes
# ----------------------------------------------------------------------


class _Allocation:
    """One byte range of the arena, possibly shared by alias slots."""

    __slots__ = ("index", "offset", "nbytes", "reserved", "dtype", "refs",
                 "live_start", "live_end")

    def __init__(self, index, offset, nbytes, reserved, dtype, live_start):
        self.index = index
        self.offset = offset
        self.nbytes = nbytes
        self.reserved = reserved
        self.dtype = dtype
        self.refs = 1
        self.live_start = live_start
        self.live_end = None  # step count at free time; None while pinned


class Slot:
    """A shaped view handle over an arena allocation.

    Layer hooks receive and return slots; ``shape`` is what they inspect
    to validate geometry, exactly as ``forward`` inspects its input.
    """

    __slots__ = ("shape", "dtype", "alloc", "staged")

    def __init__(self, shape, dtype, alloc, staged):
        self.shape = tuple(int(dim) for dim in shape)
        self.dtype = np.dtype(dtype)
        self.alloc = alloc
        self.staged = staged

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        size = 1
        for dim in self.shape:
            size *= dim
        return size

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Slot(shape={self.shape}, dtype={self.dtype}, " \
               f"alloc={self.alloc.index})"


class _ArenaLayout:
    """Best-fit offset allocator with an exact-coalescing free list.

    Runs entirely at compile time: ``alloc``/``free`` simulate the slot
    lifetimes the emitted steps imply, and ``watermark`` is the single
    buffer size the plan materializes afterwards.
    """

    def __init__(self):
        self.watermark = 0
        self._free = []  # sorted (offset, size) blocks

    def alloc(self, size: int) -> int:
        best = None
        for index, (offset, block) in enumerate(self._free):
            if block >= size and (best is None or block < self._free[best][1]):
                best = index
        if best is not None:
            offset, block = self._free.pop(best)
            if block > size:
                self._free.append((offset + size, block - size))
                self._free.sort()
            return offset
        offset = self.watermark
        self.watermark += size
        return offset

    def free(self, offset: int, size: int) -> None:
        self._free.append((offset, size))
        self._free.sort()
        merged = []
        for block_offset, block_size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == block_offset:
                merged[-1] = (merged[-1][0], merged[-1][1] + block_size)
            else:
                merged.append((block_offset, block_size))
        self._free = merged


def _aligned(nbytes: int) -> int:
    return (max(nbytes, 1) + _ALIGN - 1) // _ALIGN * _ALIGN


class PlanBuilder:
    """Compile-time context handed to the layer ``plan_inference`` hooks.

    Hooks allocate ``activation`` slots for their outputs, ``scratch``
    slots for internal buffers (patch tensors, padded inputs, masks —
    never staged to the storage dtype), ``alias`` existing slots for
    zero-copy reshapes, ``emit`` kernel steps and ``free`` slots whose
    last reader has been emitted so the arena can reuse their bytes.
    """

    def __init__(self, compute_dtype, storage_dtype=None):
        self.compute_dtype = np.dtype(compute_dtype)
        self.storage_dtype = (
            np.dtype(storage_dtype) if storage_dtype is not None else None
        )
        self.layout = _ArenaLayout()
        self.allocations = []
        self.steps = []  # (build, reads, writes, scratch) tuples

    def _alloc(self, shape, dtype, staged):
        dtype = np.dtype(dtype)
        slot = Slot(shape, dtype, None, staged)
        nbytes = slot.size * dtype.itemsize
        reserved = _aligned(nbytes)
        allocation = _Allocation(
            index=len(self.allocations),
            offset=self.layout.alloc(reserved),
            nbytes=nbytes,
            reserved=reserved,
            dtype=dtype,
            live_start=len(self.steps),
        )
        self.allocations.append(allocation)
        slot.alloc = allocation
        return slot

    def activation(self, shape) -> Slot:
        """An activation slot (stored in the storage dtype when set)."""
        if self.storage_dtype is not None:
            return self._alloc(shape, self.storage_dtype, staged=True)
        return self._alloc(shape, self.compute_dtype, staged=False)

    def scratch(self, shape, dtype=None) -> Slot:
        """A compute-dtype (or explicit-dtype) scratch slot, never staged."""
        return self._alloc(
            shape, dtype if dtype is not None else self.compute_dtype,
            staged=False,
        )

    def alias(self, slot: Slot, shape) -> Slot:
        """A reshaped view of ``slot`` sharing its allocation."""
        view = Slot(shape, slot.dtype, slot.alloc, slot.staged)
        if view.size != slot.size:
            raise PlanError(
                f"alias shape {tuple(shape)} does not match slot {slot.shape}"
            )
        slot.alloc.refs += 1
        return view

    def free(self, *slots: Slot) -> None:
        """Release slots whose last reading step has been emitted."""
        for slot in slots:
            allocation = slot.alloc
            if allocation.refs <= 0:
                raise PlanError("slot freed twice during compilation")
            allocation.refs -= 1
            if allocation.refs == 0:
                allocation.live_end = len(self.steps)
                self.layout.free(allocation.offset, allocation.reserved)

    def emit(self, build, reads=(), writes=(), scratch=()) -> None:
        """Record one kernel step.

        ``build(bind)`` is called once at plan materialization with a
        ``bind(slot) -> ndarray`` resolver and returns the zero-argument
        kernel closure.  ``reads``/``writes`` are the activation-facing
        operands (staged through compute-dtype buffers in float16
        storage mode); ``scratch`` slots always bind to their arena
        views directly.
        """
        self.steps.append((build, tuple(reads), tuple(writes), tuple(scratch)))


# ----------------------------------------------------------------------
# Materialized plan
# ----------------------------------------------------------------------


class _StepInfo:
    """Introspection record for one executed step (used by tests)."""

    __slots__ = ("reads", "writes", "scratch")

    def __init__(self, reads, writes, scratch):
        self.reads = reads
        self.writes = writes
        self.scratch = scratch


class InferencePlan:
    """A compiled forward pass: one arena buffer plus flat kernel steps.

    Built by :func:`compile_plan`; execute with :meth:`run`.  The
    returned logits are a view into the arena — copy them (or consume
    them immediately, as :func:`predict_proba` does) before the next
    ``run``.
    """

    def __init__(self, builder: PlanBuilder, input_slot: Slot,
                 output_slot: Slot, input_shape):
        self.compute_dtype = builder.compute_dtype
        self.storage_dtype = builder.storage_dtype
        self.input_shape = tuple(input_shape)
        self.arena_nbytes = builder.layout.watermark
        self._buffer = np.empty(max(self.arena_nbytes, 1), dtype=np.uint8)
        self._flat_views = {}
        for allocation in builder.allocations:
            raw = self._buffer[
                allocation.offset:allocation.offset + allocation.nbytes
            ]
            self._flat_views[allocation.index] = raw.view(allocation.dtype)
        self._allocations = builder.allocations
        self.step_info = [
            _StepInfo(reads, writes, scratch)
            for _, reads, writes, scratch in builder.steps
        ]
        self._staging = self._build_staging(builder.steps)
        self._steps = [
            self._bind_step(step, self._staging) for step in builder.steps
        ]
        self._input_view = self.slot_view(input_slot)
        self._output_view = self.slot_view(output_slot)
        self.output_shape = output_slot.shape

    def slot_view(self, slot: Slot) -> np.ndarray:
        """The arena array backing ``slot`` (storage dtype for staged)."""
        return self._flat_views[slot.alloc.index][:slot.size].reshape(
            slot.shape
        )

    def _build_staging(self, steps):
        """Compute-dtype staging buffers for float16 activation storage.

        Position ``i`` holds the largest element count any step assigns
        to its ``i``-th staged operand, so every step reuses the same
        few flat buffers.
        """
        if self.storage_dtype is None:
            return []
        sizes = []
        for _, reads, writes, _ in steps:
            staged = [
                slot for slot in dict.fromkeys(reads + writes) if slot.staged
            ]
            for position, slot in enumerate(staged):
                if position >= len(sizes):
                    sizes.append(slot.size)
                else:
                    sizes[position] = max(sizes[position], slot.size)
        return [np.empty(size, dtype=self.compute_dtype) for size in sizes]

    def _bind_step(self, step, staging):
        build, reads, writes, scratch = step
        bound = {}
        for slot in scratch:
            bound[slot] = self.slot_view(slot)
        pre, post = [], []
        staged = [
            slot for slot in dict.fromkeys(reads + writes) if slot.staged
        ]
        for position, slot in enumerate(staged):
            stage = staging[position][:slot.size].reshape(slot.shape)
            storage = self.slot_view(slot)
            bound[slot] = stage
            if slot in reads:
                pre.append((stage, storage))
            if slot in writes:
                post.append((storage, stage))
        for slot in dict.fromkeys(reads + writes):
            if slot not in bound:
                bound[slot] = self.slot_view(slot)
        kernel = build(bound.__getitem__)
        if not pre and not post:
            return kernel

        def staged_kernel():
            for destination, source in pre:
                np.copyto(destination, source)
            kernel()
            for destination, source in post:
                np.copyto(destination, source)

        return staged_kernel

    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Execute the plan; returns the logits view (valid until next run)."""
        inputs = np.asarray(inputs)
        if inputs.shape != self.input_shape:
            raise ValueError(
                f"plan compiled for input shape {self.input_shape}, "
                f"got {inputs.shape}"
            )
        np.copyto(self._input_view, inputs)
        for step in self._steps:
            step()
        return self._output_view

    def debug_allocations(self):
        """(offset, reserved, live_start, live_end) per allocation.

        ``live_end`` is ``None`` for pinned allocations (input, output,
        anything never freed).  Tests assert that allocations whose byte
        ranges overlap have disjoint live step intervals.
        """
        return [
            (a.offset, a.reserved, a.live_start, a.live_end)
            for a in self._allocations
        ]


# ----------------------------------------------------------------------
# Compilation and the per-model plan cache
# ----------------------------------------------------------------------


def _fusion_signature(layer):
    """Nested tuple of every ``fuse_inference`` flag reachable from ``layer``.

    Part of the plan-cache key: a plan bakes the fusion decisions in, so
    toggling any (possibly nested) Sequential's flag must miss the cache.
    """
    children = getattr(layer, "plan_children", None)
    flag = getattr(layer, "fuse_inference", None)
    if children is None:
        return flag
    return (flag, tuple(_fusion_signature(child) for child in children()))


def compile_plan(model, input_shape, storage_dtype=None) -> InferencePlan:
    """Compile ``model`` for ``input_shape`` into an :class:`InferencePlan`.

    Raises :class:`PlanError` when any layer lacks a plan hook (callers
    fall back to the dynamic path) and the same :class:`ValueError` the
    dynamic path would raise for invalid geometry.
    """
    builder = PlanBuilder(model.dtype, storage_dtype)
    input_slot = builder.scratch(input_shape)
    output_slot = model.plan_inference(builder, input_slot)
    return InferencePlan(builder, input_slot, output_slot, input_shape)


#: Cache sentinel for models (or fusion configurations) that cannot be
#: planned: remembered so the compile is not retried on every predict.
_UNPLANNABLE = object()


def get_plan(model, input_shape, storage_dtype=None):
    """The cached plan for ``(model, input_shape, storage)``, or ``None``.

    ``None`` means the model cannot be planned (a layer without a hook);
    the verdict is cached alongside real plans in the model's bounded
    LRU cache, which :meth:`Sequential.add` clears.
    """
    key = (
        tuple(input_shape),
        model.dtype.str,
        storage_dtype.str if storage_dtype is not None else "",
        _fusion_signature(model),
    )
    cache = model.__dict__.setdefault("_plan_cache", OrderedDict())
    if key in cache:
        cache.move_to_end(key)
        plan = cache[key]
        return None if plan is _UNPLANNABLE else plan
    try:
        plan = compile_plan(model, input_shape, storage_dtype)
    except PlanError:
        cache[key] = _UNPLANNABLE
        return None
    cache[key] = plan
    while len(cache) > PLAN_CACHE_SIZE:
        cache.popitem(last=False)
    return plan


def clear_plan_cache(model) -> None:
    """Drop every cached plan of ``model``."""
    model.__dict__.pop("_plan_cache", None)


# ----------------------------------------------------------------------
# BLAS thread control
# ----------------------------------------------------------------------

_BLAS_CONTROL_UNRESOLVED = object()
_blas_control = _BLAS_CONTROL_UNRESOLVED

_OPENBLAS_SYMBOL_PAIRS = (
    ("scipy_openblas_set_num_threads64_", "scipy_openblas_get_num_threads64_"),
    ("scipy_openblas_set_num_threads", "scipy_openblas_get_num_threads"),
    ("openblas_set_num_threads64_", "openblas_get_num_threads64_"),
    ("openblas_set_num_threads", "openblas_get_num_threads"),
)


def _load_openblas_control():
    """(set_threads, get_threads) from the BLAS bundled with numpy/scipy.

    threadpoolctl is preferred when importable; otherwise the OpenBLAS
    shared objects shipped inside ``numpy.libs``/``scipy.libs`` are
    probed over ctypes.  Returns ``None`` when no control surface exists
    (thread limiting then degrades to a no-op).
    """
    try:
        import threadpoolctl

        return ("threadpoolctl", threadpoolctl)
    except ImportError:
        pass
    import ctypes
    import glob

    candidates = []
    for package in ("numpy", "scipy"):
        try:
            module = __import__(package)
        except ImportError:
            continue
        libs_dir = os.path.join(
            os.path.dirname(os.path.dirname(module.__file__)),
            f"{package}.libs",
        )
        candidates.extend(sorted(glob.glob(os.path.join(libs_dir, "*.so*"))))
    for path in candidates:
        try:
            library = ctypes.CDLL(path)
        except OSError:
            continue
        for set_name, get_name in _OPENBLAS_SYMBOL_PAIRS:
            try:
                set_fn = getattr(library, set_name)
                get_fn = getattr(library, get_name)
            except AttributeError:
                continue
            set_fn.argtypes = [ctypes.c_int]
            set_fn.restype = None
            get_fn.argtypes = []
            get_fn.restype = ctypes.c_int
            return ("ctypes", (set_fn, get_fn))
    return None


def _resolve_blas_control():
    global _blas_control
    if _blas_control is _BLAS_CONTROL_UNRESOLVED:
        _blas_control = _load_openblas_control()
    return _blas_control


@contextmanager
def blas_thread_limit(threads):
    """Pin the BLAS thread count inside the context.

    ``None`` is a no-op.  Uses threadpoolctl when available, otherwise
    the OpenBLAS ``*_set_num_threads`` entry points over ctypes; when
    neither exists the context is a no-op rather than an error.
    """
    if threads is None:
        yield
        return
    threads = int(threads)
    if threads < 1:
        raise ValueError(f"blas_threads must be positive, got {threads}")
    control = _resolve_blas_control()
    if control is None:
        yield
        return
    kind, handle = control
    if kind == "threadpoolctl":
        with handle.threadpool_limits(limits=threads):
            yield
        return
    set_threads, get_threads = handle
    previous = get_threads()
    set_threads(threads)
    try:
        yield
    finally:
        set_threads(previous)


# ----------------------------------------------------------------------
# Model-facing entry point
# ----------------------------------------------------------------------


def _resolve_engine(model) -> str:
    engine = getattr(model, "inference_engine", None)
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR) or "plan"
    if engine not in ("plan", "dynamic"):
        raise ValueError(
            f"inference_engine must be 'plan' or 'dynamic', got {engine!r}"
        )
    return engine


def _resolve_threads(model):
    threads = getattr(model, "blas_threads", None)
    if threads is None:
        raw = os.environ.get(BLAS_THREADS_ENV_VAR)
        if raw:
            threads = int(raw)
    if threads is not None and int(threads) < 1:
        raise ValueError(f"blas_threads must be positive, got {threads}")
    return threads


def predict_proba(model, inputs, batch_size: int = 64) -> np.ndarray:
    """Planned class probabilities; the engine behind ``Sequential.predict``.

    Routes through the plan cache (one plan per tile shape: the full
    ``batch_size`` tile plus the remainder tile), pins the BLAS thread
    count around the loop, and falls back to the legacy dynamic path
    when the engine knob says so or the model cannot be planned.
    Float32/float64 results are bit-identical to the dynamic path.
    """
    from repro.nn.losses import softmax

    inputs = np.asarray(inputs, dtype=model.dtype)
    storage = resolve_storage_dtype(
        getattr(model, "storage_dtype", None), model.dtype
    )
    if (
        _resolve_engine(model) != "plan"
        or inputs.ndim == 0
        or inputs.shape[0] == 0
    ):
        return model.predict_proba_dynamic(inputs, batch_size=batch_size)
    threads = _resolve_threads(model)
    total = inputs.shape[0]
    outputs = None
    with blas_thread_limit(threads):
        for start in range(0, total, batch_size):
            chunk = inputs[start:start + batch_size]
            plan = get_plan(model, chunk.shape, storage)
            if plan is None:
                return model.predict_proba_dynamic(
                    inputs, batch_size=batch_size
                )
            logits = plan.run(chunk)
            if storage is not None:
                # Half-precision storage: softmax in the compute dtype.
                logits = logits.astype(model.dtype)
            probabilities = softmax(logits)
            if outputs is None:
                outputs = np.empty(
                    (total, probabilities.shape[-1]),
                    dtype=probabilities.dtype,
                )
            outputs[start:start + chunk.shape[0]] = probabilities
    return outputs
