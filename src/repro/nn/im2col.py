"""im2col / col2im transforms used by the convolution and pooling layers.

Convolution is implemented as a matrix multiply over patches extracted by
``im2col``; the backward pass scatters gradients back with ``col2im``.
Layout convention throughout the framework is NCHW.
"""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def im2col(
    images: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> np.ndarray:
    """Extract sliding patches from a batch of NCHW images.

    Returns an array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``
    where each row is one receptive field.
    """
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {images.shape}")
    batch, channels, height, width = images.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    padded = np.pad(
        images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
    )
    columns = np.zeros(
        (batch, channels, kernel_h, kernel_w, out_h, out_w), dtype=np.float64
    )
    for row in range(kernel_h):
        row_end = row + stride * out_h
        for col in range(kernel_w):
            col_end = col + stride * out_w
            columns[:, :, row, col, :, :] = padded[
                :, :, row:row_end:stride, col:col_end:stride
            ]
    return columns.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, -1
    )


def col2im(
    columns: np.ndarray,
    input_shape: tuple,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Scatter-add patch columns back into an NCHW image batch.

    Inverse (in the adjoint sense) of :func:`im2col`: overlapping patch
    positions accumulate.
    """
    columns = np.asarray(columns, dtype=np.float64)
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    reshaped = columns.reshape(
        batch, out_h, out_w, channels, kernel_h, kernel_w
    ).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad), dtype=np.float64
    )
    for row in range(kernel_h):
        row_end = row + stride * out_h
        for col in range(kernel_w):
            col_end = col + stride * out_w
            padded[:, :, row:row_end:stride, col:col_end:stride] += reshaped[
                :, :, row, col, :, :
            ]
    if pad == 0:
        return padded
    return padded[:, :, pad:pad + height, pad:pad + width]
