"""im2col / col2im transforms used by the convolution and pooling layers.

Convolution is implemented as a matrix multiply over patches extracted by
``im2col``; the backward pass scatters gradients back with ``col2im``.
Layout convention throughout the framework is NCHW.

The fast paths gather patches through a zero-copy
:func:`numpy.lib.stride_tricks.sliding_window_view` (one strided view,
one write into a GEMM-ready contiguous buffer that callers can
preallocate and reuse across steps) and scatter gradients back with at
most ``kernel_h * kernel_w`` vectorized strided adds — or a single
transpose-copy when windows do not overlap (the stride == kernel pooling
case).  The original loop-and-copy implementations are kept as
``im2col_scalar`` / ``col2im_scalar`` references; the tests assert both
paths agree exactly across geometries.  Neither path casts its input:
the compute dtype of the caller (float32 fast mode or float64 reference
mode) flows straight through.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.dtype import as_float


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def sliding_windows(
    images: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> np.ndarray:
    """Strided zero-copy view of all receptive fields of an NCHW batch.

    Returns a ``(N, C, out_h, out_w, kernel_h, kernel_w)`` view (a copy
    only when ``pad > 0`` forces one via :func:`numpy.pad`).  Pooling
    reduces directly over the last two axes of this view without ever
    materializing the patch matrix.
    """
    images = as_float(images)
    if images.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {images.shape}")
    _, _, height, width = images.shape
    # Validate geometry up front (raises on degenerate sizes).
    conv_output_size(height, kernel_h, stride, pad)
    conv_output_size(width, kernel_w, stride, pad)
    if pad:
        images = np.pad(
            images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    windows = sliding_window_view(
        images, (kernel_h, kernel_w), axis=(2, 3)
    )
    return windows[:, :, ::stride, ::stride]


def im2col(
    images: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> np.ndarray:
    """Extract sliding patches from a batch of NCHW images.

    Returns an array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``
    where each row is one receptive field.  A thin row-layout wrapper
    over :func:`im2col_patches` (the layout the layers consume);
    kept as the public transform the reference tests and external
    callers know.
    """
    images = as_float(images)
    if images.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {images.shape}")
    batch, _, height, width = images.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)
    patches = im2col_patches(images, kernel_h, kernel_w, stride, pad)
    return patches.transpose(0, 2, 1).reshape(batch * out_h * out_w, -1)


def col2im(
    columns: np.ndarray,
    input_shape: tuple,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Scatter-add patch columns back into an NCHW image batch.

    Inverse (in the adjoint sense) of :func:`im2col`: overlapping patch
    positions accumulate.  Delegates to :func:`col2im_patches` after a
    row-to-patch relayout.
    """
    columns = as_float(columns)
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)
    patches = columns.reshape(
        batch, out_h * out_w, channels * kernel_h * kernel_w
    ).transpose(0, 2, 1)
    return col2im_patches(
        patches, input_shape, kernel_h, kernel_w, stride, pad
    )


def im2col_patches(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
    out: np.ndarray = None,
) -> np.ndarray:
    """Patch tensor ``(N, C*kernel_h*kernel_w, out_h*out_w)`` of an NCHW batch.

    The channel-major layout the convolution layer multiplies directly:
    ``weights (C_out, C*kh*kw) @ patches`` broadcasts over the batch axis
    and yields NCHW-contiguous feature maps without any output transpose.
    Filling this layout from the sliding-window view is also several
    times faster than the row layout of :func:`im2col` because source
    reads stay contiguous along the spatial axes.  ``out`` may supply a
    preallocated scratch buffer (reused across training steps).
    """
    images = as_float(images)
    if images.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {images.shape}")
    batch, channels, height, width = images.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)
    windows = sliding_windows(images, kernel_h, kernel_w, stride, pad)
    shape = (batch, channels * kernel_h * kernel_w, out_h * out_w)
    if (
        out is None or out.shape != shape or out.dtype != images.dtype
        or not out.flags.c_contiguous
    ):
        out = np.empty(shape, dtype=images.dtype)
    sink = out.reshape(batch, channels, kernel_h, kernel_w, out_h, out_w)
    np.copyto(sink, windows.transpose(0, 1, 4, 5, 2, 3))
    return out


def col2im_patches(
    patches: np.ndarray,
    input_shape: tuple,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col_patches`: scatter-add patches back to NCHW.

    Same reduction as :func:`col2im`, operating on the channel-major
    layout; every per-offset add reads a contiguous slab of the patch
    tensor.
    """
    patches = as_float(patches)
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)
    view = patches.reshape(
        batch, channels, kernel_h, kernel_w, out_h, out_w
    )

    if pad == 0 and stride == kernel_h and stride == kernel_w:
        tiled = view.transpose(0, 1, 4, 2, 5, 3).reshape(
            batch, channels, out_h * kernel_h, out_w * kernel_w
        )
        if (out_h * kernel_h, out_w * kernel_w) == (height, width):
            # For 1x1 kernels the transpose permutes singleton axes and
            # the reshape stays a view of `patches` — which may be a
            # caller's reused scratch buffer.  Never hand that out.
            if np.shares_memory(tiled, patches):
                tiled = tiled.copy()
            return tiled
        result = np.zeros(
            (batch, channels, height, width), dtype=patches.dtype
        )
        result[:, :, :out_h * kernel_h, :out_w * kernel_w] = tiled
        return result

    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad),
        dtype=patches.dtype,
    )
    for row in range(kernel_h):
        row_end = row + stride * out_h
        for col in range(kernel_w):
            col_end = col + stride * out_w
            padded[:, :, row:row_end:stride, col:col_end:stride] += view[
                :, :, row, col
            ]
    if pad == 0:
        return padded
    return padded[:, :, pad:pad + height, pad:pad + width]


# ----------------------------------------------------------------------
# Scalar reference implementations (kept for parity testing)
# ----------------------------------------------------------------------


def im2col_scalar(
    images: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> np.ndarray:
    """Reference im2col: loop-and-copy through a 6-D scratch tensor."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {images.shape}")
    batch, channels, height, width = images.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    padded = np.pad(
        images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
    )
    columns = np.zeros(
        (batch, channels, kernel_h, kernel_w, out_h, out_w), dtype=np.float64
    )
    for row in range(kernel_h):
        row_end = row + stride * out_h
        for col in range(kernel_w):
            col_end = col + stride * out_w
            columns[:, :, row, col, :, :] = padded[
                :, :, row:row_end:stride, col:col_end:stride
            ]
    return columns.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, -1
    )


def col2im_scalar(
    columns: np.ndarray,
    input_shape: tuple,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Reference col2im: transpose to a 6-D tensor, then scatter-add."""
    columns = np.asarray(columns, dtype=np.float64)
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    reshaped = columns.reshape(
        batch, out_h, out_w, channels, kernel_h, kernel_w
    ).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad), dtype=np.float64
    )
    for row in range(kernel_h):
        row_end = row + stride * out_h
        for col in range(kernel_w):
            col_end = col + stride * out_w
            padded[:, :, row:row_end:stride, col:col_end:stride] += reshaped[
                :, :, row, col, :, :
            ]
    if pad == 0:
        return padded
    return padded[:, :, pad:pad + height, pad:pad + width]
