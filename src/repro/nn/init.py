"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import resolve_dtype


def he_normal(
    shape: tuple, fan_in: int, rng: np.random.Generator, dtype=None
) -> np.ndarray:
    """He/Kaiming normal initialisation, suited to ReLU networks.

    Samples are always drawn in float64 (so a given seed yields the same
    weights in every compute dtype) and cast to ``dtype`` afterwards.
    """
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    scale = np.sqrt(2.0 / fan_in)
    values = rng.normal(0.0, scale, size=shape)
    return values.astype(resolve_dtype(dtype), copy=False)


def xavier_uniform(
    shape: tuple, fan_in: int, fan_out: int, rng: np.random.Generator,
    dtype=None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    values = rng.uniform(-limit, limit, size=shape)
    return values.astype(resolve_dtype(dtype), copy=False)
