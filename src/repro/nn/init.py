"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def he_normal(
    shape: tuple, fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming normal initialisation, suited to ReLU networks."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    scale = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, scale, size=shape)


def xavier_uniform(
    shape: tuple, fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)
