"""Weight initialisation schemes."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.dtype import resolve_dtype

#: Process-lifetime entropy source of :func:`fallback_rng`.  An
#: unseeded SeedSequence draws OS entropy once, at import; every
#: convenience generator is a distinct child spawned from it.
_CONVENIENCE_SEEDS = np.random.SeedSequence()


def fallback_rng(
    rng: Optional[np.random.Generator] = None,
) -> np.random.Generator:
    """``rng`` itself, or a fresh generator for rng-less construction.

    Layer constructors accept ``rng=None`` as an ad-hoc convenience —
    every experiment path threads a generator seeded via
    ``spawn_seeds``/``SeedSequence``.  The fallback must still obey the
    worker-seeding invariant (rule R3 in ``INVARIANTS.md``): rather
    than scattering unseeded ``default_rng()`` calls across the layer
    modules, every fallback generator is spawned from this module's one
    :class:`~numpy.random.SeedSequence` — distinct per call (two
    rng-less layers never share an init stream) and auditable in a
    single place.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(_CONVENIENCE_SEEDS.spawn(1)[0])


def he_normal(
    shape: tuple, fan_in: int, rng: np.random.Generator, dtype=None
) -> np.ndarray:
    """He/Kaiming normal initialisation, suited to ReLU networks.

    Samples are always drawn in float64 (so a given seed yields the same
    weights in every compute dtype) and cast to ``dtype`` afterwards.
    """
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    scale = np.sqrt(2.0 / fan_in)
    values = rng.normal(0.0, scale, size=shape)
    return values.astype(resolve_dtype(dtype), copy=False)


def xavier_uniform(
    shape: tuple, fan_in: int, fan_out: int, rng: np.random.Generator,
    dtype=None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    values = rng.uniform(-limit, limit, size=shape)
    return values.astype(resolve_dtype(dtype), copy=False)
