"""Aggregated layer namespace.

Convenience re-exports so user code (and :mod:`repro.nn.models`) can import
every layer from one place.
"""

from repro.nn.activations import LeakyReLU, ReLU, Tanh
from repro.nn.base import Layer, Parameter, Sequential
from repro.nn.blocks import InceptionBlock, ResidualBlock
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense, Flatten
from repro.nn.norm import BatchNorm2D
from repro.nn.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.regularization import Dropout

__all__ = [
    "AvgPool2D",
    "BatchNorm2D",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2D",
    "InceptionBlock",
    "Layer",
    "LeakyReLU",
    "MaxPool2D",
    "Parameter",
    "ReLU",
    "ResidualBlock",
    "Sequential",
    "Tanh",
]
