"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import as_float


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-subtraction for stability.

    Dtype-preserving: float32 logits yield float32 probabilities.
    """
    logits = as_float(logits)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=-1, keepdims=True)


class SoftmaxCrossEntropy:
    """Combined softmax + cross-entropy loss over integer class labels."""

    def __init__(self, epsilon: float = 1e-12) -> None:
        self.epsilon = float(epsilon)
        self._cache = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy of ``logits`` (N, C) against labels (N,)."""
        logits = as_float(logits)
        labels = np.asarray(labels, dtype=np.intp)
        if logits.ndim != 2:
            raise ValueError(f"expected (N, C) logits, got shape {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} does not match logits {logits.shape}"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ValueError("labels out of range for the given logits")
        probabilities = softmax(logits)
        self._cache = (probabilities, labels)
        picked = probabilities[np.arange(labels.shape[0]), labels]
        return float(-np.mean(np.log(picked + self.epsilon)))

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probabilities, labels = self._cache
        grad = probabilities.copy()
        grad[np.arange(labels.shape[0]), labels] -= 1.0
        return grad / labels.shape[0]

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)
