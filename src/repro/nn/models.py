"""Model zoo: CPU-scale versions of the paper's evaluation architectures.

The paper evaluates DeepN-JPEG on AlexNet, VGG-16, GoogLeNet, ResNet-34
and ResNet-50 trained on ImageNet.  Training those on CPU is out of
reach, so this module provides *mini* variants that keep each family's
defining structure — plain deep convolution stacks with large dense heads
(AlexNet/VGG), inception modules (GoogLeNet), and residual blocks with
identity shortcuts (ResNet) — at a scale that trains in seconds on the
synthetic frequency-structured dataset of :mod:`repro.data`.

Every builder takes ``num_classes``, ``input_shape`` (CHW), a ``seed``
so experiments are reproducible, and a ``dtype`` selecting the compute
dtype of the whole stack (default
:data:`~repro.nn.dtype.DEFAULT_DTYPE`, float32; pass ``"float64"`` for
the bit-exact reference mode), and returns a
:class:`~repro.nn.base.Sequential` model.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.base import Sequential
from repro.nn.blocks import InceptionBlock, ResidualBlock
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense, Flatten
from repro.nn.dtype import DEFAULT_DTYPE, resolve_dtype
from repro.nn.norm import BatchNorm2D
from repro.nn.pooling import GlobalAvgPool2D, MaxPool2D
from repro.nn.regularization import Dropout


def _spatial_after(input_size: int, reductions: int) -> int:
    """Spatial size after ``reductions`` stride-2 halvings."""
    size = input_size
    for _ in range(reductions):
        size //= 2
    if size < 1:
        raise ValueError(
            f"input size {input_size} too small for {reductions} poolings"
        )
    return size


def alexnet_mini(
    num_classes: int = 8,
    input_shape: tuple = (1, 32, 32),
    seed: int = 0,
    base_channels: int = 12,
    dtype=None,
) -> Sequential:
    """A small AlexNet-style network: conv/pool stack plus dense head."""
    channels, height, width = input_shape
    rng = np.random.default_rng(seed)
    dtype = resolve_dtype(dtype, default=DEFAULT_DTYPE)
    final_h = _spatial_after(height, 3)
    final_w = _spatial_after(width, 3)
    widest = base_channels * 2
    return Sequential(
        [
            Conv2D(channels, base_channels, 5, padding=2, rng=rng, name="conv1",
                   dtype=dtype),
            ReLU(),
            MaxPool2D(2),
            Conv2D(base_channels, widest, 3, padding=1, rng=rng, name="conv2",
                   dtype=dtype),
            ReLU(),
            MaxPool2D(2),
            Conv2D(widest, widest, 3, padding=1, rng=rng, name="conv3",
                   dtype=dtype),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(widest * final_h * final_w, 96, rng=rng, name="fc1",
                  dtype=dtype),
            ReLU(),
            Dropout(0.3, rng=rng),
            Dense(96, num_classes, rng=rng, name="fc2", dtype=dtype),
        ],
        name="alexnet_mini",
    )


def vgg_mini(
    num_classes: int = 8,
    input_shape: tuple = (1, 32, 32),
    seed: int = 0,
    base_channels: int = 10,
    dtype=None,
) -> Sequential:
    """A small VGG-style network: stacked 3x3 convolutions in stages."""
    channels, height, width = input_shape
    rng = np.random.default_rng(seed)
    dtype = resolve_dtype(dtype, default=DEFAULT_DTYPE)
    final_h = _spatial_after(height, 3)
    final_w = _spatial_after(width, 3)
    c1, c2, c3 = base_channels, base_channels * 2, base_channels * 2
    return Sequential(
        [
            Conv2D(channels, c1, 3, padding=1, rng=rng, name="conv1_1",
                   dtype=dtype),
            ReLU(),
            Conv2D(c1, c1, 3, padding=1, rng=rng, name="conv1_2", dtype=dtype),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c1, c2, 3, padding=1, rng=rng, name="conv2_1", dtype=dtype),
            ReLU(),
            Conv2D(c2, c2, 3, padding=1, rng=rng, name="conv2_2", dtype=dtype),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c2, c3, 3, padding=1, rng=rng, name="conv3_1", dtype=dtype),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(c3 * final_h * final_w, 96, rng=rng, name="fc1", dtype=dtype),
            ReLU(),
            Dropout(0.3, rng=rng),
            Dense(96, num_classes, rng=rng, name="fc2", dtype=dtype),
        ],
        name="vgg_mini",
    )


def resnet_mini(
    num_classes: int = 8,
    input_shape: tuple = (1, 32, 32),
    seed: int = 0,
    blocks_per_stage: tuple = (1, 1),
    base_channels: int = 12,
    dtype=None,
) -> Sequential:
    """A small ResNet-style network built from residual basic blocks.

    ``blocks_per_stage`` controls depth: ``(1, 1)`` stands in for
    ResNet-34 and ``(2, 2)`` for ResNet-50 in the generality experiment.
    """
    channels, _, _ = input_shape
    rng = np.random.default_rng(seed)
    dtype = resolve_dtype(dtype, default=DEFAULT_DTYPE)
    layers = [
        Conv2D(channels, base_channels, 3, padding=1, rng=rng, name="stem",
               dtype=dtype),
        BatchNorm2D(base_channels, name="stem_bn", dtype=dtype),
        ReLU(),
    ]
    in_channels = base_channels
    for stage_index, block_count in enumerate(blocks_per_stage):
        out_channels = base_channels * (2 ** stage_index)
        for block_index in range(block_count):
            stride = 2 if (block_index == 0 and stage_index > 0) else 1
            layers.append(
                ResidualBlock(
                    in_channels,
                    out_channels,
                    stride=stride,
                    rng=rng,
                    name=f"stage{stage_index}_block{block_index}",
                    dtype=dtype,
                )
            )
            in_channels = out_channels
    layers.extend(
        [
            GlobalAvgPool2D(),
            Dense(in_channels, num_classes, rng=rng, name="fc", dtype=dtype),
        ]
    )
    return Sequential(layers, name=f"resnet_mini_{sum(blocks_per_stage) * 2 + 2}")


def resnet34_mini(
    num_classes: int = 8, input_shape: tuple = (1, 32, 32), seed: int = 0,
    dtype=None,
) -> Sequential:
    """Shallow residual stand-in for ResNet-34 in Fig. 8."""
    return resnet_mini(
        num_classes, input_shape, seed=seed, blocks_per_stage=(1, 1),
        dtype=dtype,
    )


def resnet50_mini(
    num_classes: int = 8, input_shape: tuple = (1, 32, 32), seed: int = 0,
    dtype=None,
) -> Sequential:
    """Deeper residual stand-in for ResNet-50 in Fig. 8."""
    return resnet_mini(
        num_classes, input_shape, seed=seed, blocks_per_stage=(2, 2),
        dtype=dtype,
    )


def googlenet_mini(
    num_classes: int = 8,
    input_shape: tuple = (1, 32, 32),
    seed: int = 0,
    base_channels: int = 12,
    dtype=None,
) -> Sequential:
    """A small GoogLeNet-style network with two inception modules."""
    channels, _, _ = input_shape
    rng = np.random.default_rng(seed)
    dtype = resolve_dtype(dtype, default=DEFAULT_DTYPE)
    inception1 = InceptionBlock(
        base_channels, 6, 4, 8, 2, 4, 4, rng=rng, name="inception1",
        dtype=dtype,
    )
    inception2 = InceptionBlock(
        inception1.out_channels, 8, 4, 12, 2, 4, 4, rng=rng, name="inception2",
        dtype=dtype,
    )
    return Sequential(
        [
            Conv2D(channels, base_channels, 3, padding=1, rng=rng, name="stem",
                   dtype=dtype),
            ReLU(),
            MaxPool2D(2),
            inception1,
            MaxPool2D(2),
            inception2,
            GlobalAvgPool2D(),
            Dropout(0.2, rng=rng),
            Dense(inception2.out_channels, num_classes, rng=rng, name="fc",
                  dtype=dtype),
        ],
        name="googlenet_mini",
    )


#: Builders for the generality experiment (Fig. 8), keyed by the paper's
#: model names.
MODEL_BUILDERS = {
    "AlexNet": alexnet_mini,
    "VGG-16": vgg_mini,
    "GoogLeNet": googlenet_mini,
    "ResNet-34": resnet34_mini,
    "ResNet-50": resnet50_mini,
}


def build_model(
    name: str,
    num_classes: int = 8,
    input_shape: tuple = (1, 32, 32),
    seed: int = 0,
    dtype=None,
) -> Sequential:
    """Build a model from :data:`MODEL_BUILDERS` by paper name.

    ``dtype`` is the single compute-dtype knob for the whole stack:
    ``None`` builds the fast float32 model, ``"float64"`` the reference
    one.
    """
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError as exc:
        known = ", ".join(sorted(MODEL_BUILDERS))
        raise KeyError(f"unknown model '{name}'; known models: {known}") from exc
    return builder(
        num_classes=num_classes, input_shape=input_shape, seed=seed,
        dtype=dtype,
    )
