"""Batch normalisation for NCHW feature maps."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer, Parameter
from repro.nn.dtype import resolve_dtype
from repro.nn.engine import PlanError


class BatchNorm2D(Layer):
    """Per-channel batch normalisation (Ioffe & Szegedy, 2015).

    During training, activations are normalised with batch statistics and
    running estimates are updated with exponential moving averages; during
    inference the running estimates are used.
    """

    stochastic = True

    def __init__(
        self,
        num_channels: int,
        momentum: float = 0.9,
        epsilon: float = 1e-5,
        name: str = "batchnorm",
        dtype=None,
    ) -> None:
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.num_channels = num_channels
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.dtype = resolve_dtype(dtype)
        self.gamma = Parameter(
            np.ones(num_channels), name=f"{name}.gamma", dtype=self.dtype
        )
        self.beta = Parameter(
            np.zeros(num_channels), name=f"{name}.beta", dtype=self.dtype
        )
        self.running_mean = np.zeros(num_channels, dtype=self.dtype)
        self.running_var = np.ones(num_channels, dtype=self.dtype)
        self._cache = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=self.dtype)
        if inputs.ndim != 4 or inputs.shape[1] != self.num_channels:
            raise ValueError(
                f"expected (N, {self.num_channels}, H, W) input, got {inputs.shape}"
            )
        if training:
            mean = inputs.mean(axis=(0, 2, 3))
            var = inputs.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1.0 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1.0 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        normalized = (inputs - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (normalized, inv_std, inputs.shape, bool(training))
        return (
            self.gamma.value[None, :, None, None] * normalized
            + self.beta.value[None, :, None, None]
        )

    def plan_inference(self, builder, source):
        """Emit the inference normalisation with runtime statistics.

        The running mean/var arrays are *reassigned* (not updated in
        place) every training step, so the kernel reads ``self.*`` at
        run time rather than capturing the arrays at compile time —
        plans stay valid across interleaved training and evaluation.
        The op sequence matches :meth:`forward` exactly (add-eps, sqrt,
        reciprocal, subtract, three broadcast multiplies/adds) for
        bit-parity with the dynamic path.
        """
        if source.ndim != 4 or source.shape[1] != self.num_channels:
            raise PlanError(
                f"expected (N, {self.num_channels}, H, W) input, "
                f"got {source.shape}"
            )
        out = builder.activation(source.shape)
        svec = builder.scratch((self.num_channels,))

        def build(bind):
            x = bind(source)
            y = bind(out)
            inv_std = bind(svec)

            def step():
                np.add(self.running_var, self.epsilon, out=inv_std)
                np.sqrt(inv_std, out=inv_std)
                np.divide(1.0, inv_std, out=inv_std)
                np.subtract(
                    x, self.running_mean[None, :, None, None], out=y
                )
                np.multiply(y, inv_std[None, :, None, None], out=y)
                np.multiply(y, self.gamma.value[None, :, None, None], out=y)
                np.add(y, self.beta.value[None, :, None, None], out=y)

            return step

        builder.emit(build, reads=(source,), writes=(out,), scratch=(svec,))
        builder.free(svec)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, input_shape, was_training = self._cache
        grad_output = np.asarray(grad_output, dtype=self.dtype)
        batch, _, height, width = input_shape
        count = batch * height * width

        self.gamma.grad += (grad_output * normalized).sum(axis=(0, 2, 3))
        self.beta.grad += grad_output.sum(axis=(0, 2, 3))

        grad_normalized = grad_output * self.gamma.value[None, :, None, None]
        if not was_training:
            # In inference mode the normalisation statistics are constants,
            # so the input gradient is a simple rescaling (used by the
            # saliency analysis of Eq. 2).
            return grad_normalized * inv_std[None, :, None, None]
        sum_grad = grad_normalized.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_normalized = (grad_normalized * normalized).sum(
            axis=(0, 2, 3), keepdims=True
        )
        grad_input = (
            grad_normalized
            - sum_grad / count
            - normalized * sum_grad_normalized / count
        ) * inv_std[None, :, None, None]
        return grad_input

    def parameters(self) -> "list[Parameter]":
        return [self.gamma, self.beta]
