"""Gradient-descent optimizers.

Updates run fully in place: every multiply/divide/subtract writes into
either the parameter buffers, the optimizer state, or one of a small set
of scratch buffers reused across steps — no per-parameter temporaries
are allocated after the first step.  The in-place sequences apply the
exact elementwise operations of the textbook formulas in the same order,
so float64 updates are bit-identical to the original allocating
implementation (asserted by the parity tests).

Optimizer state is keyed by parameter *name* rather than raw object
identity, so ``_state`` reads as a checkpointable mapping from layer
names to moments; the first parameter object to claim a name owns its
slot for the optimizer's lifetime, and parameters whose names collide
(e.g. two bare ``Parameter`` objects both named ``"param"``) are
transparently disambiguated with a ``#<n>`` suffix.
"""

from __future__ import annotations

import numpy as np

from repro.nn.base import Parameter


class Optimizer:
    """Base optimizer: holds hyper-parameters and per-parameter state."""

    def __init__(self, learning_rate: float, weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        #: Per-parameter state, keyed by (disambiguated) parameter name.
        self._state: dict = {}
        self._key_by_id: dict = {}
        self._claimed_keys: set = set()
        self._scratch: dict = {}

    def state_key(self, parameter: Parameter) -> str:
        """Stable state key for ``parameter``: its name, made unique.

        The first parameter to claim a name owns it; a *different*
        parameter object carrying an already-claimed name gets a
        ``#<n>`` suffix so unnamed parameters never share state.  The
        id->key map holds a strong reference to each claimant (the
        moment arrays in ``_state`` dwarf it), so a garbage-collected
        parameter's recycled ``id`` can never resurrect its state.
        """
        entry = self._key_by_id.get(id(parameter))
        if entry is not None and entry[0] is parameter:
            return entry[1]
        key = parameter.name
        suffix = 1
        while key in self._claimed_keys:
            suffix += 1
            key = f"{parameter.name}#{suffix}"
        self._claimed_keys.add(key)
        self._key_by_id[id(parameter)] = (parameter, key)
        return key

    def _scratch_buffer(self, slot: str, reference: np.ndarray) -> np.ndarray:
        """A reusable scratch array matching ``reference``'s shape/dtype."""
        key = (slot, reference.shape, reference.dtype)
        buffer = self._scratch.get(key)
        if buffer is None:
            buffer = np.empty_like(reference)
            self._scratch[key] = buffer
        return buffer

    def step(self, parameters: "list[Parameter]") -> None:
        """Apply one update to every parameter from its accumulated gradient."""
        for parameter in parameters:
            grad = parameter.grad
            if self.weight_decay:
                # grad + wd * value without a fresh temporary: the decay
                # scratch holds wd * value, then accumulates the gradient
                # (addition commutes bit-exactly).
                decayed = self._scratch_buffer("decay", parameter.value)
                np.multiply(parameter.value, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            self._update(parameter, grad)

    def _update(self, parameter: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    def zero_grad(self, parameters: "list[Parameter]") -> None:
        """Zero the gradient buffers of ``parameters``."""
        for parameter in parameters:
            parameter.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)

    def _update(self, parameter: Parameter, grad: np.ndarray) -> None:
        scaled = self._scratch_buffer("update", parameter.value)
        np.multiply(grad, self.learning_rate, out=scaled)
        if self.momentum:
            velocity = self._state.get(self.state_key(parameter))
            if velocity is None:
                velocity = np.zeros_like(parameter.value)
                self._state[self.state_key(parameter)] = velocity
            # velocity = momentum * velocity - lr * grad, in place.
            velocity *= self.momentum
            velocity -= scaled
            parameter.value += velocity
        else:
            parameter.value -= scaled


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)

    def _update(self, parameter: Parameter, grad: np.ndarray) -> None:
        key = self.state_key(parameter)
        state = self._state.get(key)
        if state is None:
            state = {
                "step": 0,
                "m": np.zeros_like(parameter.value),
                "v": np.zeros_like(parameter.value),
            }
            self._state[key] = state
        state["step"] += 1
        m = state["m"]
        v = state["v"]
        buffer_a = self._scratch_buffer("adam_a", parameter.value)
        buffer_b = self._scratch_buffer("adam_b", parameter.value)
        # m = beta1 * m + (1 - beta1) * grad
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=buffer_a)
        m += buffer_a
        # v = beta2 * v + ((1 - beta2) * grad) * grad
        v *= self.beta2
        np.multiply(grad, 1.0 - self.beta2, out=buffer_a)
        buffer_a *= grad
        v += buffer_a
        # value -= (lr * m_hat) / (sqrt(v_hat) + eps)
        np.divide(m, 1.0 - self.beta1 ** state["step"], out=buffer_a)
        np.divide(v, 1.0 - self.beta2 ** state["step"], out=buffer_b)
        np.sqrt(buffer_b, out=buffer_b)
        buffer_b += self.epsilon
        buffer_a *= self.learning_rate
        buffer_a /= buffer_b
        parameter.value -= buffer_a
