"""Gradient-descent optimizers."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Parameter


class Optimizer:
    """Base optimizer: holds hyper-parameters and per-parameter state."""

    def __init__(self, learning_rate: float, weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)

    def step(self, parameters: "list[Parameter]") -> None:
        """Apply one update to every parameter from its accumulated gradient."""
        for parameter in parameters:
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            self._update(parameter, grad)

    def _update(self, parameter: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    def zero_grad(self, parameters: "list[Parameter]") -> None:
        """Zero the gradient buffers of ``parameters``."""
        for parameter in parameters:
            parameter.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: dict = {}

    def _update(self, parameter: Parameter, grad: np.ndarray) -> None:
        if self.momentum:
            velocity = self._velocity.get(id(parameter))
            if velocity is None:
                velocity = np.zeros_like(parameter.value)
            velocity = self.momentum * velocity - self.learning_rate * grad
            self._velocity[id(parameter)] = velocity
            parameter.value += velocity
        else:
            parameter.value -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._state: dict = {}

    def _update(self, parameter: Parameter, grad: np.ndarray) -> None:
        state = self._state.get(id(parameter))
        if state is None:
            state = {
                "step": 0,
                "m": np.zeros_like(parameter.value),
                "v": np.zeros_like(parameter.value),
            }
            self._state[id(parameter)] = state
        state["step"] += 1
        state["m"] = self.beta1 * state["m"] + (1.0 - self.beta1) * grad
        state["v"] = self.beta2 * state["v"] + (1.0 - self.beta2) * grad * grad
        m_hat = state["m"] / (1.0 - self.beta1 ** state["step"])
        v_hat = state["v"] / (1.0 - self.beta2 ** state["step"])
        parameter.value -= (
            self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        )
