"""Pooling layers (max, average, global average)."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer
from repro.nn.im2col import col2im, conv_output_size, im2col


class _Pool2D(Layer):
    """Shared geometry handling for spatial pooling layers."""

    def __init__(self, pool_size: int, stride: int = None) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else int(pool_size)
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        self._cache = None

    def _columns(self, inputs: np.ndarray) -> tuple:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {inputs.shape}")
        batch, channels, height, width = inputs.shape
        out_h = conv_output_size(height, self.pool_size, self.stride, 0)
        out_w = conv_output_size(width, self.pool_size, self.stride, 0)
        columns = im2col(inputs, self.pool_size, self.pool_size, self.stride, 0)
        # im2col rows are channel-major, so a plain reshape yields one row per
        # (sample, output pixel, channel) with pool_size^2 entries.
        columns = columns.reshape(-1, self.pool_size * self.pool_size)
        return inputs, columns, (batch, channels, out_h, out_w)


class MaxPool2D(_Pool2D):
    """Max pooling over square windows."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs, columns, (batch, channels, out_h, out_w) = self._columns(inputs)
        argmax = columns.argmax(axis=1)
        outputs = columns[np.arange(columns.shape[0]), argmax]
        self._cache = (inputs.shape, argmax, (batch, channels, out_h, out_w))
        return _rows_to_nchw(outputs, batch, channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, argmax, (batch, channels, out_h, out_w) = self._cache
        grad_rows = _nchw_to_rows(np.asarray(grad_output, dtype=np.float64))
        grad_columns = np.zeros(
            (grad_rows.shape[0], self.pool_size * self.pool_size), dtype=np.float64
        )
        grad_columns[np.arange(grad_rows.shape[0]), argmax] = grad_rows
        return _columns_to_input(
            grad_columns, input_shape, batch, channels, out_h, out_w,
            self.pool_size, self.stride,
        )


class AvgPool2D(_Pool2D):
    """Average pooling over square windows."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs, columns, (batch, channels, out_h, out_w) = self._columns(inputs)
        outputs = columns.mean(axis=1)
        self._cache = (inputs.shape, (batch, channels, out_h, out_w))
        return _rows_to_nchw(outputs, batch, channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, (batch, channels, out_h, out_w) = self._cache
        grad_rows = _nchw_to_rows(np.asarray(grad_output, dtype=np.float64))
        window = self.pool_size * self.pool_size
        grad_columns = np.repeat(grad_rows[:, None] / window, window, axis=1)
        return _columns_to_input(
            grad_columns, input_shape, batch, channels, out_h, out_w,
            self.pool_size, self.stride,
        )


class GlobalAvgPool2D(Layer):
    """Average every feature map down to a single value, yielding (N, C)."""

    def __init__(self) -> None:
        self._input_shape = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {inputs.shape}")
        self._input_shape = inputs.shape
        return inputs.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._input_shape
        grad_output = np.asarray(grad_output, dtype=np.float64)
        grad = grad_output[:, :, None, None] / float(height * width)
        return np.broadcast_to(grad, self._input_shape).copy()


def _rows_to_nchw(
    rows: np.ndarray, batch: int, channels: int, out_h: int, out_w: int
) -> np.ndarray:
    """Rows ordered (sample, pixel, channel) -> NCHW tensor."""
    return rows.reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)


def _nchw_to_rows(tensor: np.ndarray) -> np.ndarray:
    """NCHW tensor -> rows ordered (sample, pixel, channel)."""
    return tensor.transpose(0, 2, 3, 1).reshape(-1)


def _columns_to_input(
    grad_columns: np.ndarray,
    input_shape: tuple,
    batch: int,
    channels: int,
    out_h: int,
    out_w: int,
    pool_size: int,
    stride: int,
) -> np.ndarray:
    """Scatter per-window gradients back to the input tensor."""
    window = pool_size * pool_size
    # Restore the im2col row layout (N*out_h*out_w, C*pool*pool); the rows are
    # already channel-major, so a plain reshape suffices.
    grad_columns = grad_columns.reshape(
        batch * out_h * out_w, channels * window
    )
    return col2im(grad_columns, input_shape, pool_size, pool_size, stride, 0)
