"""Pooling layers (max, average, global average).

Window elements are gathered through the zero-copy strided view of
:func:`repro.nn.im2col.sliding_windows` into one contiguous
``(N, C, out_h, out_w, pool*pool)`` scratch tensor reused across steps
(reducing over the strided view directly is several times slower than
copy-then-reduce), and the reduction runs over the contiguous last
axis.  The max-pool argmax is only computed when training needs it for
the backward pass; in inference mode nothing is cached beyond a
reference to the input, so a (rare) backward after an inference
forward — the saliency analysis path — recomputes the argmax on demand.
"""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer
from repro.nn.dtype import as_float
from repro.nn.engine import PlanError
from repro.nn.im2col import conv_output_size, sliding_windows


class _Pool2D(Layer):
    """Shared geometry handling for spatial pooling layers."""

    def __init__(self, pool_size: int, stride: int = None) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else int(pool_size)
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        self._cache = None
        self._patch_scratch = {}

    def _output_dims(self, inputs: np.ndarray) -> tuple:
        if inputs.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {inputs.shape}")
        batch, channels, height, width = inputs.shape
        out_h = conv_output_size(height, self.pool_size, self.stride, 0)
        out_w = conv_output_size(width, self.pool_size, self.stride, 0)
        return batch, channels, out_h, out_w

    def _windows(self, inputs: np.ndarray) -> np.ndarray:
        """(N, C, out_h, out_w, pool, pool) strided view of the windows."""
        return sliding_windows(
            inputs, self.pool_size, self.pool_size, self.stride, 0
        )

    def _patches(self, inputs: np.ndarray, dims: tuple) -> np.ndarray:
        """Contiguous window elements, flattened to (..., pool*pool)."""
        from repro.nn.conv import _cached_scratch

        batch, channels, out_h, out_w = dims
        window = self.pool_size * self.pool_size
        shape = (batch, channels, out_h, out_w, window)
        # Per-shape slots: the full-tile / remainder-tile alternation of
        # predict and fit loops must hit stable buffers, not reallocate.
        key = (shape, inputs.dtype.str)
        scratch = self._patch_scratch.get(key)
        if scratch is None:
            scratch = np.empty(shape, dtype=inputs.dtype)
            _cached_scratch(self._patch_scratch, key, scratch)
        sink = scratch.reshape(shape[:4] + (self.pool_size, self.pool_size))
        np.copyto(sink, self._windows(inputs))
        return scratch

    def _plan_dims(self, source) -> tuple:
        if source.ndim != 4:
            raise PlanError(f"expected NCHW input, got shape {source.shape}")
        batch, channels, height, width = source.shape
        out_h = conv_output_size(height, self.pool_size, self.stride, 0)
        out_w = conv_output_size(width, self.pool_size, self.stride, 0)
        return batch, channels, out_h, out_w

    def _scatter(self, values: np.ndarray, input_shape: tuple) -> np.ndarray:
        """Scatter-add per-window-element values back onto the input.

        ``values`` has shape ``(N, C, out_h, out_w, pool, pool)`` (or is
        broadcastable to it).  Non-overlapping windows (stride == pool,
        the model-zoo default) reduce to one transpose-copy.  Same
        reduction as :func:`~repro.nn.im2col.col2im_patches`, kept
        separate because delegating would transpose the window-major
        layout into strided per-offset reads.
        """
        batch, channels, height, width = input_shape
        pool = self.pool_size
        stride = self.stride
        out_h = values.shape[2]
        out_w = values.shape[3]

        if stride == pool:
            tiled = values.transpose(0, 1, 2, 4, 3, 5).reshape(
                batch, channels, out_h * pool, out_w * pool
            )
            if (out_h * pool, out_w * pool) == (height, width):
                return tiled
            result = np.zeros(
                (batch, channels, height, width), dtype=values.dtype
            )
            result[:, :, :out_h * pool, :out_w * pool] = tiled
            return result

        result = np.zeros(
            (batch, channels, height, width), dtype=values.dtype
        )
        for row in range(pool):
            row_end = row + stride * out_h
            for col in range(pool):
                col_end = col + stride * out_w
                result[:, :, row:row_end:stride, col:col_end:stride] += (
                    values[:, :, :, :, row, col]
                )
        return result


class MaxPool2D(_Pool2D):
    """Max pooling over square windows.

    The ubiquitous 2x2/stride-2 configuration runs a branch-free
    tournament over four strided quadrant views — no patch copy, no
    ``argmax`` kernel — producing the exact same outputs, tie-breaking
    (first window element wins) and gradients as the generic path.
    """

    def _is_2x2(self) -> bool:
        return self.pool_size == 2 and self.stride == 2

    @staticmethod
    def _quadrants(inputs: np.ndarray, out_h: int, out_w: int) -> tuple:
        region = inputs[:, :, :2 * out_h, :2 * out_w]
        return (
            region[:, :, ::2, ::2], region[:, :, ::2, 1::2],
            region[:, :, 1::2, ::2], region[:, :, 1::2, 1::2],
        )

    @staticmethod
    def _tournament_argmax(a, b, c, d, top, bottom) -> np.ndarray:
        """Index (0-3, row-major window order) of the first maximum.

        The single definition of the tie-break convention (earlier
        window element wins, matching ``argmax``), shared by the
        training forward and the lazy inference-backward recompute.
        """
        first = (b > a).view(np.uint8)
        second = (d > c).view(np.uint8) + 2
        return np.where(bottom > top, second, first)

    def _argmax_2x2(self, inputs: np.ndarray, dims: tuple) -> np.ndarray:
        a, b, c, d = self._quadrants(inputs, dims[2], dims[3])
        top = np.maximum(a, b)
        bottom = np.maximum(c, d)
        return self._tournament_argmax(a, b, c, d, top, bottom)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = as_float(inputs)
        dims = self._output_dims(inputs)
        if self._is_2x2():
            a, b, c, d = self._quadrants(inputs, dims[2], dims[3])
            top = np.maximum(a, b)
            bottom = np.maximum(c, d)
            outputs = np.maximum(top, bottom)
            if training:
                argmax = self._tournament_argmax(a, b, c, d, top, bottom)
                self._cache = (inputs.shape, argmax, dims, None)
            else:
                self._cache = (inputs.shape, None, dims, inputs)
            return outputs
        patches = self._patches(inputs, dims)
        if training:
            argmax = patches.argmax(axis=4)
            outputs = np.take_along_axis(
                patches, argmax[..., None], axis=4
            )[..., 0]
            self._cache = (inputs.shape, argmax, dims, None)
            return outputs
        self._cache = (inputs.shape, None, dims, inputs)
        return patches.max(axis=4)

    def plan_inference(self, builder, source):
        """Emit the pooling kernel into an inference plan.

        The 2x2/stride-2 tournament and the generic gather-then-reduce
        both run the dynamic path's exact operations with ``out=``
        targets, so plan outputs are bit-identical.
        """
        dims = self._plan_dims(source)
        batch, channels, out_h, out_w = dims
        out = builder.activation(dims)
        if self._is_2x2():
            top_slot = builder.scratch(dims)
            bottom_slot = builder.scratch(dims)

            def build(bind):
                a, b, c, d = self._quadrants(bind(source), out_h, out_w)
                top = bind(top_slot)
                bottom = bind(bottom_slot)
                y = bind(out)

                def step():
                    np.maximum(a, b, out=top)
                    np.maximum(c, d, out=bottom)
                    np.maximum(top, bottom, out=y)

                return step

            builder.emit(
                build, reads=(source,), writes=(out,),
                scratch=(top_slot, bottom_slot),
            )
            builder.free(top_slot, bottom_slot)
            return out

        window = self.pool_size * self.pool_size
        patches = builder.scratch(dims + (window,))

        def build(bind):
            windows = self._windows(bind(source))
            y = bind(out)
            patch_buffer = bind(patches)
            sink = patch_buffer.reshape(
                dims + (self.pool_size, self.pool_size)
            )

            def step():
                np.copyto(sink, windows)
                patch_buffer.max(axis=4, out=y)

            return step

        builder.emit(build, reads=(source,), writes=(out,), scratch=(patches,))
        builder.free(patches)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, argmax, dims, inputs = self._cache
        grad_output = as_float(grad_output)
        batch, channels, out_h, out_w = dims
        if self._is_2x2():
            if argmax is None:
                argmax = self._argmax_2x2(inputs, dims)
            grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
            region = grad_input[:, :, :2 * out_h, :2 * out_w]
            region[:, :, ::2, ::2] = grad_output * (argmax == 0)
            region[:, :, ::2, 1::2] = grad_output * (argmax == 1)
            region[:, :, 1::2, ::2] = grad_output * (argmax == 2)
            region[:, :, 1::2, 1::2] = grad_output * (argmax == 3)
            return grad_input
        if argmax is None:
            argmax = self._patches(inputs, dims).argmax(axis=4)
        window = self.pool_size * self.pool_size
        grad_windows = np.zeros(
            (batch, channels, out_h, out_w, window), dtype=grad_output.dtype
        )
        np.put_along_axis(
            grad_windows, argmax[..., None], grad_output[..., None], axis=4
        )
        return self._scatter(
            grad_windows.reshape(
                batch, channels, out_h, out_w, self.pool_size, self.pool_size
            ),
            input_shape,
        )


class AvgPool2D(_Pool2D):
    """Average pooling over square windows."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = as_float(inputs)
        dims = self._output_dims(inputs)
        self._cache = (inputs.shape, dims)
        return self._patches(inputs, dims).mean(axis=4)

    def plan_inference(self, builder, source):
        dims = self._plan_dims(source)
        out = builder.activation(dims)
        window = self.pool_size * self.pool_size
        patches = builder.scratch(dims + (window,))

        def build(bind):
            windows = self._windows(bind(source))
            y = bind(out)
            patch_buffer = bind(patches)
            sink = patch_buffer.reshape(
                dims + (self.pool_size, self.pool_size)
            )

            def step():
                np.copyto(sink, windows)
                patch_buffer.mean(axis=4, out=y)

            return step

        builder.emit(build, reads=(source,), writes=(out,), scratch=(patches,))
        builder.free(patches)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, dims = self._cache
        grad_output = as_float(grad_output)
        window = self.pool_size * self.pool_size
        spread = np.broadcast_to(
            (grad_output / window)[..., None, None],
            dims + (self.pool_size, self.pool_size),
        )
        return self._scatter(spread, input_shape)


class GlobalAvgPool2D(Layer):
    """Average every feature map down to a single value, yielding (N, C)."""

    def __init__(self) -> None:
        self._input_shape = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = as_float(inputs)
        if inputs.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {inputs.shape}")
        self._input_shape = inputs.shape
        return inputs.mean(axis=(2, 3))

    def plan_inference(self, builder, source):
        if source.ndim != 4:
            raise PlanError(f"expected NCHW input, got shape {source.shape}")
        out = builder.activation(source.shape[:2])

        def build(bind):
            x = bind(source)
            y = bind(out)

            def step():
                np.mean(x, axis=(2, 3), out=y)

            return step

        builder.emit(build, reads=(source,), writes=(out,))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._input_shape
        grad_output = as_float(grad_output)
        grad = grad_output[:, :, None, None] / float(height * width)
        return np.broadcast_to(grad, self._input_shape).copy()
