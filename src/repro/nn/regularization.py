"""Stochastic regularisation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer
from repro.nn.dtype import as_float
from repro.nn.init import fallback_rng


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``."""

    stochastic = True

    def __init__(self, rate: float = 0.5, rng: np.random.Generator = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng = fallback_rng(rng)
        self._mask = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = as_float(inputs)
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        # The mask is drawn in float64 (same random stream in every
        # compute dtype) and cast to the activation dtype so the product
        # does not promote float32 activations.
        mask = (self._rng.random(inputs.shape) < keep) / keep
        self._mask = mask.astype(inputs.dtype, copy=False)
        return inputs * self._mask

    def plan_inference(self, builder, source):
        # Inference dropout is the identity — pass the slot straight
        # through, exactly as forward() returns its input uncopied.
        return source

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = as_float(grad_output)
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
