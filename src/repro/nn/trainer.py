"""Mini-batch training loop and evaluation utilities."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.base import Sequential
from repro.nn.dtype import resolve_dtype
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD, Optimizer


@dataclass
class TrainingHistory:
    """Per-epoch metrics collected by :class:`Trainer.fit`."""

    train_loss: "list[float]" = field(default_factory=list)
    train_accuracy: "list[float]" = field(default_factory=list)
    validation_accuracy: "list[float]" = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    def final_validation_accuracy(self) -> float:
        """Validation accuracy after the last epoch (NaN if never computed)."""
        if not self.validation_accuracy:
            return float("nan")
        return self.validation_accuracy[-1]


class Trainer:
    """Trains a :class:`~repro.nn.base.Sequential` classifier.

    Parameters
    ----------
    model:
        The network to train.
    optimizer:
        Any :class:`~repro.nn.optim.Optimizer`; defaults to SGD with
        momentum 0.9 and learning rate 0.05, which works well for the mini
        models on the synthetic dataset.
    loss:
        Loss object with ``forward(logits, labels)`` / ``backward()``.
    batch_size:
        Mini-batch size.
    seed:
        Seed for the shuffling generator, for reproducible runs.
    dtype:
        Compute dtype the datasets are cast to before every epoch.
        ``None`` (the default) follows the model's parameter dtype, so a
        float32 model trains entirely in float32 without per-layer
        casting; pass ``"float64"`` to force the reference mode.
    """

    def __init__(
        self,
        model: Sequential,
        optimizer: Optimizer = None,
        loss: SoftmaxCrossEntropy = None,
        batch_size: int = 32,
        seed: int = 0,
        dtype=None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.optimizer = optimizer if optimizer is not None else SGD(
            learning_rate=0.05, momentum=0.9
        )
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.batch_size = int(batch_size)
        self.dtype = (
            resolve_dtype(dtype) if dtype is not None else model.dtype
        )
        self._rng = np.random.default_rng(seed)

    def fit(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        epochs: int = 5,
        validation_data: tuple = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(images, labels)``.

        ``images`` is an NCHW float array; ``labels`` an integer vector.
        If ``validation_data=(val_images, val_labels)`` is given, validation
        accuracy is recorded after every epoch (used by the Fig. 2(b)
        accuracy-versus-epoch experiment).
        """
        images, labels = _check_dataset(images, labels, self.dtype)
        history = TrainingHistory()
        for epoch in range(epochs):
            order = self._rng.permutation(images.shape[0])
            epoch_loss = 0.0
            correct = 0
            for start in range(0, images.shape[0], self.batch_size):
                batch_idx = order[start:start + self.batch_size]
                batch_images = images[batch_idx]
                batch_labels = labels[batch_idx]
                logits = self.model.forward(batch_images, training=True)
                loss_value = self.loss.forward(logits, batch_labels)
                parameters = self.model.parameters()
                self.optimizer.zero_grad(parameters)
                self.model.backward(
                    self.loss.backward(), need_input_grad=False
                )
                self.optimizer.step(parameters)
                epoch_loss += loss_value * batch_labels.shape[0]
                correct += int(
                    (np.argmax(logits, axis=1) == batch_labels).sum()
                )
            history.train_loss.append(epoch_loss / images.shape[0])
            history.train_accuracy.append(correct / images.shape[0])
            if validation_data is not None:
                history.validation_accuracy.append(
                    self.evaluate(validation_data[0], validation_data[1])
                )
            if verbose:  # pragma: no cover - console reporting only
                message = (
                    f"epoch {epoch + 1}/{epochs} "
                    f"loss={history.train_loss[-1]:.4f} "
                    f"train_acc={history.train_accuracy[-1]:.3f}"
                )
                if validation_data is not None:
                    message += f" val_acc={history.validation_accuracy[-1]:.3f}"
                print(message)
        return history

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of the model on ``(images, labels)``."""
        images, labels = _check_dataset(images, labels, self.dtype)
        predictions = self.model.predict(images, batch_size=self.batch_size)
        return float((predictions == labels).mean())


def top_k_accuracy(
    probabilities: np.ndarray, labels: np.ndarray, k: int = 5
) -> float:
    """Top-k accuracy given class probabilities of shape (N, C)."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.intp)
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, probabilities.shape[1])
    top_k = np.argpartition(-probabilities, kth=k - 1, axis=1)[:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean())


def _check_dataset(
    images: np.ndarray, labels: np.ndarray, dtype=np.float64
) -> tuple:
    images = np.asarray(images, dtype=dtype)
    labels = np.asarray(labels, dtype=np.intp)
    if images.ndim != 4:
        raise ValueError(f"expected NCHW images, got shape {images.shape}")
    if labels.shape != (images.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} does not match images {images.shape}"
        )
    return images, labels
