"""Energy model for data offloading from edge devices (Fig. 9).

The paper's power argument (Section 5.2, following Neurosurgeon [10]) is
that for edge-device deep learning the energy spent transmitting an input
image over a wireless link is comparable to — or larger than — the energy
of the DNN computation itself, so compressing the image proportionally
reduces the dominant term.  This package provides a parametric model of
that trade-off: wireless links characterised by throughput and transmit
power, a DNN compute-energy term, and a per-method breakdown normalised
to the uncompressed baseline.
"""

from repro.power.energy import (
    DNN_WORKLOADS,
    WIRELESS_LINKS,
    DnnWorkload,
    EnergyModel,
    WirelessLink,
)
from repro.power.breakdown import PowerBreakdown, offloading_power_breakdown

__all__ = [
    "DNN_WORKLOADS",
    "DnnWorkload",
    "EnergyModel",
    "PowerBreakdown",
    "WIRELESS_LINKS",
    "WirelessLink",
    "offloading_power_breakdown",
]
