"""Normalised offloading-power breakdown across compression methods (Fig. 9)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.energy import DNN_WORKLOADS, WIRELESS_LINKS, EnergyModel


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-method energy figures, normalised to a reference method.

    Attributes
    ----------
    method:
        Compression method name.
    communication_joules / computation_joules:
        Absolute per-image energies under the model.
    normalized_total:
        Total energy divided by the reference method's total energy.
    """

    method: str
    communication_joules: float
    computation_joules: float
    normalized_total: float

    @property
    def total_joules(self) -> float:
        """Absolute total energy per image."""
        return self.communication_joules + self.computation_joules


def offloading_power_breakdown(
    bytes_per_method: dict,
    reference_method: str = None,
    link_name: str = "WiFi",
    workload_name: str = "AlexNet",
    joules_per_mac: float = 5e-12,
    include_computation: bool = True,
) -> "list[PowerBreakdown]":
    """Compute the Fig. 9 power comparison.

    Parameters
    ----------
    bytes_per_method:
        Mapping of method name to average compressed bytes per image
        (e.g. from :class:`repro.core.baselines.CompressedDataset`).
    reference_method:
        Method everything is normalised against; defaults to the first
        key of ``bytes_per_method`` (the paper normalises to "Original").
    link_name / workload_name / joules_per_mac:
        Energy-model parameters (see :mod:`repro.power.energy`).
    include_computation:
        Include the (method-independent) DNN compute energy in the
        normalised total.  For the paper's ~100 KB ImageNet images the
        upload dominates and including computation barely changes the
        ratios; for small synthetic images the fixed compute term would
        mask the communication savings, so callers working at that scale
        normalise communication only.

    Returns
    -------
    list of PowerBreakdown, in the iteration order of ``bytes_per_method``.
    """
    if not bytes_per_method:
        raise ValueError("bytes_per_method must not be empty")
    if link_name not in WIRELESS_LINKS:
        raise ValueError(f"unknown link {link_name!r}")
    if workload_name not in DNN_WORKLOADS:
        raise ValueError(f"unknown workload {workload_name!r}")
    for method, size in bytes_per_method.items():
        if size <= 0:
            raise ValueError(f"method {method!r} has non-positive size {size}")
    model = EnergyModel(
        link=WIRELESS_LINKS[link_name],
        workload=DNN_WORKLOADS[workload_name],
        joules_per_mac=joules_per_mac,
    )
    if reference_method is None:
        reference_method = next(iter(bytes_per_method))
    if reference_method not in bytes_per_method:
        raise ValueError(
            f"reference method {reference_method!r} not in bytes_per_method"
        )
    computation = model.computation_energy() if include_computation else 0.0
    reference_total = (
        model.communication_energy(bytes_per_method[reference_method])
        + computation
    )
    breakdowns = []
    for method, size in bytes_per_method.items():
        communication = model.communication_energy(size)
        breakdowns.append(
            PowerBreakdown(
                method=method,
                communication_joules=communication,
                computation_joules=model.computation_energy(),
                normalized_total=(communication + computation) / reference_total,
            )
        )
    return breakdowns
