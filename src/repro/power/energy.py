"""Wireless-link and DNN-compute energy models.

Link parameters are derived from the measurements the paper cites
(Neurosurgeon, ASPLOS'17): uploading a 152 KB JPEG image takes about
870 ms over 3G, 180 ms over LTE and 95 ms over Wi-Fi, with typical radio
transmit powers around 2.5 W, 2.0 W and 1.3 W respectively.  From those
the model derives an effective throughput and an energy-per-byte figure.
The DNN computation term uses energy-per-MAC numbers representative of a
mobile-class GPU and the MAC counts quoted in the paper (AlexNet 724M,
GoogLeNet 1.43G).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Reference upload used to calibrate the link models (bytes).
REFERENCE_IMAGE_BYTES = 152 * 1024


@dataclass(frozen=True)
class WirelessLink:
    """A wireless uplink characterised by throughput and transmit power.

    Attributes
    ----------
    name:
        Link name ("3G", "LTE", "WiFi").
    upload_seconds_per_reference:
        Seconds to upload the 152 KB reference image (from Neurosurgeon).
    transmit_power_watts:
        Radio power while transmitting.
    """

    name: str
    upload_seconds_per_reference: float
    transmit_power_watts: float

    def __post_init__(self) -> None:
        if self.upload_seconds_per_reference <= 0:
            raise ValueError("upload time must be positive")
        if self.transmit_power_watts <= 0:
            raise ValueError("transmit power must be positive")

    @property
    def throughput_bytes_per_second(self) -> float:
        """Effective uplink throughput."""
        return REFERENCE_IMAGE_BYTES / self.upload_seconds_per_reference

    @property
    def joules_per_byte(self) -> float:
        """Transmit energy per payload byte."""
        return self.transmit_power_watts / self.throughput_bytes_per_second

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to upload ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.throughput_bytes_per_second

    def transfer_energy_joules(self, num_bytes: float) -> float:
        """Energy to upload ``num_bytes``."""
        return self.transfer_seconds(num_bytes) * self.transmit_power_watts


#: Wireless links quoted in the paper's introduction (via Neurosurgeon).
WIRELESS_LINKS = {
    "3G": WirelessLink("3G", upload_seconds_per_reference=0.870,
                       transmit_power_watts=2.5),
    "LTE": WirelessLink("LTE", upload_seconds_per_reference=0.180,
                        transmit_power_watts=2.0),
    "WiFi": WirelessLink("WiFi", upload_seconds_per_reference=0.095,
                         transmit_power_watts=1.3),
}


@dataclass(frozen=True)
class DnnWorkload:
    """A DNN inference workload characterised by its MAC count."""

    name: str
    mac_count: float

    def __post_init__(self) -> None:
        if self.mac_count <= 0:
            raise ValueError("mac_count must be positive")

    def compute_energy_joules(self, joules_per_mac: float = 5e-12) -> float:
        """Energy of one inference at the given energy-per-MAC."""
        if joules_per_mac <= 0:
            raise ValueError("joules_per_mac must be positive")
        return self.mac_count * joules_per_mac


#: MAC counts quoted in the paper (Section 1 / Section 2.3).
DNN_WORKLOADS = {
    "AlexNet": DnnWorkload("AlexNet", 724e6),
    "GoogLeNet": DnnWorkload("GoogLeNet", 1.43e9),
}


@dataclass(frozen=True)
class EnergyModel:
    """Total per-inference energy: wireless upload plus DNN computation.

    Parameters
    ----------
    link:
        The wireless uplink used to offload the compressed image.
    workload:
        The DNN inference workload executed after offloading.
    joules_per_mac:
        Compute energy per multiply-accumulate (default 5 pJ, a
        mobile-GPU-class figure).
    """

    link: WirelessLink
    workload: DnnWorkload
    joules_per_mac: float = 5e-12

    def __post_init__(self) -> None:
        if self.joules_per_mac <= 0:
            raise ValueError("joules_per_mac must be positive")

    def communication_energy(self, compressed_bytes: float) -> float:
        """Energy to upload one compressed image."""
        return self.link.transfer_energy_joules(compressed_bytes)

    def computation_energy(self) -> float:
        """Energy of one DNN inference."""
        return self.workload.compute_energy_joules(self.joules_per_mac)

    def total_energy(self, compressed_bytes: float) -> float:
        """Upload plus inference energy for one image."""
        return self.communication_energy(compressed_bytes) + self.computation_energy()
