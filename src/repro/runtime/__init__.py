"""Process-pool experiment runtime.

:mod:`repro.runtime.executor` is the execution layer behind the
``workers=`` knob threaded through
:class:`~repro.experiments.common.ExperimentConfig`, the dataset
compression entry points in :mod:`repro.core.baselines` and every
``fig*`` experiment sweep: deterministic task sharding with a serial
fallback that is bit-identical to the historical single-process loops.
"""

from repro.runtime.executor import (
    CACHE_MISS,
    TaskState,
    available_workers,
    chunk_bounds,
    default_chunksize,
    effective_workers,
    fork_available,
    imap_tasks,
    map_tasks,
    map_tasks_resumable,
    spawn_seeds,
)

__all__ = [
    "CACHE_MISS",
    "TaskState",
    "available_workers",
    "chunk_bounds",
    "default_chunksize",
    "effective_workers",
    "fork_available",
    "imap_tasks",
    "map_tasks",
    "map_tasks_resumable",
    "spawn_seeds",
]
