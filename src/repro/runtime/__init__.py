"""Process-pool experiment runtime.

:mod:`repro.runtime.executor` is the execution layer behind the
``workers=`` knob threaded through
:class:`~repro.experiments.common.ExperimentConfig`, the dataset
compression entry points in :mod:`repro.core.baselines` and every
``fig*`` experiment sweep: deterministic task sharding with a serial
fallback that is bit-identical to the historical single-process loops.

:mod:`repro.runtime.supervision` layers fault tolerance on top — per-task
:class:`~repro.runtime.supervision.TaskFailure` envelopes, bounded
deterministic retries, per-task timeouts with a hung-worker watchdog and
broken-pool recovery — engaged through the ``policy``/``retries``/
``task_timeout`` knobs of the executor maps.
:mod:`repro.runtime.faults` is the matching deterministic fault-injection
harness the chaos tests drive.
"""

from repro.runtime.executor import (
    CACHE_MISS,
    TaskState,
    available_workers,
    chunk_bounds,
    default_chunksize,
    effective_workers,
    fork_available,
    imap_tasks,
    map_tasks,
    map_tasks_resumable,
    spawn_seeds,
)
from repro.runtime.supervision import (
    POLICIES,
    TaskError,
    TaskFailure,
    supervise,
    supervised_imap,
    supervised_map,
)

__all__ = [
    "CACHE_MISS",
    "POLICIES",
    "TaskError",
    "TaskFailure",
    "TaskState",
    "available_workers",
    "chunk_bounds",
    "default_chunksize",
    "effective_workers",
    "fork_available",
    "imap_tasks",
    "map_tasks",
    "map_tasks_resumable",
    "spawn_seeds",
    "supervise",
    "supervised_imap",
    "supervised_map",
]
