"""Pluggable execution backends behind one ``ExecutorBackend`` interface.

:func:`~repro.runtime.executor.map_tasks` historically hard-wired two
execution strategies — an in-process serial loop and a per-map forked
:class:`~concurrent.futures.ProcessPoolExecutor` — and
:mod:`repro.runtime.supervision` hard-wired a third (the supervised
pool).  This module factors all of them behind one small interface so
the *policy* layer (retries, timeouts, crash classification, error
policies) is written once and runs identically over every transport:

``serial``
    The exact in-process loop.  Supervised maps run the execution
    envelope inline: failure envelopes and retries work, but there is no
    second process to kill, so timeouts and crash recovery do not apply.
``forked``
    The exact per-map forked pool (plain maps) and the supervised pool
    with watchdog + broken-pool recovery.  Bit-identical to the
    pre-backend paths.
``persistent``
    The forked pool, created once and reused across sweeps/batches — a
    process-level singleton that kills the per-sweep fork + pickle tax.
    Task semantics are identical to ``forked``; only pool lifetime
    changes.
``socket``
    The distributed tier: a coordinator that leases tasks to external
    worker daemons (``python -m repro.worker --connect host:port``) over
    the :mod:`repro.runtime.wire` protocol.  Leases carry heartbeat
    deadlines; an expired or orphaned lease is reassigned to a live
    worker, reconnecting workers are re-admitted, double-completed
    leases are deduplicated (idempotent, content-addressed cells make
    the duplicate drop safe), and a coordinator that cannot find any
    worker — at open, or mid-sweep after losing all of them — degrades
    to the local ``forked`` backend and logs it.

Backend choice is *transport only*: every backend maps the same task
payloads (with their per-task seeds) through the same functions, so
results — and therefore store addresses via ``task_key()`` — are
bit-identical across backends.  Selection precedence is explicit
argument (``ExperimentConfig.backend`` / CLI ``--backend``) over the
:data:`ENV_VAR` environment variable over ``None`` (auto), and auto is
*exactly* the historical behaviour.

The supervised half of the interface is event-driven: the supervisor
(:func:`repro.runtime.supervision.supervise`) calls
``open(function, tasks, workers)``, then ``submit(index, attempt)`` /
``poll(timeout) -> [BackendEvent]`` in a loop, consulting ``running()``
for watchdog deadlines and ``kill(index)`` to enforce them, and finally
``close(graceful)``.  An event is ``ok`` (a result), ``failure`` (one
*charged* attempt: exception, timeout or crash envelope) or ``lost``
(the attempt never completed through no fault of the task — a bystander
of a pool break, an expired lease — and is re-queued without charge).
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import os
import queue
import signal
import socket as socket_module
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Optional

from repro.runtime import shm, supervision, wire
from repro.runtime.executor import (
    default_chunksize,
    effective_workers,
    fork_available,
)
from repro.runtime.supervision import (
    FAILURE_CRASH,
    FAILURE_TIMEOUT,
    TaskFailure,
    _failure_from_exception,
    _run_envelope,
)

logger = logging.getLogger(__name__)

#: Environment variable selecting the default backend (overridden by an
#: explicit ``backend=`` argument / ``--backend`` flag).
ENV_VAR = "REPRO_BACKEND"

#: The backends :func:`get_backend` knows how to build.
BACKEND_NAMES = ("serial", "forked", "persistent", "socket")

#: Coordinator bind address (``host:port``; port 0 = ephemeral).
SOCKET_BIND_ENV = "REPRO_SOCKET_BIND"
DEFAULT_BIND = "127.0.0.1:7463"

#: Seconds the coordinator waits for a worker before degrading.
SOCKET_CONNECT_DEADLINE_ENV = "REPRO_SOCKET_CONNECT_DEADLINE"
DEFAULT_CONNECT_DEADLINE = 10.0

#: Seconds without a heartbeat before a worker's lease expires.
SOCKET_LEASE_TIMEOUT_ENV = "REPRO_SOCKET_LEASE_TIMEOUT"
DEFAULT_LEASE_TIMEOUT = 15.0

#: Heartbeat interval handed to workers at handshake.
SOCKET_HEARTBEAT_ENV = "REPRO_SOCKET_HEARTBEAT"
DEFAULT_HEARTBEAT = 1.0

#: A lease redelivered this many times without completing is charged a
#: ``worker-crash`` attempt instead of circulating forever (a task that
#: reliably kills every worker it lands on must eventually fail).
MAX_DELIVERIES = 3


def validate_backend_name(name: Optional[str]) -> Optional[str]:
    """Normalise a backend name; ``None``/``"auto"``/empty mean auto."""
    if name is None:
        return None
    name = str(name).strip().lower()
    if name in ("", "auto"):
        return None
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r}; valid backends: "
            f"{BACKEND_NAMES + ('auto',)}"
        )
    return name


def resolve_backend_name(name: Optional[str] = None) -> Optional[str]:
    """Resolve the backend to use: explicit argument > env var > auto.

    Returns ``None`` for auto — callers treat that as "the exact
    historical path" (serial/forked chosen by worker count and platform,
    bit-identical to the pre-backend behaviour).
    """
    if name is not None:
        return validate_backend_name(name)
    return validate_backend_name(os.environ.get(ENV_VAR))


@dataclass
class BackendEvent:
    """One completion event from a backend's supervised ``poll``.

    ``kind`` is ``"ok"`` (``value`` holds the result), ``"failure"``
    (``failure`` holds the envelope; the supervisor charges the attempt)
    or ``"lost"`` (the attempt never ran to completion through no fault
    of the task — the supervisor re-queues it without charging).
    """

    index: int
    attempt: int
    kind: str
    value: object = None
    failure: Optional[TaskFailure] = None


class ExecutorBackend:
    """The transport interface every backend implements.

    Plain (unsupervised) maps go through :meth:`map_ordered` /
    :meth:`imap_ordered`; supervised maps through the
    ``open``/``submit``/``poll``/``running``/``kill``/``close`` cycle
    described in the module docstring.  :meth:`shutdown` releases every
    long-lived resource (persistent pools, listening sockets) and is
    safe to call repeatedly.
    """

    name = "abstract"

    # -- plain maps ----------------------------------------------------
    def map_ordered(self, function, tasks, workers=1, chunksize=None,
                    on_result=None) -> list:
        raise NotImplementedError

    def imap_ordered(self, function, tasks, workers=1, window=None):
        raise NotImplementedError

    # -- supervised maps -----------------------------------------------
    def open(self, function, tasks, workers: int) -> None:
        raise NotImplementedError

    def submit(self, index: int, attempt: int) -> None:
        raise NotImplementedError

    def poll(self, timeout: float) -> "list[BackendEvent]":
        raise NotImplementedError

    def running(self) -> "dict[int, float]":
        """``{task index: monotonic start time}`` of started attempts.

        Only tasks that appear here are subject to the watchdog; a
        backend that cannot observe task starts returns ``{}`` and
        timeouts are simply not enforced (the serial fallback).
        """
        return {}

    def kill(self, index: int) -> bool:
        """Forcibly stop a running task; ``True`` if a kill was issued."""
        return False

    def workers_alive(self) -> int:
        """How many workers can currently accept tasks."""
        return 0

    def close(self, graceful: bool = True) -> None:
        """End one supervised map (the backend may outlive it)."""

    def shutdown(self) -> None:
        """Release every long-lived resource this backend holds."""


# ----------------------------------------------------------------------
# serial
# ----------------------------------------------------------------------

class SerialBackend(ExecutorBackend):
    """In-process execution: the exact historical serial loop.

    The supervised half runs the execution envelope inline at
    ``submit`` time — envelopes, retries and policies all work, but
    :meth:`running` stays empty because there is no second process to
    kill, so timeouts are not enforced (documented degradation,
    identical to the pre-backend serial fallback).
    """

    name = "serial"

    def __init__(self) -> None:
        self._function = None
        self._tasks: list = []
        self._events: "list[BackendEvent]" = []

    def map_ordered(self, function, tasks, workers=1, chunksize=None,
                    on_result=None) -> list:
        results = []
        for index, task in enumerate(tasks):
            value = function(task)
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results

    def imap_ordered(self, function, tasks, workers=1, window=None):
        for task in tasks:
            yield function(task)

    def open(self, function, tasks, workers: int) -> None:
        self._function = function
        self._tasks = list(tasks)
        self._events = []

    def submit(self, index: int, attempt: int) -> None:
        status, value = _run_envelope(
            (index, attempt, self._function, self._tasks[index])
        )
        if status == "ok":
            self._events.append(BackendEvent(index, attempt, "ok", value=value))
        else:
            self._events.append(
                BackendEvent(index, attempt, "failure", failure=value)
            )

    def poll(self, timeout: float) -> "list[BackendEvent]":
        events, self._events = self._events, []
        return events

    def workers_alive(self) -> int:
        return 1

    def close(self, graceful: bool = True) -> None:
        self._function = None
        self._tasks = []
        self._events = []


# ----------------------------------------------------------------------
# forked (and its persistent-pool subclass)
# ----------------------------------------------------------------------

def _terminate_pool(pool) -> None:
    """Hard-stop a pool: SIGKILL every worker, never wait on them.

    Used on abnormal exits (fail-fast raise, consumer close,
    KeyboardInterrupt) and after a break, where a graceful shutdown
    could block forever behind a hung worker.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            os.kill(process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _pool_is_broken(pool) -> bool:
    return bool(getattr(pool, "_broken", False))


def _reap_exitcode(process, timeout: float = 0.5):
    """The worker's exit status, waiting briefly for the OS to reap it.

    A ``BrokenProcessPool`` can surface before the dead child is
    waitable, in which case a bare ``exitcode`` read (a non-blocking
    ``waitpid``) still reports ``None``; the short join closes that race
    so crash classification sees the real exit status.
    """
    if process is None:
        return None
    process.join(timeout=timeout)
    return process.exitcode


def _worker_died_abnormally(record, worker_pids) -> bool:
    if record is None:
        return False
    pid, _ = record
    process = worker_pids.get(pid)
    if process is None:
        return False
    exitcode = _reap_exitcode(process)
    return exitcode is not None and exitcode not in (0, -signal.SIGTERM)


def _crash_failure(index, attempt, pid, worker_pids) -> TaskFailure:
    exitcode = _reap_exitcode(worker_pids.get(pid))
    return TaskFailure(
        index=index,
        kind=FAILURE_CRASH,
        error_type="BrokenProcessPool",
        message=(
            f"worker pid {pid} died while running this task "
            f"(exit status {exitcode}); the pool was restarted and "
            f"unfinished tasks re-dispatched"
        ),
        attempts=attempt,
    )


class _ShmFunction:
    """Picklable wrapper shipping a task's result through shared memory.

    The worker packs the result with :func:`repro.runtime.shm.dump`
    (large array buffers go to a named segment, only the small
    :class:`~repro.runtime.shm.ShmPayload` crosses the result pipe);
    the parent unpacks — and unlinks — on receipt.
    """

    __slots__ = ("function",)

    def __init__(self, function) -> None:
        self.function = function

    def __getstate__(self):
        return self.function

    def __setstate__(self, function) -> None:
        self.function = function

    def __call__(self, task):
        return shm.dump(self.function(task))


def _shm_function(function):
    """Wrap ``function`` for shm result shipping when available."""
    if shm.enabled():
        return _ShmFunction(function)
    return function


def _unwrap_event(index: int, attempt: int, value) -> BackendEvent:
    """Build the ``ok`` event for a raw worker value, unpacking shm.

    A payload that fails to unpack (a corrupt or vanished segment —
    the worker died mid-handoff) charges the attempt like any other
    transport failure instead of poisoning the supervisor.
    """
    try:
        return BackendEvent(index, attempt, "ok", value=shm.maybe_load(value))
    except Exception as error:
        return BackendEvent(
            index, attempt, "failure",
            failure=_failure_from_exception(index, attempt, error),
        )


def _timeout_failure(index, attempt) -> TaskFailure:
    return TaskFailure(
        index=index,
        kind=FAILURE_TIMEOUT,
        error_type="TimeoutError",
        message=(
            "task exceeded its timeout; its worker was killed "
            "and the pool restarted"
        ),
        attempts=attempt,
    )


class ForkedBackend(ExecutorBackend):
    """Per-map forked process pool: the exact pre-backend pool paths.

    Plain maps reproduce :func:`~repro.runtime.executor.map_tasks`'s
    chunked ``pool.map`` (including its serial fallback conditions);
    supervised maps reproduce the supervised pool — fork-inherited
    start-marker channel, hung-worker watchdog kills, broken-pool
    recovery with crash classification, and free re-queueing of
    bystanders (reported to the supervisor as ``lost`` events).
    """

    name = "forked"

    #: Safety valve: a pool that keeps breaking without any task being
    #: attributable (a pathologically unstable host) eventually
    #: re-raises instead of restarting forever.
    MAX_UNATTRIBUTED_RESTARTS = 8

    #: Whether the pool (and marker channel) survive ``close``.
    keep_pool = False

    def __init__(self) -> None:
        self._pool = None
        self._channel = None
        self._previous_channel = None
        self._function = None
        self._tasks: list = []
        self._count = 1
        self._futures: dict = {}       # future -> (index, attempt)
        self._running: dict = {}       # index -> (pid, started_at)
        self._timed_out: set = set()   # watchdog victims (this generation)
        self._worker_pids: dict = {}   # pid -> Process (this generation)
        self._broken_submits: list = []
        self._unattributed_restarts = 0

    # -- plain maps ----------------------------------------------------

    def map_ordered(self, function, tasks, workers=1, chunksize=None,
                    on_result=None) -> list:
        tasks = list(tasks)
        count = effective_workers(workers, task_count=len(tasks))
        if count <= 1 or len(tasks) <= 1 or not fork_available():
            return SerialBackend().map_ordered(
                function, tasks, on_result=on_result
            )
        if chunksize is None:
            chunksize = default_chunksize(len(tasks), count)
        with self._plain_pool(count) as pool:
            results = []
            for index, value in enumerate(
                pool.map(_shm_function(function), tasks, chunksize=chunksize)
            ):
                value = shm.maybe_load(value)
                if on_result is not None:
                    on_result(index, value)
                results.append(value)
            return results

    def imap_ordered(self, function, tasks, workers=1, window=None):
        tasks = list(tasks)
        count = effective_workers(workers, task_count=len(tasks))
        if count <= 1 or len(tasks) <= 1 or not fork_available():
            for task in tasks:
                yield function(task)
            return
        if window is None:
            window = 2 * count
        window = max(int(window), 1)
        wrapped = _shm_function(function)
        with self._plain_pool(count) as pool:
            pending = deque()
            iterator = iter(tasks)
            import itertools

            for task in itertools.islice(iterator, window):
                pending.append(pool.submit(wrapped, task))
            for task in iterator:
                yield shm.maybe_load(pending.popleft().result())
                pending.append(pool.submit(wrapped, task))
            while pending:
                yield shm.maybe_load(pending.popleft().result())

    def _plain_pool(self, count):
        """A context manager yielding a pool for one plain map."""
        context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=count, mp_context=context)

    # -- supervised maps -----------------------------------------------

    def open(self, function, tasks, workers: int) -> None:
        self._function = _shm_function(function)
        self._tasks = list(tasks)
        self._count = max(int(workers), 1)
        self._futures = {}
        self._running = {}
        self._timed_out = set()
        self._broken_submits = []
        self._unattributed_restarts = 0
        if self._channel is None:
            context = multiprocessing.get_context("fork")
            self._channel = context.SimpleQueue()
        else:
            # A persistent channel can hold markers from an aborted
            # previous map; a stale marker must never give the watchdog
            # a pid to kill for this map's tasks.
            while not self._channel.empty():
                self._channel.get()
        # Workers read the channel global at fork time; pools fork
        # workers lazily at submit, so the global must stay ours for the
        # whole open..close window.
        self._previous_channel = supervision._START_CHANNEL
        supervision._START_CHANNEL = self._channel
        if self._pool is not None and (
            _pool_is_broken(self._pool)
            or self._pool._max_workers < self._count
        ):
            self._discard_pool()

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self._count, mp_context=context
            )
            self._running.clear()
            self._timed_out.clear()
            self._worker_pids = {}
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            _terminate_pool(self._pool)
        self._pool = None
        self._worker_pids = {}
        self._running.clear()
        self._timed_out.clear()

    def submit(self, index: int, attempt: int) -> None:
        pool = self._ensure_pool()
        try:
            future = pool.submit(
                _run_envelope,
                (index, attempt, self._function, self._tasks[index]),
            )
        except BrokenProcessPool:
            # The pool broke between two submissions; the attempt never
            # ran, so poll()'s recovery reports it lost (re-queued free).
            self._broken_submits.append((index, attempt))
            return
        self._futures[future] = (index, attempt)
        self._worker_pids.update(getattr(pool, "_processes", None) or {})

    def poll(self, timeout: float) -> "list[BackendEvent]":
        events: "list[BackendEvent]" = []
        broken = bool(self._broken_submits)
        if self._futures and not broken:
            done, _ = wait(
                set(self._futures), timeout=timeout,
                return_when=FIRST_COMPLETED,
            )
            self._drain_start_markers()
            for future in done:
                index, attempt = self._futures.pop(future)
                error = future.exception()
                if not isinstance(error, BrokenProcessPool):
                    # Keep the running record of broken futures: crash
                    # classification needs to know which worker was
                    # running which task.
                    self._running.pop(index, None)
                    self._timed_out.discard(index)
                if error is None:
                    status, value = future.result()
                    if status == "ok":
                        events.append(_unwrap_event(index, attempt, value))
                    else:
                        events.append(
                            BackendEvent(
                                index, attempt, "failure", failure=value
                            )
                        )
                elif isinstance(error, BrokenProcessPool):
                    # Classified below with the rest of the in-flight set.
                    broken = True
                    self._futures[future] = (index, attempt)
                elif isinstance(error, (KeyboardInterrupt, SystemExit)):
                    raise error
                else:
                    # The envelope caught task exceptions, so this is a
                    # transport failure (e.g. an unpicklable result):
                    # charge the attempt with the executor's exception.
                    events.append(
                        BackendEvent(
                            index, attempt, "failure",
                            failure=_failure_from_exception(
                                index, attempt, error
                            ),
                        )
                    )
        if broken or (self._pool is not None and _pool_is_broken(self._pool)):
            events.extend(self._recover_break())
        return events

    def _recover_break(self) -> "list[BackendEvent]":
        """Classify a broken pool's in-flight attempts and restart.

        Completed results are harvested first (a finished task must
        never be re-run), then every unfinished ``(index, attempt)`` is
        attributed: watchdog victims get a ``timeout`` failure event,
        tasks whose recorded worker died *abnormally* (an exit status
        that is neither a clean 0 nor the executor's own SIGTERM
        teardown of bystanders) a ``worker-crash`` failure event, and
        everything else — queued tasks, bystanders — a free ``lost``
        event.  If nothing is attributable (stdlib teardown details
        vary), every *started* task is blamed instead: over-charging a
        bystander costs one deterministic re-run, while under-charging
        could restart forever.
        """
        events: "list[BackendEvent]" = []
        for future in [f for f in self._futures if f.done()]:
            if future.exception() is None:
                index, attempt = self._futures.pop(future)
                self._running.pop(index, None)
                self._timed_out.discard(index)
                status, value = future.result()
                if status == "ok":
                    events.append(_unwrap_event(index, attempt, value))
                else:
                    events.append(
                        BackendEvent(index, attempt, "failure", failure=value)
                    )
        self._drain_start_markers()
        charged = False
        deferred = []
        for future, (index, attempt) in list(self._futures.items()):
            if index in self._timed_out:
                charged = True
                events.append(
                    BackendEvent(
                        index, attempt, "failure",
                        failure=_timeout_failure(index, attempt),
                    )
                )
            elif _worker_died_abnormally(
                self._running.get(index), self._worker_pids
            ):
                charged = True
                pid = self._running[index][0]
                events.append(
                    BackendEvent(
                        index, attempt, "failure",
                        failure=_crash_failure(
                            index, attempt, pid, self._worker_pids
                        ),
                    )
                )
            else:
                deferred.append((index, attempt))
        if not charged and deferred:
            # Fall back: blame every task that had actually started.
            still_deferred = []
            for index, attempt in deferred:
                if index in self._running:
                    charged = True
                    pid = self._running[index][0]
                    events.append(
                        BackendEvent(
                            index, attempt, "failure",
                            failure=_crash_failure(
                                index, attempt, pid, self._worker_pids
                            ),
                        )
                    )
                else:
                    still_deferred.append((index, attempt))
            deferred = still_deferred
        for index, attempt in deferred:
            events.append(BackendEvent(index, attempt, "lost"))
        for index, attempt in self._broken_submits:
            events.append(BackendEvent(index, attempt, "lost"))
        self._broken_submits = []
        if not charged:
            self._unattributed_restarts += 1
            if self._unattributed_restarts > self.MAX_UNATTRIBUTED_RESTARTS:
                raise BrokenProcessPool(
                    "process pool kept breaking without any attributable "
                    "task; giving up after "
                    f"{self._unattributed_restarts} restarts"
                )
        self._futures.clear()
        self._discard_pool()
        return events

    def _drain_start_markers(self) -> None:
        """Record which worker is running which task attempt.

        Markers for attempts that are no longer in flight (their future
        already completed) are dropped — a stale marker must never give
        the watchdog a pid to kill for a task that already finished.
        """
        live = {(index, attempt) for index, attempt in self._futures.values()}
        while not self._channel.empty():
            pid, index, attempt, started_at = self._channel.get()
            if (index, attempt) in live:
                self._running[index] = (pid, started_at)

    def running(self) -> "dict[int, float]":
        return {
            index: started_at
            for index, (pid, started_at) in self._running.items()
        }

    def kill(self, index: int) -> bool:
        record = self._running.get(index)
        if record is None:
            return False
        self._timed_out.add(index)
        try:
            os.kill(record[0], signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        return True

    def workers_alive(self) -> int:
        if self._pool is None:
            return 0
        return sum(
            1
            for process in getattr(self._pool, "_processes", {}).values()
            if process.is_alive()
        )

    def close(self, graceful: bool = True) -> None:
        if self._pool is not None:
            if not graceful:
                self._discard_pool()
            elif not self.keep_pool:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._worker_pids = {}
        supervision._START_CHANNEL = self._previous_channel
        self._previous_channel = None
        if not self.keep_pool and self._channel is not None:
            self._channel.close()
            self._channel = None
        self._futures = {}
        self._running = {}
        self._timed_out = set()
        self._function = None
        self._tasks = []
        # A worker killed between creating a result segment and
        # delivering its name leaves an orphan only this sweep can see.
        shm.sweep_orphans()

    def shutdown(self) -> None:
        self._discard_pool()
        if self._channel is not None:
            self._channel.close()
            self._channel = None
        shm.sweep_orphans()


class PersistentBackend(ForkedBackend):
    """The forked pool, kept warm across maps (ROADMAP item 2(b)).

    Semantics are identical to :class:`ForkedBackend`; the pool (and
    its start-marker channel) simply survive ``close(graceful=True)``,
    so consecutive sweeps skip the fork + inherited-state tax.  The
    pool is discarded on abnormal close (it may hold a wedged worker),
    on a break, or when a later map asks for more workers than it has.

    Workers forked for an earlier sweep keep that sweep's inherited
    :class:`~repro.runtime.executor.TaskState` memo; a later sweep with
    a different state key rebuilds per worker via ``build(key)`` — the
    documented cold-worker path, so results are unchanged.
    """

    name = "persistent"
    keep_pool = True

    def map_ordered(self, function, tasks, workers=1, chunksize=None,
                    on_result=None) -> list:
        tasks = list(tasks)
        count = effective_workers(workers, task_count=len(tasks))
        if count <= 1 or len(tasks) <= 1 or not fork_available():
            return SerialBackend().map_ordered(
                function, tasks, on_result=on_result
            )
        if chunksize is None:
            chunksize = default_chunksize(len(tasks), count)
        pool = self._persistent_pool(count)
        try:
            results = []
            for index, value in enumerate(
                pool.map(_shm_function(function), tasks, chunksize=chunksize)
            ):
                value = shm.maybe_load(value)
                if on_result is not None:
                    on_result(index, value)
                results.append(value)
            return results
        except BrokenProcessPool:
            self._discard_pool()
            raise
        finally:
            supervision._START_CHANNEL = self._previous_channel
            self._previous_channel = None

    def imap_ordered(self, function, tasks, workers=1, window=None):
        tasks = list(tasks)
        count = effective_workers(workers, task_count=len(tasks))
        if count <= 1 or len(tasks) <= 1 or not fork_available():
            for task in tasks:
                yield function(task)
            return
        if window is None:
            window = 2 * count
        window = max(int(window), 1)
        pool = self._persistent_pool(count)
        wrapped = _shm_function(function)
        try:
            pending = deque()
            iterator = iter(tasks)
            import itertools

            for task in itertools.islice(iterator, window):
                pending.append(pool.submit(wrapped, task))
            for task in iterator:
                yield shm.maybe_load(pending.popleft().result())
                pending.append(pool.submit(wrapped, task))
            while pending:
                yield shm.maybe_load(pending.popleft().result())
        except BrokenProcessPool:
            self._discard_pool()
            raise
        finally:
            supervision._START_CHANNEL = self._previous_channel
            self._previous_channel = None

    def _persistent_pool(self, count):
        """The warm pool, (re)built to hold at least ``count`` workers.

        Also pins the start-marker channel global for the duration of
        the map (restored by the caller's ``finally``): pools fork
        workers lazily at submit time, and a worker forked during a
        *plain* map must still inherit this backend's channel so a later
        *supervised* map reusing the pool gets its start markers.
        """
        if self._channel is None:
            context = multiprocessing.get_context("fork")
            self._channel = context.SimpleQueue()
        self._previous_channel = supervision._START_CHANNEL
        supervision._START_CHANNEL = self._channel
        self._count = count
        if self._pool is not None and (
            _pool_is_broken(self._pool) or self._pool._max_workers < count
        ):
            self._discard_pool()
        return self._ensure_pool()


# ----------------------------------------------------------------------
# socket
# ----------------------------------------------------------------------

class _Link:
    """One live worker connection (socket + lease/heartbeat state)."""

    def __init__(self, worker_id, sock, pid) -> None:
        self.worker_id = worker_id
        self.sock = sock
        self.pid = pid
        self.last_seen = time.monotonic()
        self.lease_id: Optional[int] = None
        self.alive = True
        self._send_lock = threading.Lock()

    def send(self, header: dict, blob: bytes = b"") -> None:
        with self._send_lock:
            wire.send_frame(self.sock, header, blob)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class _Lease:
    """One task attempt handed to (or queued for) a worker."""

    __slots__ = (
        "index", "attempt", "lease_id", "worker_id", "started_at",
        "deliveries",
    )

    def __init__(self, index: int, attempt: int) -> None:
        self.index = index
        self.attempt = attempt
        self.lease_id: Optional[int] = None
        self.worker_id: Optional[str] = None
        self.started_at: Optional[float] = None
        self.deliveries = 0


def _env_float(name: str, default: float) -> float:
    text = os.environ.get(name, "").strip()
    if not text:
        return default
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {text!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


class SocketBackend(ExecutorBackend):
    """Coordinator for external worker daemons over the wire protocol.

    Fault model (all deterministic-result preserving, because cells are
    idempotent and content-addressed):

    * **Leases with heartbeat deadlines.**  Each dispatched task is a
      lease; a worker that stops heartbeating for ``lease_timeout``
      seconds — or whose connection drops — forfeits its leases, which
      are re-queued and handed to live workers at no attempt charge.
    * **Bounded redelivery.**  A lease redelivered
      :data:`MAX_DELIVERIES` times without completing is charged a
      ``worker-crash`` attempt instead of circulating forever.
    * **Reconnection.**  A worker daemon reconnecting under the same id
      replaces its old link; its in-flight lease from the old link is
      re-queued.  Stale deliveries (a lease completed elsewhere, a
      revoked lease, a previous map) are recognised by their
      then-retired lease id and dropped — the deduplication that makes
      double completion harmless.
    * **Graceful degradation.**  No worker within ``connect_deadline``
      at ``open`` — or mid-sweep after every worker is lost — logs a
      warning and reroutes the rest of the map through the local
      ``forked`` backend (``serial`` where ``fork`` is unavailable).

    Plain (unsupervised) maps are routed through the supervised path
    with ``fail-fast``/no retries, then unwrapped back to the original
    exception — the socket tier always needs lease accounting.
    """

    name = "socket"

    def __init__(self, bind: Optional[str] = None) -> None:
        self._bind = wire.parse_address(
            bind or os.environ.get(SOCKET_BIND_ENV) or DEFAULT_BIND
        )
        self.connect_deadline = _env_float(
            SOCKET_CONNECT_DEADLINE_ENV, DEFAULT_CONNECT_DEADLINE
        )
        self.lease_timeout = _env_float(
            SOCKET_LEASE_TIMEOUT_ENV, DEFAULT_LEASE_TIMEOUT
        )
        self.heartbeat_interval = _env_float(
            SOCKET_HEARTBEAT_ENV, DEFAULT_HEARTBEAT
        )
        self.address: Optional[tuple] = None
        self._server = None
        self._accept_thread = None
        self._lock = threading.Lock()
        self._links: "dict[str, _Link]" = {}
        self._events: "queue.Queue" = queue.Queue()
        self._leases: "dict[int, _Lease]" = {}
        self._queue: "deque[_Lease]" = deque()
        self._counter = 0
        self._function = None
        self._tasks: list = []
        self._count = 1
        self._degraded = False
        self._local: Optional[ExecutorBackend] = None
        self._last_fresh = 0.0

    # -- plain maps (routed through supervision) -----------------------

    def map_ordered(self, function, tasks, workers=1, chunksize=None,
                    on_result=None) -> list:
        from repro.runtime.supervision import TaskError, supervised_map

        try:
            return supervised_map(
                function, list(tasks), workers=workers, policy="fail-fast",
                retries=0, on_result=on_result, backend="socket",
            )
        except TaskError as error:
            if error.failure.error is not None:
                raise error.failure.error from None
            raise

    def imap_ordered(self, function, tasks, workers=1, window=None):
        from repro.runtime.supervision import TaskError, supervised_imap

        iterator = supervised_imap(
            function, list(tasks), workers=workers, policy="fail-fast",
            retries=0, window=window, backend="socket",
        )
        try:
            yield from iterator
        except TaskError as error:
            if error.failure.error is not None:
                raise error.failure.error from None
            raise

    # -- server plumbing -----------------------------------------------

    def _ensure_server(self) -> None:
        if self._server is not None:
            return
        server = socket_module.socket(
            socket_module.AF_INET, socket_module.SOCK_STREAM
        )
        server.setsockopt(
            socket_module.SOL_SOCKET, socket_module.SO_REUSEADDR, 1
        )
        server.bind(self._bind)
        server.listen(16)
        self._server = server
        self.address = server.getsockname()[:2]
        logger.info(
            "socket backend listening on %s", wire.format_address(self.address)
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-socket-accept"
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, peer = self._server.accept()
            except OSError:
                return
            conn.setsockopt(
                socket_module.IPPROTO_TCP, socket_module.TCP_NODELAY, 1
            )
            threading.Thread(
                target=self._serve_link,
                args=(conn, f"{peer[0]}:{peer[1]}"),
                daemon=True,
                name=f"repro-socket-link-{peer[1]}",
            ).start()

    def _serve_link(self, conn, peer: str) -> None:
        try:
            conn.settimeout(10.0)
            header, _ = wire.recv_frame(conn)
        except wire.WireError:
            conn.close()
            return
        if header.get("type") != "hello":
            conn.close()
            return
        if header.get("version") != wire.PROTOCOL_VERSION:
            try:
                wire.send_frame(conn, wire.reject(
                    f"protocol version {header.get('version')} != "
                    f"{wire.PROTOCOL_VERSION}"
                ))
            except wire.WireError:
                pass
            conn.close()
            return
        conn.settimeout(None)
        worker_id = str(header.get("worker_id") or f"worker@{peer}")
        link = _Link(worker_id, conn, header.get("pid"))
        with self._lock:
            old = self._links.get(worker_id)
            self._links[worker_id] = link
        if old is not None:
            logger.info("socket worker %s reconnected", worker_id)
            self._drop_link(old)
        else:
            logger.info("socket worker %s connected from %s", worker_id, peer)
        try:
            link.send(wire.welcome(self.heartbeat_interval))
        except wire.WireError:
            self._drop_link(link)
            return
        self._dispatch()
        while True:
            try:
                header, blob = wire.recv_frame(conn)
            except wire.WireError:
                break
            with self._lock:
                link.last_seen = time.monotonic()
            kind = header.get("type")
            if kind == "result":
                self._handle_result(link, header, blob)
            # Heartbeats only refresh last_seen (already done above).
        self._drop_link(link)

    def _drop_link(self, link: _Link) -> None:
        requeue = None
        with self._lock:
            if not link.alive:
                return
            link.alive = False
            if self._links.get(link.worker_id) is link:
                del self._links[link.worker_id]
            if link.lease_id is not None:
                requeue = self._leases.pop(link.lease_id, None)
                link.lease_id = None
            if requeue is not None:
                self._requeue_locked(requeue, "its worker disconnected")
        link.close()
        if requeue is not None:
            self._dispatch()

    def _requeue_locked(self, lease: _Lease, why: str) -> None:
        """Re-queue a forfeited lease (caller holds the lock)."""
        lease.lease_id = None
        lease.worker_id = None
        lease.started_at = None
        if lease.deliveries >= MAX_DELIVERIES:
            logger.warning(
                "task %d lease forfeited %d times; charging a crash attempt",
                lease.index, lease.deliveries,
            )
            self._events.put(BackendEvent(
                lease.index, lease.attempt, "failure",
                failure=TaskFailure(
                    index=lease.index,
                    kind=FAILURE_CRASH,
                    error_type="LeaseExpired",
                    message=(
                        f"socket lease for task {lease.index} was "
                        f"forfeited {lease.deliveries} time(s) "
                        f"({why}); giving up on redelivery"
                    ),
                    attempts=lease.attempt,
                ),
            ))
            return
        logger.info(
            "re-queueing task %d attempt %d (%s, delivery %d)",
            lease.index, lease.attempt, why, lease.deliveries,
        )
        self._queue.append(lease)

    def _handle_result(self, link: _Link, header: dict, blob: bytes) -> None:
        lease_id = header.get("lease_id")
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if link.lease_id == lease_id:
                link.lease_id = None
            if lease is None:
                # A retired lease id: completed elsewhere, revoked by the
                # watchdog, or a previous map.  Idempotent cells make the
                # drop safe — this IS the double-completion dedup.
                logger.info(
                    "dropping stale delivery for retired lease %r", lease_id
                )
                return
        if header.get("status") == "ok":
            try:
                value = wire.load_payload(blob, header.get("payload"))
            except Exception as error:
                event = BackendEvent(
                    lease.index, lease.attempt, "failure",
                    failure=_failure_from_exception(
                        lease.index, lease.attempt, error
                    ),
                )
            else:
                event = BackendEvent(
                    lease.index, lease.attempt, "ok", value=value
                )
        else:
            event = BackendEvent(
                lease.index, lease.attempt, "failure",
                failure=TaskFailure.from_json(header.get("failure", {})),
            )
        self._events.put(event)
        self._dispatch()

    def _dispatch(self) -> None:
        """Hand queued leases to idle live workers (sends outside the lock)."""
        sends = []
        now = time.monotonic()
        with self._lock:
            idle = sorted(
                (
                    link for link in self._links.values()
                    if link.alive
                    and link.lease_id is None
                    # Never hand a lease to a worker that has already
                    # gone heartbeat-dark: it would expire immediately
                    # and burn a delivery.
                    and now - link.last_seen <= self.lease_timeout
                ),
                key=lambda link: link.worker_id,
            )
            for link in idle:
                if not self._queue:
                    break
                lease = self._queue.popleft()
                self._counter += 1
                lease.lease_id = self._counter
                lease.worker_id = link.worker_id
                lease.started_at = time.monotonic()
                lease.deliveries += 1
                self._leases[lease.lease_id] = lease
                link.lease_id = lease.lease_id
                sends.append((link, lease))
        for link, lease in sends:
            payload, payload_meta = wire.dump_payload(
                (lease.index, lease.attempt, self._function,
                 self._tasks[lease.index])
            )
            try:
                link.send(
                    wire.lease(
                        lease.lease_id, lease.index, lease.attempt,
                        task_label=f"task {lease.index}",
                        payload=payload_meta,
                    ),
                    payload,
                )
            except wire.WireError:
                self._drop_link(link)

    def _expire_leases(self) -> None:
        now = time.monotonic()
        expired = []
        with self._lock:
            for lease in list(self._leases.values()):
                link = self._links.get(lease.worker_id)
                stale = (
                    link is None
                    or not link.alive
                    or now - link.last_seen > self.lease_timeout
                )
                if stale:
                    del self._leases[lease.lease_id]
                    if link is not None and link.lease_id == lease.lease_id:
                        link.lease_id = None
                    expired.append((lease, link))
            for lease, link in expired:
                self._requeue_locked(
                    lease,
                    "its worker stopped heartbeating"
                    if link is not None else "its worker disappeared",
                )
        if expired:
            self._dispatch()

    def _fresh_worker_count(self, now: Optional[float] = None) -> int:
        now = time.monotonic() if now is None else now
        with self._lock:
            return sum(
                1
                for link in self._links.values()
                if link.alive and now - link.last_seen <= self.lease_timeout
            )

    def _degrade(self, reason: str) -> None:
        """Reroute the rest of this map through the local backend."""
        logger.warning(
            "socket backend degrading to local %s backend: %s",
            "forked" if fork_available() else "serial", reason,
        )
        outstanding = []
        links = []
        with self._lock:
            outstanding.extend(
                (lease.index, lease.attempt) for lease in self._queue
            )
            outstanding.extend(
                (lease.index, lease.attempt)
                for lease in self._leases.values()
            )
            self._queue.clear()
            self._leases.clear()
            links = list(self._links.values())
            self._degraded = True
        for link in links:
            self._drop_link(link)
        self._local = (
            ForkedBackend() if fork_available() else SerialBackend()
        )
        self._local.open(self._function, self._tasks, self._count)
        for index, attempt in outstanding:
            self._local.submit(index, attempt)

    # -- supervised interface ------------------------------------------

    def open(self, function, tasks, workers: int) -> None:
        self._function = function
        self._tasks = list(tasks)
        self._count = max(int(workers), 1)
        self._degraded = False
        self._local = None
        self._ensure_server()
        deadline = time.monotonic() + self.connect_deadline
        while self._fresh_worker_count() == 0:
            if time.monotonic() >= deadline:
                self._degrade(
                    f"no worker connected within {self.connect_deadline:.1f}s"
                )
                return
            time.sleep(0.02)
        with self._lock:
            self._queue.clear()
            self._leases.clear()
        self._drain_events(0.0)  # flush stragglers from a previous map
        self._last_fresh = time.monotonic()

    def submit(self, index: int, attempt: int) -> None:
        if self._degraded:
            self._local.submit(index, attempt)
            return
        with self._lock:
            self._queue.append(_Lease(index, attempt))
        self._dispatch()

    def poll(self, timeout: float) -> "list[BackendEvent]":
        if self._degraded:
            return self._local.poll(timeout)
        self._expire_leases()
        now = time.monotonic()
        if self._fresh_worker_count(now) > 0:
            self._last_fresh = now
        else:
            with self._lock:
                outstanding = bool(self._queue or self._leases)
            if outstanding and now - self._last_fresh > self.connect_deadline:
                self._degrade(
                    f"all workers lost for more than "
                    f"{self.connect_deadline:.1f}s with work outstanding"
                )
                return self._drain_events(0.0)
        self._dispatch()
        return self._drain_events(timeout)

    def _drain_events(self, timeout: float) -> "list[BackendEvent]":
        events: "list[BackendEvent]" = []
        try:
            if timeout and timeout > 0:
                events.append(self._events.get(timeout=timeout))
            else:
                events.append(self._events.get_nowait())
            while True:
                events.append(self._events.get_nowait())
        except queue.Empty:
            pass
        return events

    def running(self) -> "dict[int, float]":
        if self._degraded:
            return self._local.running()
        with self._lock:
            return {
                lease.index: lease.started_at
                for lease in self._leases.values()
                if lease.started_at is not None
            }

    def kill(self, index: int) -> bool:
        """Revoke the lease of a task past its deadline.

        A remote process cannot be SIGKILLed from here; instead the
        lease is retired (so its eventual delivery is dropped as stale)
        and the holder's connection is closed, which resets the worker
        daemon — it reconnects fresh once its current computation ends.
        A ``timeout`` failure event is emitted immediately so the
        supervisor can charge the attempt without waiting.
        """
        if self._degraded:
            return self._local.kill(index)
        holder = None
        with self._lock:
            lease = next(
                (l for l in self._leases.values() if l.index == index), None
            )
            if lease is None:
                return False
            del self._leases[lease.lease_id]
            link = self._links.get(lease.worker_id)
            if link is not None and link.lease_id == lease.lease_id:
                link.lease_id = None
                holder = link
            self._events.put(BackendEvent(
                lease.index, lease.attempt, "failure",
                failure=TaskFailure(
                    index=lease.index,
                    kind=FAILURE_TIMEOUT,
                    error_type="TimeoutError",
                    message=(
                        "task exceeded its timeout; its lease was revoked "
                        "and the worker connection dropped"
                    ),
                    attempts=lease.attempt,
                ),
            ))
        if holder is not None:
            self._drop_link(holder)
        return True

    def workers_alive(self) -> int:
        if self._degraded:
            return self._local.workers_alive()
        return self._fresh_worker_count()

    def close(self, graceful: bool = True) -> None:
        if self._local is not None:
            self._local.close(graceful)
            self._local = None
        self._degraded = False
        with self._lock:
            self._queue.clear()
            self._leases.clear()
            for link in self._links.values():
                link.lease_id = None
        self._drain_events(0.0)
        self._function = None
        self._tasks = []

    def shutdown(self) -> None:
        with self._lock:
            links = list(self._links.values())
            self._links.clear()
            self._queue.clear()
            self._leases.clear()
        for link in links:
            try:
                link.send(wire.shutdown())
            except wire.WireError:
                pass
            link.close()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
            self._accept_thread = None
        if self._local is not None:
            self._local.shutdown()
            self._local = None
        self.address = None
        self._drain_events(0.0)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------

_SINGLETONS: "dict[str, ExecutorBackend]" = {}
_SINGLETON_LOCK = threading.Lock()


def get_backend(name: str) -> ExecutorBackend:
    """Build (or fetch) the backend for ``name``.

    ``serial`` and ``forked`` are stateless per map and returned fresh;
    ``persistent`` and ``socket`` hold long-lived resources (a warm
    pool, a listening server and worker links) and are process-level
    singletons, released by :func:`shutdown_backends`.
    """
    name = validate_backend_name(name)
    if name is None or name == "forked":
        return ForkedBackend()
    if name == "serial":
        return SerialBackend()
    with _SINGLETON_LOCK:
        backend = _SINGLETONS.get(name)
        if backend is None:
            backend = (
                PersistentBackend() if name == "persistent"
                else SocketBackend()
            )
            _SINGLETONS[name] = backend
        return backend


def shutdown_backends() -> None:
    """Release every singleton backend (warm pools, sockets, threads)."""
    with _SINGLETON_LOCK:
        backends = list(_SINGLETONS.values())
        _SINGLETONS.clear()
    for backend in backends:
        try:
            backend.shutdown()
        except Exception:  # pragma: no cover - best-effort teardown
            logger.exception("backend %s shutdown failed", backend.name)
    # Final run-level sweep (also the atexit path): collect any result
    # segment orphaned outside a live backend's close(), e.g. by a
    # worker killed between creating it and delivering its name.
    shm.sweep_orphans()


atexit.register(shutdown_backends)
