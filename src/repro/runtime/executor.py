"""Multi-process execution layer for sweeps and codec batches.

Every outer loop of the reproduction — the per-figure experiment grids
and the dataset-level codec batches — funnels through :func:`map_tasks`:
a list of picklable task descriptions is mapped over a module-level task
function, either serially in-process (``workers=1``, the default, which
runs the exact same function objects in the exact same order as the
historical loops and is therefore bit-identical to them) or through a
:class:`concurrent.futures.ProcessPoolExecutor` with chunked scheduling
and in-order reassembly.

Design rules the callers follow:

* Task descriptions are small (configs, grid-cell parameters, chunk
  bounds) — never live arrays.  Heavy shared state (datasets, trained
  classifiers, codecs) lives in a per-figure :class:`TaskState` memo
  that the parent populates before the pool is created; ``fork``-started
  workers inherit it for free, and a cold worker can rebuild it from the
  config carried by the task itself.  Bulk *array* traffic — image
  stacks going out, decoded stacks coming back — bypasses pickle
  entirely through :mod:`repro.runtime.shm`: stacks ship as shared
  read-only segments keyed by a tiny picklable handle (which also keeps
  warm persistent-pool workers off stale fork-inherited globals), and
  large results travel as pickle-protocol-5 out-of-band buffers in
  per-result segments that the consumer unlinks on read.
* Results are reassembled in task order, so any worker count produces
  the same output list as the serial path.
* Randomness, where a task needs it, comes from
  :func:`spawn_seeds` — ``numpy.random.SeedSequence.spawn`` children of
  one base seed, assigned per *task* (not per worker), so streams are
  identical for any worker count.  (The current figure grids are fully
  deterministic from their ``ExperimentConfig`` seeds and do not draw
  per-task randomness; :func:`spawn_seeds` is the sanctioned mechanism
  for future stochastic tasks.)

Parallelism requires the ``fork`` start method (Linux / most POSIX):
with ``spawn``-only platforms :func:`map_tasks` silently degrades to the
serial path rather than risking stale or expensive worker state.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import os
import sys
from collections import deque
from concurrent.futures import ProcessPoolExecutor

import numpy as np


def available_workers() -> int:
    """Number of CPUs usable by a process pool on this machine."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fork_available() -> bool:
    """Whether ``fork`` exists *and is safe* on this platform.

    macOS technically offers the ``fork`` start method but forking after
    the parent has touched Accelerate/BLAS or ObjC frameworks — which
    any NumPy workload has — can abort or deadlock the children, so the
    runtime treats it (and every other non-Linux POSIX) as
    fork-unsafe and degrades to the serial path instead.
    """
    return sys.platform.startswith("linux") and (
        "fork" in multiprocessing.get_all_start_methods()
    )


def effective_workers(workers, task_count: int = None) -> int:
    """Resolve a ``workers`` knob into a concrete pool size.

    ``1`` (the default everywhere) means serial; ``N > 1`` a pool of N;
    ``0`` or ``None`` means one worker per available CPU.  The result is
    additionally capped by ``task_count`` when given — a pool larger
    than the task list only costs fork time.
    """
    if workers is None or workers == 0:
        count = available_workers()
    else:
        count = int(workers)
        if count < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
    if task_count is not None:
        count = min(count, max(int(task_count), 1))
    return max(count, 1)


def default_chunksize(task_count: int, workers: int) -> int:
    """Tasks per pool dispatch: ~4 dispatches per worker.

    Small enough to balance uneven task costs across the pool, large
    enough that per-dispatch pickling does not dominate for fine tasks.
    """
    if task_count <= 0 or workers <= 0:
        return 1
    return max(1, math.ceil(task_count / (workers * 4)))


def chunk_bounds(total: int, chunk: int) -> "list[tuple[int, int]]":
    """Ordered ``(start, stop)`` shards covering ``range(total)``.

    The contract the codec sharding relies on: an empty input yields no
    chunks (not one empty chunk), a chunk size larger than the total
    yields a single short chunk, and a remainder yields a short final
    chunk.  Concatenating the shards in order always reproduces the
    original range exactly.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if chunk < 1:
        raise ValueError(f"chunk must be at least 1, got {chunk}")
    return [
        (start, min(start + chunk, total)) for start in range(0, total, chunk)
    ]


def spawn_seeds(seed, count: int) -> "list[np.random.SeedSequence]":
    """``count`` independent child :class:`~numpy.random.SeedSequence`\\ s.

    Children are derived with ``SeedSequence.spawn``, so the streams are
    statistically independent of each other and of the parent, and —
    because they are assigned per task index, not per worker — identical
    for every worker count.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return np.random.SeedSequence(seed).spawn(count)


def map_tasks(
    function,
    tasks,
    workers: int = 1,
    chunksize: int = None,
    on_result=None,
    policy: str = None,
    retries: int = 2,
    task_timeout: float = None,
    retry_backoff: float = 0.0,
    backend: str = None,
) -> list:
    """Map ``function`` over ``tasks``, serially or through a process pool.

    Results come back in task order regardless of worker count.  With
    ``workers=1`` (or a single task, or no ``fork`` support) the map
    runs in-process — the same calls in the same order as a plain loop,
    so serial results are bit-identical to the pre-runtime behaviour.
    A task that raises propagates its exception to the caller and tears
    the pool down cleanly; the next :func:`map_tasks` call starts a
    fresh pool, so one poisoned sweep never wedges the runtime.

    ``function`` must be picklable (a module-level function) when a pool
    is used; each element of ``tasks`` is passed as its single argument.

    ``on_result`` — when given — is called as ``on_result(index, result)``
    for every completed task, in task order; the experiment layer hooks
    progress reporting into it.

    ``policy``/``retries``/``task_timeout``/``retry_backoff`` engage the
    supervised runtime (:mod:`repro.runtime.supervision`): per-task
    :class:`~repro.runtime.supervision.TaskFailure` envelopes instead of
    pool-wide propagation, bounded deterministic retries, a hung-worker
    watchdog and broken-pool recovery.  ``policy=None`` with no
    ``task_timeout`` (the default) is the legacy fast path above —
    chunked dispatch, raw exception propagation — and is bit-identical
    to the historical behaviour.  Under ``policy="collect"`` the result
    list carries a ``TaskFailure`` in each failed slot and ``on_result``
    never fires for failures.

    ``backend`` selects the execution transport
    (:mod:`repro.runtime.backends`): ``"serial"``, ``"forked"``,
    ``"persistent"`` (a warm pool reused across maps) or ``"socket"``
    (external worker daemons).  ``None`` defers to the ``REPRO_BACKEND``
    environment variable; unset, the historical auto behaviour runs —
    and because the backends map the same payloads through the same
    functions, results are bit-identical across all of them.
    """
    tasks = list(tasks)
    if policy is not None or task_timeout is not None:
        from repro.runtime.supervision import supervised_map

        return supervised_map(
            function, tasks, workers=workers,
            policy=policy if policy is not None else "fail-fast",
            retries=retries, task_timeout=task_timeout,
            backoff=retry_backoff, on_result=on_result, backend=backend,
        )
    from repro.runtime.backends import get_backend, resolve_backend_name

    resolved = resolve_backend_name(backend)
    if resolved is not None:
        return get_backend(resolved).map_ordered(
            function, tasks, workers=workers, chunksize=chunksize,
            on_result=on_result,
        )
    count = effective_workers(workers, task_count=len(tasks))
    if count <= 1 or len(tasks) <= 1 or not fork_available():
        results = []
        for index, task in enumerate(tasks):
            value = function(task)
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results
    if chunksize is None:
        chunksize = default_chunksize(len(tasks), count)
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=count, mp_context=context) as pool:
        results = []
        for index, value in enumerate(
            pool.map(function, tasks, chunksize=chunksize)
        ):
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results


#: Sentinel marking a task with no cached result in
#: :func:`map_tasks_resumable`.  ``None`` is not used because a task's
#: legitimate result may be ``None``.
CACHE_MISS = object()


def map_tasks_resumable(
    function,
    tasks,
    cached,
    workers: int = 1,
    on_result=None,
    policy: str = None,
    retries: int = 2,
    task_timeout: float = None,
    retry_backoff: float = 0.0,
    backend: str = None,
):
    """:func:`map_tasks`, but skipping tasks that already have a result.

    ``cached`` is a list parallel to ``tasks``: entry ``i`` is either a
    previously computed result for ``tasks[i]`` or :data:`CACHE_MISS`.
    Only the missing tasks are mapped (serially or over the pool, with
    the same ordering guarantees as :func:`map_tasks`); the return value
    interleaves cached and fresh results back into task order, so a
    resumed sweep is indistinguishable from a cold one.  ``on_result``
    — when given — is called as ``on_result(index, result)`` for every
    *freshly computed* result (not for cache hits), which is where the
    experiment store persists new grid cells.

    Fresh results stream through :func:`imap_tasks`, so ``on_result``
    fires as each task completes rather than after the whole map: a
    sweep killed (or poisoned by a raising task) partway through keeps
    every already-finished cell, which is what makes an interrupted
    ``--artifacts-dir`` run resumable.

    The supervision knobs (``policy``/``retries``/``task_timeout``/
    ``retry_backoff``) behave as in :func:`map_tasks`; note that under
    ``policy="collect"`` a failed slot holds a
    :class:`~repro.runtime.supervision.TaskFailure` whose ``index`` is
    rewritten to the task's *global* position (supervision only ever
    sees the cache-missing subset), and ``on_result`` — the store
    recorder — is never called for it: failures are not results and
    must not be persisted.
    """
    tasks = list(tasks)
    cached = list(cached)
    if len(cached) != len(tasks):
        raise ValueError(
            f"cached must parallel tasks: {len(cached)} != {len(tasks)}"
        )
    pending = [
        (index, task)
        for index, (task, value) in enumerate(zip(tasks, cached))
        if value is CACHE_MISS
    ]
    results = cached
    fresh = imap_tasks(
        function, [task for _, task in pending], workers=workers,
        policy=policy, retries=retries, task_timeout=task_timeout,
        retry_backoff=retry_backoff, backend=backend,
    )
    try:
        for (index, _), value in zip(pending, fresh):
            if _is_task_failure(value):
                import dataclasses

                results[index] = dataclasses.replace(value, index=index)
                continue
            if on_result is not None:
                on_result(index, value)
            results[index] = value
    except Exception as error:
        _remap_task_error(error, pending)
        raise
    return results


def _remap_task_error(error, pending) -> None:
    """Rewrite a raised ``TaskError``'s failure to its global task index.

    Supervision only ever sees the cache-missing subset, so the envelope
    riding an exhaustion error carries a subset-local index; callers
    (and their users' tracebacks) must name the task's position in the
    full list instead.  Mutates ``error`` in place; non-``TaskError``
    exceptions pass through untouched.
    """
    from repro.runtime.supervision import TaskError

    if not isinstance(error, TaskError):
        return
    import dataclasses

    local = error.failure.index
    if 0 <= local < len(pending):
        error.failure = dataclasses.replace(
            error.failure, index=pending[local][0]
        )
        error.args = (error.failure.describe(),)


def _is_task_failure(value) -> bool:
    """Whether ``value`` is a supervision failure envelope.

    Imported lazily: :mod:`repro.runtime.supervision` imports this
    module at import time, so the dependency must stay one-directional
    at module scope.
    """
    from repro.runtime.supervision import TaskFailure

    return isinstance(value, TaskFailure)


def imap_tasks(
    function,
    tasks,
    workers: int = 1,
    window: int = None,
    policy: str = None,
    retries: int = 2,
    task_timeout: float = None,
    retry_backoff: float = 0.0,
    backend: str = None,
):
    """Like :func:`map_tasks`, but a generator with bounded buffering.

    Yields results in task order while keeping at most ``window``
    (default ``2 * workers``) tasks outstanding — submitted but not yet
    consumed — so a slow consumer exerts backpressure on the pool
    instead of letting every result pile up in memory.  The codec
    sharding uses this to keep the parallel dataset path under the same
    peak-memory bound as the serial chunked loop.

    The serial fallback conditions match :func:`map_tasks`; the pool
    lives for the lifetime of the generator and is torn down when it is
    exhausted (or closed early).  The supervision knobs (``policy``/
    ``retries``/``task_timeout``/``retry_backoff``) behave as in
    :func:`map_tasks`.
    """
    tasks = list(tasks)
    if policy is not None or task_timeout is not None:
        from repro.runtime.supervision import supervised_imap

        yield from supervised_imap(
            function, tasks, workers=workers,
            policy=policy if policy is not None else "fail-fast",
            retries=retries, task_timeout=task_timeout,
            backoff=retry_backoff, window=window, backend=backend,
        )
        return
    from repro.runtime.backends import get_backend, resolve_backend_name

    resolved = resolve_backend_name(backend)
    if resolved is not None:
        yield from get_backend(resolved).imap_ordered(
            function, tasks, workers=workers, window=window,
        )
        return
    count = effective_workers(workers, task_count=len(tasks))
    if count <= 1 or len(tasks) <= 1 or not fork_available():
        for task in tasks:
            yield function(task)
        return
    if window is None:
        window = 2 * count
    window = max(int(window), 1)
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=count, mp_context=context) as pool:
        pending = deque()
        iterator = iter(tasks)
        for task in itertools.islice(iterator, window):
            pending.append(pool.submit(function, task))
        for task in iterator:
            yield pending.popleft().result()
            pending.append(pool.submit(function, task))
        while pending:
            yield pending.popleft().result()


class TaskState:
    """Single-slot, process-local memo for heavy shared task state.

    A figure module declares one ``TaskState(build)`` at module level;
    ``build(key)`` reconstructs the state (datasets, classifiers, shared
    codecs) from a small hashable key — typically an
    :class:`~repro.experiments.common.ExperimentConfig`.  The parent
    process calls :meth:`seed` with the state it built for its own use
    before opening the pool, so ``fork`` workers inherit it without any
    pickling; a worker whose memo is cold (``spawn`` platforms, or a
    state the parent never built) falls back to ``build(key)``.

    Only the most recent key is cached: figure sweeps use one state for
    the whole grid, and a single slot cannot leak across scales.

    The empty slot is marked by a private sentinel, not ``None`` — a
    ``build`` that legitimately returns ``None`` is memoised like any
    other value instead of rebuilding on every ``get``.
    """

    #: Sentinel marking the empty memo slot (``None`` is a valid state).
    _EMPTY = object()

    def __init__(self, build) -> None:
        self._build = build
        self._key = self._EMPTY
        self._value = self._EMPTY

    def seed(self, key, value) -> None:
        """Install parent-built state for ``key`` (pre-fork)."""
        self._key = key
        self._value = value

    def get(self, key):
        """The state for ``key``, rebuilding it if the memo is cold."""
        if self._value is self._EMPTY or self._key != key:
            self.seed(key, self._build(key))
        return self._value

    def clear(self) -> None:
        """Drop the cached state (used by tests)."""
        self._key = self._EMPTY
        self._value = self._EMPTY

    def is_empty(self) -> bool:
        """Whether the memo slot is released (no state pinned)."""
        return self._value is self._EMPTY
