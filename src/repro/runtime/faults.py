"""Deterministic fault injection for the supervised runtime.

DeepN-JPEG targets edge deployment, where preemption, OOM kills and
transient failures are the norm — so the fault-tolerance layer has to be
*testable*, not just written.  This module provides the chaos harness:
small declarative fault specs — "on task *i*, attempt *a*: raise a
transient error / kill the worker process / hang past the timeout" —
installed programmatically (:func:`install_faults` / :func:`injected`)
or through the :data:`REPRO_FAULTS` environment variable (which ``fork``
workers and CLI subprocesses inherit), and fired by the supervised
execution envelope (:mod:`repro.runtime.supervision`) just before the
task function runs.

Because a fault is keyed on ``(task index, attempt number)`` and the
supervised runtime re-runs a retried task with exactly the same task
payload (including its per-task ``SeedSequence``), a recovered sweep is
bit-identical to a fault-free one — which is precisely what the chaos
test suite asserts.

Spec grammar (comma-separated entries)::

    kind:index[:attempt[:seconds]]

    raise:3        raise InjectedFault on task 3, attempt 1
    raise:3:2      ... on attempt 2 instead
    raise:3:0      ... on every attempt (a *permanent* failure)
    exit:5         os._exit the worker running task 5, attempt 1
    hang:2:1:30    sleep 30 s inside task 2's first attempt, then proceed

Network fault kinds (socket-worker tier only, injected by
:mod:`repro.runtime.worker` — see :data:`NETWORK_KINDS`)::

    disconnect:4     drop the coordinator connection before task 4, then
                     compute, reconnect and deliver
    delay:2:1:3      sleep 3 s before sending task 2's result (slow link)
    dup-result:1     send task 1's result frame twice (dedup check)
    hb-loss:3:1:20   suppress heartbeats for 20 s during task 3 (lease
                     expiry + reassignment)

Faults fire only under the supervised runtime (an error policy, retries
or a task timeout engaged); the legacy fast path never consults them.
The store-corruption fault — a crashed writer leaving a truncated
artifact — is injected directly on disk with
:func:`truncate_store_artifacts`.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

#: Environment variable holding a fault spec string (see module docstring).
ENV_VAR = "REPRO_FAULTS"

#: Compute fault kinds: injected by :func:`fire` inside the execution
#: envelope, on any backend.
KINDS = ("raise", "exit", "hang")

#: Network fault kinds: consulted by the socket worker daemon
#: (:mod:`repro.runtime.worker`) around task execution and result
#: delivery; :func:`fire` ignores them.
#:
#: ``disconnect``
#:     Drop the coordinator connection just before running the task,
#:     keep computing, reconnect with backoff, deliver the result — the
#:     forced-reconnect chaos scenario.
#: ``delay``
#:     Sleep ``seconds`` before sending the result (a slow link).
#: ``dup-result``
#:     Send the result frame twice (the coordinator must deduplicate).
#: ``hb-loss``
#:     Suppress heartbeats for ``seconds`` while running the task, so
#:     the coordinator's lease deadline expires and the lease is
#:     reassigned to a live worker.
NETWORK_KINDS = ("disconnect", "delay", "dup-result", "hb-loss")

#: Every kind the spec grammar accepts.
ALL_KINDS = KINDS + NETWORK_KINDS

#: Exit status used by the ``exit`` fault (BSD ``EX_SOFTWARE``), distinct
#: from every status the runtime itself produces.
EXIT_CODE = 70

#: Default sleep of a ``hang`` fault — long enough to trip any sane task
#: timeout, short enough that a harness bug cannot wedge a suite forever.
DEFAULT_HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """The transient error raised by a ``raise`` fault."""


class FaultSpecError(ValueError):
    """A fault spec string that does not follow the grammar."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what to do, on which task, on which attempt.

    ``attempt`` is 1-based; ``0`` means *every* attempt, which turns a
    transient fault into a permanent one (the shape the ``collect``
    policy tests need).  ``seconds`` only applies to ``hang`` faults.
    """

    kind: str
    index: int
    attempt: int = 1
    seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; known kinds: {ALL_KINDS}"
            )
        if self.index < 0:
            raise FaultSpecError(f"fault index must be >= 0, got {self.index}")
        if self.attempt < 0:
            raise FaultSpecError(
                f"fault attempt must be >= 0 (0 = every attempt), "
                f"got {self.attempt}"
            )
        if self.seconds <= 0:
            raise FaultSpecError(
                f"hang seconds must be positive, got {self.seconds}"
            )

    def matches(self, index: int, attempt: int) -> bool:
        return self.index == index and self.attempt in (0, attempt)

    def is_network(self) -> bool:
        """Whether this fault is transport-level (worker-daemon only)."""
        return self.kind in NETWORK_KINDS

    def fire(self) -> None:
        """Inject this fault (runs inside the worker, pre-task).

        Network kinds are a no-op here: they need the worker daemon's
        connection context and are injected by
        :mod:`repro.runtime.worker` instead.
        """
        if self.kind == "raise":
            raise InjectedFault(
                f"injected transient fault on task {self.index}"
            )
        if self.kind == "exit":
            # A hard crash: no exception, no cleanup, no result — the
            # worker just disappears, exactly like an OOM kill.
            os._exit(EXIT_CODE)
        if self.kind == "hang":
            time.sleep(self.seconds)


def parse_faults(text: str) -> "tuple[FaultSpec, ...]":
    """Parse a spec string (see module docstring) into fault specs."""
    specs = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if not 2 <= len(parts) <= 4:
            raise FaultSpecError(
                f"fault entry {entry!r} must be kind:index[:attempt[:seconds]]"
            )
        kind = parts[0].strip()
        try:
            index = int(parts[1])
            attempt = int(parts[2]) if len(parts) > 2 else 1
            seconds = float(parts[3]) if len(parts) > 3 else (
                DEFAULT_HANG_SECONDS
            )
        except ValueError as error:
            raise FaultSpecError(
                f"fault entry {entry!r} has a non-numeric field: {error}"
            ) from None
        try:
            specs.append(
                FaultSpec(
                    kind=kind, index=index, attempt=attempt, seconds=seconds
                )
            )
        except FaultSpecError as error:
            # Name the offending token: a typo in a long REPRO_FAULTS
            # string must be findable from the message alone.
            raise FaultSpecError(f"fault entry {entry!r}: {error}") from None
    return tuple(specs)


#: Programmatically installed faults; ``None`` defers to the environment.
_INSTALLED: "Optional[tuple[FaultSpec, ...]]" = None


def install_faults(faults) -> "tuple[FaultSpec, ...]":
    """Install faults for this process (and future ``fork`` children).

    ``faults`` is a spec string or an iterable of :class:`FaultSpec`.
    Installed faults shadow :data:`REPRO_FAULTS` until
    :func:`clear_faults`.
    """
    global _INSTALLED
    if isinstance(faults, str):
        faults = parse_faults(faults)
    _INSTALLED = tuple(faults)
    return _INSTALLED


def clear_faults() -> None:
    """Remove programmatically installed faults (env faults resume)."""
    global _INSTALLED
    _INSTALLED = None


def active_faults() -> "tuple[FaultSpec, ...]":
    """The faults currently in force (installed, else from the env)."""
    if _INSTALLED is not None:
        return _INSTALLED
    text = os.environ.get(ENV_VAR, "")
    return parse_faults(text) if text.strip() else ()


def validate_active_faults() -> "tuple[FaultSpec, ...]":
    """Eagerly parse and return the active fault specs.

    :func:`install_faults` already validates programmatic specs at
    install time, but a :data:`REPRO_FAULTS` string from the environment
    used to be parsed lazily inside :func:`fire` — i.e. inside a worker,
    mid-sweep, after minutes of healthy cells.  The supervised runtime,
    the worker daemon and the CLI call this up front instead, so a typo
    fails the run immediately with a :class:`FaultSpecError` naming the
    bad token.
    """
    return active_faults()


def network_faults(index: int, attempt: int) -> "tuple[FaultSpec, ...]":
    """The matching network-kind faults for ``(index, attempt)``.

    The worker daemon consults this around task execution and result
    delivery; compute kinds are excluded (they fire through
    :func:`fire` inside the execution envelope, identically on every
    backend).
    """
    return tuple(
        spec
        for spec in active_faults()
        if spec.is_network() and spec.matches(index, attempt)
    )


def fire(index: int, attempt: int) -> None:
    """Fire every active fault matching ``(index, attempt)``.

    Called by the supervised execution envelope with the task's index in
    its map and the 1-based attempt number; a no-op when nothing
    matches (the overwhelmingly common case: one string comparison and
    an empty tuple scan).
    """
    for spec in active_faults():
        if spec.matches(index, attempt):
            spec.fire()


@contextmanager
def injected(faults):
    """Context manager installing ``faults`` for the duration of a block."""
    install_faults(faults)
    try:
        yield
    finally:
        clear_faults()


# ----------------------------------------------------------------------
# Store-corruption faults (injected on disk, not in a worker).
# ----------------------------------------------------------------------

def truncate_artifact(path: str, keep_bytes: int = 16) -> None:
    """Truncate one artifact file in place — a crashed writer's footprint.

    The resulting file is no longer valid JSON, which is exactly the
    corruption :meth:`repro.experiments.store.ArtifactStore.get` must
    demote to a cache miss (recompute and overwrite, never crash).
    """
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)


def truncate_store_artifacts(
    root: str, count: int = 1, keep_bytes: int = 16
) -> "list[str]":
    """Deterministically truncate the first ``count`` artifacts under ``root``.

    Artifacts are taken in sorted path order (content addresses, so the
    selection is stable for a given store population); the truncated
    paths are returned so a chaos test can assert exactly those cells —
    and only those — were recomputed.
    """
    paths = sorted(
        os.path.join(dirpath, name)
        for dirpath, _, files in os.walk(root)
        for name in files
        if name.endswith(".json")
    )[: max(int(count), 0)]
    for path in paths:
        truncate_artifact(path, keep_bytes=keep_bytes)
    return paths
