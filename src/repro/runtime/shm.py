"""Shared-memory buffer layer for zero-copy task and result shipping.

The process-pool backends historically moved every task payload and
result through pickle over a multiprocessing pipe: a 64 KiB-chunked,
lock-serialised channel that copies each byte at least twice.  For the
codec workloads that is exactly the wrong shape — task payloads carry
``(N, H, W[, C])`` image stacks and results carry reconstructed pixel
stacks, i.e. a few kilobytes of structure wrapped around megabytes of
flat array data.

This module splits the two apart:

* :func:`dump` pickles a value with **protocol 5 out-of-band buffers**
  (:class:`pickle.PickleBuffer`): the structural pickle stays a small
  byte string, while every large contiguous buffer (NumPy array data)
  is written once into a named ``multiprocessing.shared_memory``
  segment.  The returned :class:`ShmPayload` is tiny and picklable, so
  it rides the existing result pipe for free.  Buffers below
  :data:`MIN_SEGMENT_BYTES` stay inline — a segment per small result
  would cost more in ``shm_open``/``mmap`` than it saves in copies.
* :func:`load` re-attaches the segment, rebuilds the out-of-band
  buffers, and by default **unlinks** the segment: the consumer owns
  cleanup, so the normal path leaves nothing in ``/dev/shm``.
* :func:`create_stack` / :func:`attach_stack` share one read-only
  array (the dataset image stack) across many workers: the parent
  writes it once, every worker maps the same pages and slices its
  shard without any per-task copy.  This replaces fork-time global
  inheritance, which silently served **stale data** to warm persistent
  pools (a worker forked during sweep 1 kept sweep 1's stack global
  for sweep 2).

Crash safety: a SIGKILLed worker can die between creating a segment
and delivering its name, leaving an orphan.  Every segment name this
run creates starts with :func:`run_prefix` (``repro-shm-<pid of the
coordinating process>-``), so :func:`sweep_orphans` can glob
``/dev/shm`` for the run's prefix and unlink leftovers at backend
close/shutdown without ever touching another run's segments.

CPython's ``resource_tracker`` registers shared-memory names at
``create=True`` and unlinks them when the creating process exits,
which fights any cross-process ownership protocol (a worker's result
segment would be destroyed under the parent still holding its name).
This module unregisters every segment it creates and manages the
lifecycle itself.
"""

from __future__ import annotations

import os
import pickle
import secrets
import sys
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Below this many out-of-band bytes a result is shipped inline: the
#: fixed cost of ``shm_open`` + ``mmap`` + ``unlink`` (~3 syscalls each
#: side) beats the pipe only once the payload dwarfs a pipe buffer.
MIN_SEGMENT_BYTES = 64 * 1024

#: Environment knob: ``REPRO_SHM=0`` disables the shared-memory paths
#: (backends fall back to plain pickle shipping).
ENV_VAR = "REPRO_SHM"

#: Environment override for the run prefix, so externally launched
#: helper processes (e.g. test subprocesses) join the parent's run.
PREFIX_ENV_VAR = "REPRO_SHM_PREFIX"

#: Default run prefix, fixed at first import so forked workers inherit
#: the *coordinator's* pid, not their own.
_DEFAULT_PREFIX = f"repro-shm-{os.getpid()}"


class ShmUnavailable(RuntimeError):
    """Shared-memory shipping requested on a platform without support."""


def enabled() -> bool:
    """Whether the shared-memory paths are usable and not opted out."""
    if os.environ.get(ENV_VAR, "").strip() == "0":
        return False
    return sys.platform.startswith("linux") and os.path.isdir("/dev/shm")


def run_prefix() -> str:
    """This run's segment-name prefix (see module docstring)."""
    return os.environ.get(PREFIX_ENV_VAR) or _DEFAULT_PREFIX


def _fresh_name(kind: str = "r") -> str:
    """A fresh run-prefixed segment name.

    ``kind`` distinguishes worker-created result payloads (``r`` — the
    only class that can be orphaned by a killed worker, and the default
    :func:`sweep_orphans` target) from parent-owned shared stacks
    (``s`` — cleaned up by the parent's own ``finally``, and never
    swept while a map that might still attach them is in flight).
    """
    return f"{run_prefix()}-{kind}-{secrets.token_hex(6)}"


def _untrack(name: str) -> None:
    """Stop the resource tracker from unlinking ``name`` behind our back.

    Only creators call this: CPython 3.11 registers a segment with the
    tracker on ``create=True`` only (attach does not register), and the
    tracker would otherwise unlink the segment when the *creating*
    process exits even though a consumer still owns it.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        # Tracker internals vary across CPython patch levels; ownership
        # still works, at worst with a tracker warning at exit.
        pass


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def _unlink_quiet(name: str) -> bool:
    """Unlink segment ``name`` if it exists; returns whether it did."""
    shared_memory = _shared_memory()
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:
        return False
    return True


def list_segments(prefix: Optional[str] = None) -> "list[str]":
    """Names of live ``/dev/shm`` segments carrying ``prefix``."""
    prefix = run_prefix() if prefix is None else prefix
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))


def sweep_orphans(prefix: Optional[str] = None) -> "list[str]":
    """Unlink leftover *result* segments of this run; returns the names.

    Called by the backends at close/shutdown: the normal consume path
    unlinks as it loads, so anything still present belongs to a worker
    that died between creating a segment and delivering its name.
    Parent-owned stack segments (``-s-`` names) are deliberately not
    swept — a concurrent plain map may still be attaching them, and
    their creator's ``finally`` owns their cleanup.
    """
    prefix = f"{run_prefix()}-r-" if prefix is None else prefix
    removed = []
    for name in list_segments(prefix):
        if _unlink_quiet(name):
            removed.append(name)
    return removed


# ----------------------------------------------------------------------
# Pickle-5 payloads: structure in-band, big buffers out-of-band
# ----------------------------------------------------------------------

@dataclass
class ShmPayload:
    """A pickled value whose large buffers live out-of-band.

    ``pickle_data`` is the protocol-5 structural pickle; the buffers it
    references are either packed end-to-end in the named ``segment``
    (``lengths`` giving the split points) or carried ``inline`` when
    the total is too small to justify a segment.  The object itself is
    tiny and picklable, so it crosses any transport the backends use.
    """

    pickle_data: bytes
    segment: Optional[str] = None
    lengths: "list[int]" = field(default_factory=list)
    inline: "Optional[list[bytes]]" = None


def is_payload(value) -> bool:
    return isinstance(value, ShmPayload)


def dump(value, min_bytes: int = MIN_SEGMENT_BYTES) -> ShmPayload:
    """Pack ``value`` into a :class:`ShmPayload` (see module docstring)."""
    buffers: "list[pickle.PickleBuffer]" = []
    data = pickle.dumps(value, protocol=5, buffer_callback=buffers.append)
    raws = [buffer.raw() for buffer in buffers]
    total = sum(raw.nbytes for raw in raws)
    if total < min_bytes or not enabled():
        return ShmPayload(
            data,
            lengths=[raw.nbytes for raw in raws],
            inline=[bytes(raw) for raw in raws],
        )
    shared_memory = _shared_memory()
    segment = shared_memory.SharedMemory(
        create=True, size=total, name=_fresh_name()
    )
    _untrack(segment.name)
    lengths = []
    offset = 0
    for raw in raws:
        end = offset + raw.nbytes
        segment.buf[offset:end] = raw
        lengths.append(raw.nbytes)
        offset = end
    name = segment.name
    segment.close()
    return ShmPayload(data, segment=name, lengths=lengths)


def load(payload: ShmPayload, unlink: bool = True):
    """Reconstruct the value of a :class:`ShmPayload`.

    With ``unlink`` (the default) the backing segment is destroyed
    after reading: the consumer owns cleanup, so a fully consumed sweep
    leaves ``/dev/shm`` empty.
    """
    if payload.segment is None:
        return pickle.loads(payload.pickle_data, buffers=payload.inline or [])
    shared_memory = _shared_memory()
    segment = shared_memory.SharedMemory(name=payload.segment)
    try:
        buffers = []
        offset = 0
        for length in payload.lengths:
            # Copy out to the heap so the segment can be unlinked now
            # instead of pinning /dev/shm for the value's lifetime.
            buffers.append(bytes(segment.buf[offset:offset + length]))
            offset += length
        return pickle.loads(payload.pickle_data, buffers=buffers)
    finally:
        segment.close()
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass


def maybe_load(value, unlink: bool = True):
    """:func:`load` if ``value`` is a payload, else ``value`` unchanged."""
    if is_payload(value):
        return load(value, unlink=unlink)
    return value


# ----------------------------------------------------------------------
# Shared read-only stacks: one segment, many workers, no per-task copy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StackHandle:
    """Picklable key to a shared array: segment name + dtype + shape."""

    name: str
    dtype: str
    shape: "tuple[int, ...]"


class SharedStack:
    """Owner handle of a shared array segment (created by the parent)."""

    def __init__(self, handle: StackHandle, segment) -> None:
        self.handle = handle
        self._segment = segment

    def close(self, unlink: bool = True) -> None:
        if self._segment is None:
            return
        segment, self._segment = self._segment, None
        segment.close()
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass


def create_stack(array: np.ndarray) -> SharedStack:
    """Copy ``array`` into a fresh segment shared with future workers."""
    if not enabled():
        raise ShmUnavailable(
            "shared-memory stacks are unavailable on this platform "
            f"(or disabled via {ENV_VAR}=0)"
        )
    array = np.ascontiguousarray(array)
    shared_memory = _shared_memory()
    segment = shared_memory.SharedMemory(
        create=True, size=max(array.nbytes, 1), name=_fresh_name("s")
    )
    _untrack(segment.name)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    del view
    handle = StackHandle(
        name=segment.name, dtype=array.dtype.str, shape=tuple(array.shape)
    )
    return SharedStack(handle, segment)


#: Process-local cache of attached stack mappings: ``name`` →
#: ``(segment, array)``.  Closing a mapping while *any* view of it is
#: alive unmaps the pages under that view (observed: a later access
#: segfaults), so attachments are never closed eagerly.  The cache
#: holds at most one stack — jobs are sequential, so attaching a new
#: stack evicts the previous mapping at the only moment it is provably
#: view-free (the old job's results were deep-copied out at
#: :func:`dump` time) — which also bounds a long-lived persistent
#: worker to one mapped stack instead of one per job served.
_ATTACHED: "dict[str, tuple]" = {}


def attach_stack(handle: StackHandle) -> np.ndarray:
    """The shared stack as a read-only array mapped in this process.

    The mapping stays valid for the rest of this process's current job
    (see :data:`_ATTACHED`); the creator owns the segment and unlinks
    it when every consumer is done — on Linux an unlinked segment's
    pages survive until the last mapping closes, so a parent unlink
    racing a worker still computing is safe.
    """
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[1]
    detach_stacks()
    shared_memory = _shared_memory()
    segment = shared_memory.SharedMemory(name=handle.name)
    array = np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf
    )
    array.flags.writeable = False
    _ATTACHED[handle.name] = (segment, array)
    return array


def detach_stacks() -> None:
    """Drop every cached stack mapping (evict path and test cleanup).

    Only call when no views of the cached stacks can be alive — after
    a job's results have been shipped (every shipped buffer is a copy).
    """
    while _ATTACHED:
        segment, array = _ATTACHED.popitem()[1]
        del array
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a straggler view
            pass
