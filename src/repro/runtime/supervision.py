"""Supervised task execution: failure envelopes, retries, timeouts, recovery.

The plain :func:`~repro.runtime.executor.map_tasks` pool propagates the
first raising task pool-wide, and a killed or hung worker aborts the
whole sweep — acceptable for an interactive reproduction, fatal for the
edge/IoT deployments DeepN-JPEG targets, where preemption, OOM kills and
transient failures are the norm.  This module supervises the map
instead:

* **Per-task error envelopes.**  Each task runs inside
  :func:`_run_envelope`; an exception becomes a :class:`TaskFailure`
  carrying the task index, error type/message, formatted traceback, the
  attempt count and (when picklable) the original exception — one
  failing cell never poisons its siblings.
* **Bounded retries with deterministic backoff.**  A failed attempt is
  re-queued up to ``retries`` times, delayed by
  ``backoff * 2**(attempt-1)`` seconds.  A retried task re-runs with
  exactly the same task payload — including its per-task
  :class:`~numpy.random.SeedSequence`, which :func:`spawn_seeds` assigns
  by task index — so a recovered sweep is bit-identical to a fault-free
  one.
* **Per-task timeouts with a hung-worker watchdog.**  Workers announce
  each task they start over a fork-inherited channel; the parent tracks
  deadlines and ``SIGKILL``\\ s the worker running a task past its
  ``task_timeout``.  The kill breaks the pool, which the recovery path
  below restarts; the timed-out task is charged one attempt.
* **Crash recovery.**  A worker that dies mid-task (``os._exit``, OOM
  kill, segfault) breaks the pool with
  :class:`~concurrent.futures.process.BrokenProcessPool`.  The
  supervisor classifies the in-flight tasks — dead worker's task:
  charged a ``worker-crash`` attempt; watchdog victims: charged a
  ``timeout`` attempt; bystanders: re-queued for free — then restarts
  the pool and re-dispatches only the unfinished tasks.  Completed
  results are never recomputed (and cells persisted through
  :func:`~repro.runtime.executor.map_tasks_resumable` survive even a
  supervisor crash).

Three error policies decide what happens when a task exhausts its
attempts: ``fail-fast`` (no retries; raise :class:`TaskError`
immediately), ``retry`` (retry, then raise), ``collect`` (retry, then
yield the :class:`TaskFailure` in the task's result slot so the sweep
finishes every healthy task).

The supervised path requires the ``fork`` start method for its worker
channel and watchdog; without it, execution degrades to an in-process
serial loop that still provides envelopes and retries (but cannot
enforce timeouts or survive crashes — there is no second process to
kill).  Deterministic faults for testing all of this live in
:mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Optional

from repro.runtime import faults as faults_module
from repro.runtime.executor import effective_workers, fork_available

#: The error policies a supervised map understands.
POLICIES = ("fail-fast", "retry", "collect")

#: ``TaskFailure.kind`` values.
FAILURE_EXCEPTION = "exception"
FAILURE_TIMEOUT = "timeout"
FAILURE_CRASH = "worker-crash"

#: Watchdog poll interval (seconds): how often start markers are drained
#: and deadlines checked while futures are outstanding.
_TICK = 0.05

#: Safety valve: a pool that keeps breaking without any task being
#: attributable (a pathologically unstable host) eventually re-raises
#: instead of restarting forever.
_MAX_UNATTRIBUTED_RESTARTS = 8


@dataclass(frozen=True)
class TaskFailure:
    """The error envelope of one task that exhausted its attempts.

    ``index`` is the task's position in the supervised map (callers that
    interleave cached results — :func:`map_tasks_resumable` — rewrite it
    to the global position).  ``error`` holds the original exception
    when it survived pickling, else ``None``; ``traceback`` is always a
    formatted string (empty for crashes and timeouts, which have no
    Python traceback to capture).
    """

    index: int
    kind: str
    error_type: str
    message: str
    attempts: int
    traceback: str = ""
    error: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )

    def describe(self) -> str:
        return (
            f"task {self.index} failed after {self.attempts} attempt(s) "
            f"[{self.kind}]: {self.error_type}: {self.message}"
        )


class TaskError(RuntimeError):
    """Raised under ``fail-fast``/``retry`` when a task's attempts run out.

    Carries the :class:`TaskFailure` envelope as ``failure``; the
    original exception (when available) is chained as ``__cause__``.
    """

    def __init__(self, failure: TaskFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


def _raise_task_error(failure: TaskFailure) -> None:
    raise TaskError(failure) from failure.error


def validate_policy(policy: str) -> str:
    if policy not in POLICIES:
        raise ValueError(
            f"unknown error policy {policy!r}; valid policies: {POLICIES}"
        )
    return policy


def _failure_from_exception(
    index: int, attempt: int, error: BaseException, kind: str = FAILURE_EXCEPTION
) -> TaskFailure:
    keep: Optional[BaseException] = error
    try:  # Only ship exceptions that survive a pickle round-trip.
        pickle.loads(pickle.dumps(error))
    except Exception:
        keep = None
    return TaskFailure(
        index=index,
        kind=kind,
        error_type=type(error).__name__,
        message=str(error),
        attempts=attempt,
        traceback="".join(
            traceback_module.format_exception(
                type(error), error, error.__traceback__
            )
        ),
        error=keep,
    )


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------

#: Fork-inherited start-marker channel.  The parent installs a queue here
#: before opening (or reopening) a pool; every worker announces
#: ``(pid, index, attempt, monotonic start time)`` before running a task,
#: which is what gives the watchdog per-task deadlines and the crash
#: recovery exact attribution.  Linux ``CLOCK_MONOTONIC`` is shared
#: across processes, so worker timestamps compare directly with the
#: parent's clock.
_START_CHANNEL = None


def _run_envelope(payload):
    """Module-level pool task: one supervised attempt of one task."""
    index, attempt, function, task = payload
    channel = _START_CHANNEL
    if channel is not None:
        channel.put((os.getpid(), index, attempt, time.monotonic()))
    try:
        faults_module.fire(index, attempt)
        value = function(task)
    except Exception as error:
        return ("failure", _failure_from_exception(index, attempt, error))
    return ("ok", value)


# ----------------------------------------------------------------------
# Supervisor.
# ----------------------------------------------------------------------

def supervise(
    function,
    tasks,
    workers: int = 1,
    policy: str = "retry",
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff: float = 0.0,
    window: Optional[int] = None,
):
    """Supervised map: yields ``(index, outcome)`` in completion order.

    ``outcome`` is the task's return value, or — only under the
    ``collect`` policy — a :class:`TaskFailure` for a task that
    exhausted its attempts.  Under ``fail-fast``/``retry`` exhaustion
    raises :class:`TaskError` instead (``fail-fast`` is ``retry`` with
    zero retries).  ``window`` bounds the number of outstanding
    submissions (``None`` = all at once).

    Requires a picklable module-level ``function`` when a pool is used,
    like every pool path in :mod:`repro.runtime.executor`.  With
    ``fork`` available the map always runs in a pool — even for
    ``workers=1`` — because process isolation is the point: a crash or
    a kill must take out a worker, never the supervisor.
    """
    validate_policy(policy)
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError(
            f"task_timeout must be positive, got {task_timeout}"
        )
    if backoff < 0:
        raise ValueError(f"backoff must be non-negative, got {backoff}")
    tasks = list(tasks)
    max_attempts = 1 + (retries if policy != "fail-fast" else 0)
    if not tasks:
        return
    if not fork_available():
        yield from _supervise_serial(
            function, tasks, policy, max_attempts, backoff
        )
        return
    count = effective_workers(workers, task_count=len(tasks))
    yield from _supervise_pool(
        function, tasks, count, policy, max_attempts, task_timeout,
        backoff, window,
    )


def _backoff_delay(backoff: float, attempt: int) -> float:
    """Deterministic exponential backoff after a failed ``attempt``."""
    return backoff * (2.0 ** (attempt - 1))


def _supervise_serial(function, tasks, policy, max_attempts, backoff):
    """In-process fallback: envelopes and retries, no timeouts or kills."""
    for index, task in enumerate(tasks):
        attempt = 0
        while True:
            attempt += 1
            try:
                faults_module.fire(index, attempt)
                value = function(task)
            except Exception as error:
                failure = _failure_from_exception(index, attempt, error)
                if attempt < max_attempts:
                    delay = _backoff_delay(backoff, attempt)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if policy == "collect":
                    yield index, failure
                    break
                _raise_task_error(failure)
            else:
                yield index, value
                break


class _Pending:
    """One task attempt waiting to be submitted (retry backoff aware)."""

    __slots__ = ("index", "attempt", "ready_at")

    def __init__(self, index: int, attempt: int, ready_at: float) -> None:
        self.index = index
        self.attempt = attempt
        self.ready_at = ready_at


def _terminate_pool(pool) -> None:
    """Hard-stop a pool: SIGKILL every worker, never wait on them.

    Used on abnormal exits (fail-fast raise, consumer close,
    KeyboardInterrupt) and after a break, where a graceful shutdown
    could block forever behind a hung worker.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            os.kill(process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _supervise_pool(
    function, tasks, count, policy, max_attempts, task_timeout, backoff, window
):
    global _START_CHANNEL
    context = multiprocessing.get_context("fork")
    channel = context.SimpleQueue()
    previous_channel = _START_CHANNEL
    _START_CHANNEL = channel
    pool = None
    completed = False
    pending = [_Pending(index, 1, 0.0) for index in range(len(tasks))]
    in_flight: dict = {}          # future -> (index, attempt)
    running: dict = {}            # index -> (pid, started_at)
    timed_out: set = set()        # indices killed by the watchdog (this pool)
    worker_pids: dict = {}        # pid -> Process (this pool generation)
    unattributed_restarts = 0
    capacity = window if window is not None else len(tasks) * max_attempts

    def handle_failure(index, attempt, failure, now):
        """Charge one failed attempt; returns the outcome to yield, if any."""
        if attempt < max_attempts:
            pending.append(
                _Pending(index, attempt + 1, now + _backoff_delay(backoff, attempt))
            )
            return None
        if policy == "collect":
            return failure
        _raise_task_error(failure)

    try:
        while pending or in_flight:
            now = time.monotonic()
            if pool is None:
                # (Re)open the pool after _START_CHANNEL is installed so
                # forked workers inherit the live channel.
                pool = ProcessPoolExecutor(
                    max_workers=count, mp_context=context
                )
                running.clear()
                timed_out.clear()
            # Top up: submit every due attempt the window allows.
            broken = False
            due = [
                entry for entry in pending if entry.ready_at <= now
            ][: max(capacity - len(in_flight), 0)]
            for entry in due:
                pending.remove(entry)
                try:
                    future = pool.submit(
                        _run_envelope,
                        (entry.index, entry.attempt,
                         function, tasks[entry.index]),
                    )
                except BrokenProcessPool:
                    # The pool broke between two submissions; put the
                    # attempt back and fall through to the recovery path.
                    pending.append(entry)
                    broken = True
                    break
                in_flight[future] = (entry.index, entry.attempt)
            worker_pids.update(getattr(pool, "_processes", None) or {})
            if not broken and not in_flight:
                # Everything pending is backing off; sleep to the soonest.
                time.sleep(
                    max(min(e.ready_at for e in pending) - now, 0.0) + 1e-4
                )
                continue
            if not broken:
                done, _ = wait(
                    set(in_flight), timeout=_TICK, return_when=FIRST_COMPLETED
                )
                _drain_start_markers(channel, in_flight, running)
                now = time.monotonic()
                for future in done:
                    index, attempt = in_flight.pop(future)
                    error = future.exception()
                    if not isinstance(error, BrokenProcessPool):
                        # Keep the running record of broken futures: the
                        # crash classification below needs to know which
                        # worker was running which task.
                        running.pop(index, None)
                    if error is None:
                        status, value = future.result()
                        if status == "ok":
                            yield index, value
                            continue
                        outcome = handle_failure(index, attempt, value, now)
                        if outcome is not None:
                            yield index, outcome
                    elif isinstance(error, BrokenProcessPool):
                        # Classified below with the rest of the in-flight
                        # set.
                        broken = True
                        in_flight[future] = (index, attempt)
                    elif isinstance(error, (KeyboardInterrupt, SystemExit)):
                        raise error
                    else:
                        # The envelope caught task exceptions, so this is
                        # a transport failure (e.g. an unpicklable
                        # result): charge the attempt with the executor's
                        # exception.
                        outcome = handle_failure(
                            index, attempt,
                            _failure_from_exception(index, attempt, error),
                            now,
                        )
                        if outcome is not None:
                            yield index, outcome
            if broken or _pool_is_broken(pool):
                # Harvest results that completed before the break — a
                # finished task must never be re-run.
                for future in [f for f in in_flight if f.done()]:
                    if future.exception() is None:
                        index, attempt = in_flight.pop(future)
                        running.pop(index, None)
                        status, value = future.result()
                        if status == "ok":
                            yield index, value
                        else:
                            outcome = handle_failure(
                                index, attempt, value, time.monotonic()
                            )
                            if outcome is not None:
                                yield index, outcome
                _drain_start_markers(channel, in_flight, running)
                attributed = _classify_break(
                    in_flight, running, timed_out, worker_pids,
                    pending, handle_failure, time.monotonic(),
                )
                for index, outcome in attributed.pop("outcomes"):
                    yield index, outcome
                if not attributed["charged"]:
                    unattributed_restarts += 1
                    if unattributed_restarts > _MAX_UNATTRIBUTED_RESTARTS:
                        raise BrokenProcessPool(
                            "process pool kept breaking without any "
                            "attributable task; giving up after "
                            f"{unattributed_restarts} restarts"
                        )
                _terminate_pool(pool)
                pool = None
                in_flight.clear()
                worker_pids = {}
                continue
            if task_timeout is not None:
                _enforce_deadlines(running, timed_out, task_timeout, now)
        completed = True
    finally:
        if pool is not None:
            if completed:
                pool.shutdown(wait=True)
            else:
                _terminate_pool(pool)
        _START_CHANNEL = previous_channel
        channel.close()


def _pool_is_broken(pool) -> bool:
    return bool(getattr(pool, "_broken", False))


def _drain_start_markers(channel, in_flight, running) -> None:
    """Record which worker is running which task attempt.

    Markers for attempts that are no longer in flight (their future
    already completed) are dropped — a stale marker must never give the
    watchdog a pid to kill for a task that already finished.
    """
    live = {
        (index, attempt) for index, attempt in in_flight.values()
    }
    while not channel.empty():
        pid, index, attempt, started_at = channel.get()
        if (index, attempt) in live:
            running[index] = (pid, started_at)


def _enforce_deadlines(running, timed_out, task_timeout, now) -> None:
    """Kill the worker of any running task past its deadline.

    The SIGKILL breaks the pool; the recovery path charges the victim a
    ``timeout`` attempt and re-dispatches everything else.
    """
    for index, (pid, started_at) in list(running.items()):
        if index in timed_out or now - started_at <= task_timeout:
            continue
        timed_out.add(index)
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass


def _classify_break(
    in_flight, running, timed_out, worker_pids, pending, handle_failure, now
):
    """Attribute a broken pool's in-flight tasks and schedule their future.

    Returns ``{"outcomes": [(index, TaskFailure), ...], "charged": bool}``
    — outcomes to yield (``collect`` exhaustion) and whether any task was
    charged an attempt (the progress guarantee for the restart loop).

    Classification, per in-flight ``(index, attempt)``:

    * watchdog victims (``timed_out``) — charged a ``timeout`` attempt;
    * tasks whose recorded worker died *abnormally* (an exit status that
      is neither a clean 0 nor the executor's own SIGTERM teardown of
      bystanders) — charged a ``worker-crash`` attempt;
    * everything else (queued tasks, bystanders whose worker the
      executor tore down) — re-queued with no attempt charged.

    If nothing is attributable (stdlib teardown details vary), every
    *running* task is charged a crash attempt instead: over-charging a
    bystander costs one deterministic re-run, while under-charging
    could restart forever.
    """
    outcomes = []
    charged = False
    deferred = []
    for future, (index, attempt) in list(in_flight.items()):
        if index in timed_out:
            charged = True
            failure = TaskFailure(
                index=index,
                kind=FAILURE_TIMEOUT,
                error_type="TimeoutError",
                message=(
                    f"task exceeded its timeout; its worker was killed "
                    f"and the pool restarted"
                ),
                attempts=attempt,
            )
            outcome = handle_failure(index, attempt, failure, now)
            if outcome is not None:
                outcomes.append((index, outcome))
        elif _worker_died_abnormally(running.get(index), worker_pids):
            charged = True
            pid = running[index][0]
            failure = _crash_failure(index, attempt, pid, worker_pids)
            outcome = handle_failure(index, attempt, failure, now)
            if outcome is not None:
                outcomes.append((index, outcome))
        else:
            deferred.append((index, attempt))
    if not charged and deferred:
        # Fall back: blame every task that had actually started.
        still_deferred = []
        for index, attempt in deferred:
            if index in running:
                charged = True
                pid = running[index][0]
                failure = _crash_failure(index, attempt, pid, worker_pids)
                outcome = handle_failure(index, attempt, failure, now)
                if outcome is not None:
                    outcomes.append((index, outcome))
            else:
                still_deferred.append((index, attempt))
        deferred = still_deferred
    for index, attempt in deferred:
        pending.append(_Pending(index, attempt, now))
    return {"outcomes": outcomes, "charged": charged}


def _reap_exitcode(process, timeout: float = 0.5):
    """The worker's exit status, waiting briefly for the OS to reap it.

    A ``BrokenProcessPool`` can surface before the dead child is
    waitable, in which case a bare ``exitcode`` read (a non-blocking
    ``waitpid``) still reports ``None``; the short join closes that race
    so crash classification sees the real exit status.
    """
    if process is None:
        return None
    process.join(timeout=timeout)
    return process.exitcode


def _worker_died_abnormally(record, worker_pids) -> bool:
    if record is None:
        return False
    pid, _ = record
    process = worker_pids.get(pid)
    if process is None:
        return False
    exitcode = _reap_exitcode(process)
    return exitcode is not None and exitcode not in (0, -signal.SIGTERM)


def _crash_failure(index, attempt, pid, worker_pids) -> TaskFailure:
    exitcode = _reap_exitcode(worker_pids.get(pid))
    return TaskFailure(
        index=index,
        kind=FAILURE_CRASH,
        error_type="BrokenProcessPool",
        message=(
            f"worker pid {pid} died while running this task "
            f"(exit status {exitcode}); the pool was restarted and "
            f"unfinished tasks re-dispatched"
        ),
        attempts=attempt,
    )


# ----------------------------------------------------------------------
# Ordered wrappers (the shapes executor.map_tasks/imap_tasks need).
# ----------------------------------------------------------------------

def supervised_map(
    function,
    tasks,
    workers: int = 1,
    policy: str = "retry",
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff: float = 0.0,
    on_result=None,
) -> list:
    """:func:`supervise`, reassembled into task order.

    Returns one slot per task: the value, or a :class:`TaskFailure`
    under ``collect``.  ``on_result(index, value)`` fires in task order
    for successful tasks only — failures are never handed to result
    consumers (the experiment store must not persist them).
    """
    tasks = list(tasks)
    total = len(tasks)
    results = [None] * total
    filled = [False] * total
    fire_next = 0
    for index, outcome in supervise(
        function, tasks, workers=workers, policy=policy, retries=retries,
        task_timeout=task_timeout, backoff=backoff,
    ):
        results[index] = outcome
        filled[index] = True
        while fire_next < total and filled[fire_next]:
            value = results[fire_next]
            if on_result is not None and not isinstance(value, TaskFailure):
                on_result(fire_next, value)
            fire_next += 1
    return results


def supervised_imap(
    function,
    tasks,
    workers: int = 1,
    policy: str = "retry",
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff: float = 0.0,
    window: Optional[int] = None,
):
    """:func:`supervise` as an in-order generator (bounded submissions).

    ``window`` defaults to ``2 * workers`` like
    :func:`~repro.runtime.executor.imap_tasks`; note that a long-retrying
    early task can buffer later results beyond the window until it
    resolves — ordering is preserved, backpressure is best-effort.
    """
    tasks = list(tasks)
    if window is None:
        window = 2 * effective_workers(workers, task_count=len(tasks))
    window = max(int(window), 1)
    buffered: dict = {}
    next_index = 0
    for index, outcome in supervise(
        function, tasks, workers=workers, policy=policy, retries=retries,
        task_timeout=task_timeout, backoff=backoff, window=window,
    ):
        buffered[index] = outcome
        while next_index in buffered:
            yield buffered.pop(next_index)
            next_index += 1
