"""Supervised task execution: failure envelopes, retries, timeouts, recovery.

The plain :func:`~repro.runtime.executor.map_tasks` pool propagates the
first raising task pool-wide, and a killed or hung worker aborts the
whole sweep — acceptable for an interactive reproduction, fatal for the
edge/IoT deployments DeepN-JPEG targets, where preemption, OOM kills and
transient failures are the norm.  This module supervises the map
instead:

* **Per-task error envelopes.**  Each task runs inside
  :func:`_run_envelope`; an exception becomes a :class:`TaskFailure`
  carrying the task index, error type/message, formatted traceback, the
  attempt count and (when picklable) the original exception — one
  failing cell never poisons its siblings.
* **Bounded retries with deterministic backoff.**  A failed attempt is
  re-queued up to ``retries`` times, delayed by
  ``backoff * 2**(attempt-1)`` seconds.  A retried task re-runs with
  exactly the same task payload — including its per-task
  :class:`~numpy.random.SeedSequence`, which :func:`spawn_seeds` assigns
  by task index — so a recovered sweep is bit-identical to a fault-free
  one.
* **Per-task timeouts with a hung-worker watchdog.**  Workers announce
  each task they start over a fork-inherited channel; the parent tracks
  deadlines and ``SIGKILL``\\ s the worker running a task past its
  ``task_timeout``.  The kill breaks the pool, which the recovery path
  below restarts; the timed-out task is charged one attempt.
* **Crash recovery.**  A worker that dies mid-task (``os._exit``, OOM
  kill, segfault) breaks the pool with
  :class:`~concurrent.futures.process.BrokenProcessPool`.  The
  supervisor classifies the in-flight tasks — dead worker's task:
  charged a ``worker-crash`` attempt; watchdog victims: charged a
  ``timeout`` attempt; bystanders: re-queued for free — then restarts
  the pool and re-dispatches only the unfinished tasks.  Completed
  results are never recomputed (and cells persisted through
  :func:`~repro.runtime.executor.map_tasks_resumable` survive even a
  supervisor crash).

Three error policies decide what happens when a task exhausts its
attempts: ``fail-fast`` (no retries; raise :class:`TaskError`
immediately), ``retry`` (retry, then raise), ``collect`` (retry, then
yield the :class:`TaskFailure` in the task's result slot so the sweep
finishes every healthy task).

The supervised path requires the ``fork`` start method for its worker
channel and watchdog; without it, execution degrades to an in-process
serial loop that still provides envelopes and retries (but cannot
enforce timeouts or survive crashes — there is no second process to
kill).  Deterministic faults for testing all of this live in
:mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Optional

from repro.runtime import faults as faults_module
from repro.runtime.executor import effective_workers, fork_available

#: The error policies a supervised map understands.
POLICIES = ("fail-fast", "retry", "collect")

#: ``TaskFailure.kind`` values.
FAILURE_EXCEPTION = "exception"
FAILURE_TIMEOUT = "timeout"
FAILURE_CRASH = "worker-crash"

#: Supervisor poll interval (seconds): how often backend events are
#: drained and watchdog deadlines checked while attempts are in flight.
_TICK = 0.05


@dataclass(frozen=True)
class TaskFailure:
    """The error envelope of one task that exhausted its attempts.

    ``index`` is the task's position in the supervised map (callers that
    interleave cached results — :func:`map_tasks_resumable` — rewrite it
    to the global position).  ``error`` holds the original exception
    when it survived pickling, else ``None``; ``traceback`` is always a
    formatted string (empty for crashes and timeouts, which have no
    Python traceback to capture).
    """

    index: int
    kind: str
    error_type: str
    message: str
    attempts: int
    traceback: str = ""
    error: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )

    def describe(self) -> str:
        return (
            f"task {self.index} failed after {self.attempts} attempt(s) "
            f"[{self.kind}]: {self.error_type}: {self.message}"
        )

    def to_json(self) -> dict:
        """A JSON-able envelope (what crosses the wire and the CLI emits).

        The live exception object does not survive JSON — only its
        type/message/traceback strings do — so ``from_json`` always
        reconstructs with ``error=None``; everything else round-trips
        exactly.
        """
        return {
            "index": self.index,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "traceback": self.traceback,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TaskFailure":
        return cls(
            index=int(payload["index"]),
            kind=str(payload["kind"]),
            error_type=str(payload["error_type"]),
            message=str(payload["message"]),
            attempts=int(payload["attempts"]),
            traceback=str(payload.get("traceback", "")),
        )


class TaskError(RuntimeError):
    """Raised under ``fail-fast``/``retry`` when a task's attempts run out.

    Carries the :class:`TaskFailure` envelope as ``failure``; the
    original exception (when available) is chained as ``__cause__``.
    """

    def __init__(self, failure: TaskFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure

    def to_json(self) -> dict:
        return {"failure": self.failure.to_json()}

    @classmethod
    def from_json(cls, payload: dict) -> "TaskError":
        return cls(TaskFailure.from_json(payload["failure"]))


def _raise_task_error(failure: TaskFailure) -> None:
    raise TaskError(failure) from failure.error


def validate_policy(policy: str) -> str:
    if policy not in POLICIES:
        raise ValueError(
            f"unknown error policy {policy!r}; valid policies: {POLICIES}"
        )
    return policy


def _failure_from_exception(
    index: int, attempt: int, error: BaseException, kind: str = FAILURE_EXCEPTION
) -> TaskFailure:
    keep: Optional[BaseException] = error
    try:  # Only ship exceptions that survive a pickle round-trip.
        pickle.loads(pickle.dumps(error))
    except Exception:
        keep = None
    return TaskFailure(
        index=index,
        kind=kind,
        error_type=type(error).__name__,
        message=str(error),
        attempts=attempt,
        traceback="".join(
            traceback_module.format_exception(
                type(error), error, error.__traceback__
            )
        ),
        error=keep,
    )


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------

#: Fork-inherited start-marker channel.  The parent installs a queue here
#: before opening (or reopening) a pool; every worker announces
#: ``(pid, index, attempt, monotonic start time)`` before running a task,
#: which is what gives the watchdog per-task deadlines and the crash
#: recovery exact attribution.  Linux ``CLOCK_MONOTONIC`` is shared
#: across processes, so worker timestamps compare directly with the
#: parent's clock.
_START_CHANNEL = None


def _run_envelope(payload):
    """Module-level pool task: one supervised attempt of one task."""
    index, attempt, function, task = payload
    channel = _START_CHANNEL
    if channel is not None:
        channel.put((os.getpid(), index, attempt, time.monotonic()))
    try:
        faults_module.fire(index, attempt)
        value = function(task)
    except Exception as error:
        return ("failure", _failure_from_exception(index, attempt, error))
    return ("ok", value)


# ----------------------------------------------------------------------
# Supervisor.
# ----------------------------------------------------------------------

def supervise(
    function,
    tasks,
    workers: int = 1,
    policy: str = "retry",
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff: float = 0.0,
    window: Optional[int] = None,
    backend: Optional[str] = None,
):
    """Supervised map: yields ``(index, outcome)`` in completion order.

    ``outcome`` is the task's return value, or — only under the
    ``collect`` policy — a :class:`TaskFailure` for a task that
    exhausted its attempts.  Under ``fail-fast``/``retry`` exhaustion
    raises :class:`TaskError` instead (``fail-fast`` is ``retry`` with
    zero retries).  ``window`` bounds the number of outstanding
    submissions (``None`` = all at once).

    ``backend`` selects the transport
    (:mod:`repro.runtime.backends`): ``None`` defers to the
    ``REPRO_BACKEND`` environment variable, and auto is the historical
    behaviour — a forked pool when ``fork`` is available (even for
    ``workers=1``, because process isolation is the point: a crash or a
    kill must take out a worker, never the supervisor), else the
    in-process serial runner (envelopes and retries, but no timeouts or
    crash recovery: there is no second process to kill).  The retry,
    timeout, crash-classification and policy semantics here are
    backend-independent; only event *production* differs per transport.

    Requires a picklable module-level ``function`` on any multi-process
    backend, like every pool path in :mod:`repro.runtime.executor`.
    """
    validate_policy(policy)
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError(
            f"task_timeout must be positive, got {task_timeout}"
        )
    if backoff < 0:
        raise ValueError(f"backoff must be non-negative, got {backoff}")
    # A REPRO_FAULTS typo must abort here — before any task runs — not
    # mid-sweep inside a worker.
    faults_module.validate_active_faults()
    tasks = list(tasks)
    max_attempts = 1 + (retries if policy != "fail-fast" else 0)
    if not tasks:
        return
    from repro.runtime import backends as backends_module

    resolved = backends_module.resolve_backend_name(backend)
    if resolved is None:
        resolved = "forked"
    if resolved in ("forked", "persistent") and not fork_available():
        resolved = "serial"
    impl = backends_module.get_backend(resolved)
    count = effective_workers(workers, task_count=len(tasks))
    yield from _supervise_backend(
        impl, function, tasks, count, policy, max_attempts, task_timeout,
        backoff, window,
    )


def _backoff_delay(backoff: float, attempt: int) -> float:
    """Deterministic exponential backoff after a failed ``attempt``."""
    return backoff * (2.0 ** (attempt - 1))


class _Pending:
    """One task attempt waiting to be submitted (retry backoff aware)."""

    __slots__ = ("index", "attempt", "ready_at")

    def __init__(self, index: int, attempt: int, ready_at: float) -> None:
        self.index = index
        self.attempt = attempt
        self.ready_at = ready_at


def _supervise_backend(
    impl, function, tasks, count, policy, max_attempts, task_timeout,
    backoff, window,
):
    """The backend-independent supervisor loop.

    Drives one :class:`~repro.runtime.backends.ExecutorBackend` through
    ``open``/``submit``/``poll``/``close``, owning everything that must
    behave identically across transports: the pending queue with retry
    backoff, the submission window, attempt accounting per event kind
    (``ok`` yields, ``failure`` charges an attempt, ``lost`` re-queues
    free), watchdog deadlines via ``running()``/``kill()``, and the
    fail-fast | retry | collect policies.

    Stale events — a duplicate or late delivery for an attempt that is
    no longer in flight (a reassigned socket lease completing twice) —
    are dropped here as a second line of defence behind the backend's
    own dedup; idempotent task payloads make the drop safe.
    """
    pending = [_Pending(index, 1, 0.0) for index in range(len(tasks))]
    in_flight: dict = {}   # index -> attempt
    timed_out: set = set()
    capacity = window if window is not None else len(tasks) * max_attempts

    def handle_failure(index, attempt, failure, now):
        """Charge one failed attempt; returns the outcome to yield, if any."""
        if attempt < max_attempts:
            pending.append(
                _Pending(index, attempt + 1, now + _backoff_delay(backoff, attempt))
            )
            return None
        if policy == "collect":
            return failure
        _raise_task_error(failure)

    completed = False
    impl.open(function, tasks, count)
    try:
        while pending or in_flight:
            now = time.monotonic()
            due = [
                entry for entry in pending if entry.ready_at <= now
            ][: max(capacity - len(in_flight), 0)]
            for entry in due:
                pending.remove(entry)
                in_flight[entry.index] = entry.attempt
                impl.submit(entry.index, entry.attempt)
            if not in_flight:
                # Everything pending is backing off; sleep to the soonest.
                time.sleep(
                    max(min(e.ready_at for e in pending) - now, 0.0) + 1e-4
                )
                continue
            for event in impl.poll(_TICK):
                if in_flight.get(event.index) != event.attempt:
                    continue  # stale: this attempt already resolved
                now = time.monotonic()
                del in_flight[event.index]
                timed_out.discard(event.index)
                if event.kind == "ok":
                    yield event.index, event.value
                elif event.kind == "failure":
                    outcome = handle_failure(
                        event.index, event.attempt, event.failure, now
                    )
                    if outcome is not None:
                        yield event.index, outcome
                else:  # "lost": never completed, through no fault of the task
                    pending.append(_Pending(event.index, event.attempt, now))
            if task_timeout is not None:
                _enforce_deadlines(
                    impl.running(), timed_out, task_timeout,
                    time.monotonic(), impl.kill,
                )
        completed = True
    finally:
        impl.close(graceful=completed)


def _enforce_deadlines(running, timed_out, task_timeout, now, kill) -> None:
    """Kill any running task past its deadline (at most once per attempt).

    ``running`` is the backend's ``{index: started_at}`` view and
    ``kill`` its kill method; how a kill is effected is the backend's
    business (SIGKILL for pool workers, lease revocation + disconnect
    for socket workers).  The backend then emits a ``timeout`` failure
    event, which charges the victim one attempt; ``timed_out`` stops
    repeat kills while that event is still in flight.
    """
    for index, started_at in list(running.items()):
        if index in timed_out or now - started_at <= task_timeout:
            continue
        if kill(index):
            timed_out.add(index)


# ----------------------------------------------------------------------
# Ordered wrappers (the shapes executor.map_tasks/imap_tasks need).
# ----------------------------------------------------------------------

def supervised_map(
    function,
    tasks,
    workers: int = 1,
    policy: str = "retry",
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff: float = 0.0,
    on_result=None,
    backend: Optional[str] = None,
) -> list:
    """:func:`supervise`, reassembled into task order.

    Returns one slot per task: the value, or a :class:`TaskFailure`
    under ``collect``.  ``on_result(index, value)`` fires in task order
    for successful tasks only — failures are never handed to result
    consumers (the experiment store must not persist them).
    """
    tasks = list(tasks)
    total = len(tasks)
    results = [None] * total
    filled = [False] * total
    fire_next = 0
    for index, outcome in supervise(
        function, tasks, workers=workers, policy=policy, retries=retries,
        task_timeout=task_timeout, backoff=backoff, backend=backend,
    ):
        results[index] = outcome
        filled[index] = True
        while fire_next < total and filled[fire_next]:
            value = results[fire_next]
            if on_result is not None and not isinstance(value, TaskFailure):
                on_result(fire_next, value)
            fire_next += 1
    return results


def supervised_imap(
    function,
    tasks,
    workers: int = 1,
    policy: str = "retry",
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff: float = 0.0,
    window: Optional[int] = None,
    backend: Optional[str] = None,
):
    """:func:`supervise` as an in-order generator (bounded submissions).

    ``window`` defaults to ``2 * workers`` like
    :func:`~repro.runtime.executor.imap_tasks`; note that a long-retrying
    early task can buffer later results beyond the window until it
    resolves — ordering is preserved, backpressure is best-effort.
    """
    tasks = list(tasks)
    if window is None:
        window = 2 * effective_workers(workers, task_count=len(tasks))
    window = max(int(window), 1)
    buffered: dict = {}
    next_index = 0
    for index, outcome in supervise(
        function, tasks, workers=workers, policy=policy, retries=retries,
        task_timeout=task_timeout, backoff=backoff, window=window,
        backend=backend,
    ):
        buffered[index] = outcome
        while next_index in buffered:
            yield buffered.pop(next_index)
            next_index += 1
