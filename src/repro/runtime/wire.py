"""Length-prefixed JSON/binary wire protocol for the socket-worker tier.

Every message between the coordinator (:mod:`repro.runtime.backends`)
and a worker daemon (:mod:`repro.runtime.worker`) is one **frame**::

    +----------------+----------------+----------------+--------------+
    | magic (2B)     | header len (4B)| blob len (4B)  | header, blob |
    +----------------+----------------+----------------+--------------+

* ``magic`` — ``b"RW"`` (Repro Wire), so a stray connection speaking a
  different protocol fails immediately with :class:`WireError` instead
  of a confusing JSON decode error deep in the coordinator.
* ``header`` — UTF-8 JSON object carrying the message ``type`` and its
  small, structured fields (lease ids, task indices, heartbeat stamps,
  :meth:`~repro.runtime.supervision.TaskFailure.to_json` envelopes).
  Everything a human might need to read off a packet capture is here.
* ``blob`` — optional opaque binary payload (pickled task payloads and
  task results), because grid-cell results are arbitrary Python values
  the JSON header cannot carry.  A missing blob has length 0.

The coordinator and workers are the **same codebase on every host** (a
worker is ``python -m repro.worker``), so pickle is a transport detail
between trusted peers, not a public attack surface; the structured
routing data rides in JSON precisely so the protocol stays inspectable
and versionable.  :data:`PROTOCOL_VERSION` is carried in every ``hello``
and checked by the coordinator — a version skew refuses the worker at
handshake instead of corrupting a sweep halfway through.

Message vocabulary (``type`` field):

=============  =======================  =================================
type           direction                fields
=============  =======================  =================================
``hello``      worker -> coordinator    ``worker_id``, ``pid``, ``version``
``welcome``    coordinator -> worker    ``heartbeat_interval``
``reject``     coordinator -> worker    ``reason``
``heartbeat``  worker -> coordinator    ``worker_id``
``lease``      coordinator -> worker    ``lease_id``, ``index``,
                                        ``attempt``, ``task_label``
                                        (+ pickled payload blob)
``result``     worker -> coordinator    ``lease_id``, ``index``,
                                        ``attempt``, ``status``
                                        (``ok`` | ``failure``; ok carries
                                        a pickled value blob, failure a
                                        JSON envelope)
``shutdown``   coordinator -> worker    ``reason``
=============  =======================  =================================
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
from typing import Optional

import numpy as np

#: Frame magic: two bytes so a foreign client fails fast at frame 1.
MAGIC = b"RW"

#: Bump on any incompatible message-vocabulary change; checked at hello.
#: Version 2: payload blobs gained a typed encoding — a bare ndarray
#: ships as raw array bytes with dtype/shape in the JSON header
#: (``payload`` field) instead of inside an opaque pickle.
PROTOCOL_VERSION = 2

#: ``!`` = network byte order; 2s magic + header length + blob length.
_PREFIX = struct.Struct("!2sII")

#: Upper bound on a single frame's header or blob (256 MiB): a corrupt
#: or hostile length prefix must never make the coordinator attempt a
#: multi-gigabyte allocation.
MAX_PART_BYTES = 256 * 1024 * 1024


class WireError(ConnectionError):
    """A malformed frame, a protocol violation, or a closed peer."""


def encode_frame(header: dict, blob: bytes = b"") -> bytes:
    """Serialize one frame to bytes (used by tests and the send path)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_PART_BYTES or len(blob) > MAX_PART_BYTES:
        raise WireError(
            f"frame part exceeds {MAX_PART_BYTES} bytes "
            f"(header {len(header_bytes)}, blob {len(blob)})"
        )
    return _PREFIX.pack(MAGIC, len(header_bytes), len(blob)) + header_bytes + blob


def send_frame(sock: socket.socket, header: dict, blob: bytes = b"") -> None:
    """Send one frame; raises :class:`WireError` on a closed peer."""
    try:
        sock.sendall(encode_frame(header, blob))
    except OSError as error:
        raise WireError(f"send failed: {error}") from error


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`WireError` on EOF."""
    parts = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as error:
            raise WireError(f"recv failed: {error}") from error
        if not chunk:
            raise WireError("peer closed the connection mid-frame")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def recv_frame(sock: socket.socket) -> "tuple[dict, bytes]":
    """Receive one ``(header, blob)`` frame.

    Raises :class:`WireError` on EOF, bad magic, oversized lengths or a
    header that is not a JSON object — the caller treats any of these as
    a dead peer and drops the connection.
    """
    prefix = _recv_exact(sock, _PREFIX.size)
    magic, header_len, blob_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if header_len > MAX_PART_BYTES or blob_len > MAX_PART_BYTES:
        raise WireError(
            f"frame lengths out of range (header {header_len}, "
            f"blob {blob_len})"
        )
    try:
        header = json.loads(_recv_exact(sock, header_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"frame header is not valid JSON: {error}") from error
    if not isinstance(header, dict) or "type" not in header:
        raise WireError(f"frame header must be an object with a 'type': {header!r}")
    blob = _recv_exact(sock, blob_len) if blob_len else b""
    return header, blob


def dump_payload(value) -> "tuple[bytes, Optional[dict]]":
    """Serialize a task payload or result for the blob slot.

    Returns ``(blob, meta)``.  A bare NumPy array ships as its raw
    C-order bytes with a JSON-able ``meta`` describing dtype and shape
    (``{"enc": "ndarray", ...}``) — the dominant result shape of the
    codec sweeps, now inspectable on the wire and never pickled.
    Everything else pickles as before with ``meta`` ``None``.
    """
    if (
        isinstance(value, np.ndarray)
        and value.dtype != object
        and not value.dtype.hasobject
    ):
        meta = {
            "enc": "ndarray",
            "dtype": value.dtype.str,
            "shape": list(value.shape),
        }
        return np.ascontiguousarray(value).tobytes(), meta
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), None


def load_payload(blob: bytes, meta: Optional[dict] = None):
    """Invert :func:`dump_payload` given the blob and its header meta."""
    if meta is not None:
        if meta.get("enc") != "ndarray":
            raise WireError(f"unknown payload encoding {meta.get('enc')!r}")
        array = np.frombuffer(blob, dtype=np.dtype(meta["dtype"]))
        return array.reshape(tuple(meta["shape"])).copy()
    return pickle.loads(blob)


# ----------------------------------------------------------------------
# Message constructors: one place defining each header's shape.
# ----------------------------------------------------------------------

def hello(worker_id: str, pid: int) -> dict:
    return {
        "type": "hello",
        "worker_id": worker_id,
        "pid": pid,
        "version": PROTOCOL_VERSION,
    }


def welcome(heartbeat_interval: float) -> dict:
    return {"type": "welcome", "heartbeat_interval": heartbeat_interval}


def reject(reason: str) -> dict:
    return {"type": "reject", "reason": reason}


def heartbeat(worker_id: str) -> dict:
    return {"type": "heartbeat", "worker_id": worker_id}


def lease(
    lease_id: int, index: int, attempt: int, task_label: str = "",
    payload: Optional[dict] = None,
) -> dict:
    header = {
        "type": "lease",
        "lease_id": lease_id,
        "index": index,
        "attempt": attempt,
        "task_label": task_label,
    }
    if payload is not None:
        header["payload"] = payload
    return header


def result_ok(
    lease_id: int, index: int, attempt: int, payload: Optional[dict] = None
) -> dict:
    header = {
        "type": "result",
        "lease_id": lease_id,
        "index": index,
        "attempt": attempt,
        "status": "ok",
    }
    if payload is not None:
        header["payload"] = payload
    return header


def result_failure(
    lease_id: int, index: int, attempt: int, envelope: dict
) -> dict:
    return {
        "type": "result",
        "lease_id": lease_id,
        "index": index,
        "attempt": attempt,
        "status": "failure",
        "failure": envelope,
    }


def shutdown(reason: str = "coordinator shutdown") -> dict:
    return {"type": "shutdown", "reason": reason}


def parse_address(text: str) -> "tuple[str, int]":
    """Parse ``host:port`` (the ``--connect``/``--bind`` argument shape)."""
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ValueError(
            f"address {text!r} must be host:port (e.g. 127.0.0.1:7463)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"address {text!r} has a non-numeric port") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"address {text!r} port out of range")
    return host, port


def format_address(address: "tuple[str, int]") -> str:
    return f"{address[0]}:{address[1]}"


def connect(
    address: "tuple[str, int]", timeout: Optional[float] = None
) -> socket.socket:
    """Open a TCP connection with ``TCP_NODELAY`` (small frames, low RTT)."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock
