"""The socket worker daemon: ``python -m repro.worker --connect host:port``.

One daemon is one remote execution slot for the ``socket`` backend
(:class:`repro.runtime.backends.SocketBackend`).  Its life is a loop:

1. **Connect + handshake.**  Open a TCP connection to the coordinator,
   send ``hello`` (worker id, pid, protocol version), expect
   ``welcome`` (which carries the heartbeat interval).  A ``reject``
   — protocol version skew — is fatal: crashing loudly at handshake
   beats corrupting a sweep halfway through.
2. **Heartbeat.**  A daemon thread sends ``heartbeat`` frames every
   interval, *including while a task is computing* — a busy worker is
   not a dead worker, and the coordinator's lease deadlines key off
   these.
3. **Serve leases.**  Each ``lease`` frame carries a pickled
   ``(index, attempt, function, task)`` payload.  The task runs through
   the exact same execution envelope as every other backend
   (:func:`repro.runtime.supervision._run_envelope` semantics: compute
   faults fire, exceptions become :class:`TaskFailure` envelopes), so
   retries/timeouts/policies behave identically over the wire.  Results
   go back as ``result`` frames — ``ok`` with a pickled value blob, or
   ``failure`` with the JSON envelope.
4. **Reconnect with bounded backoff.**  A dropped connection (a
   coordinator restart, a partition, a revoked lease closing the link)
   is not fatal: the daemon reconnects with exponential backoff.  A
   result computed while disconnected is delivered after reconnecting —
   the coordinator drops it as stale if the lease was reassigned
   meanwhile (idempotent cells make either outcome correct).
   ``--max-idle`` bounds how long the daemon keeps retrying against a
   coordinator that never comes back.

Network fault injection (the chaos suite's partition/dup scenarios) is
driven by the same :data:`~repro.runtime.faults.ENV_VAR` spec string as
compute faults, via :func:`repro.runtime.faults.network_faults`:
``disconnect`` drops the link before computing (compute while
partitioned, reconnect, deliver), ``delay`` sleeps before delivery,
``dup-result`` sends the result frame twice, and ``hb-loss`` suppresses
heartbeats during the task so the lease expires and is reassigned.

Experiment tasks resolve through the experiment registry; importing
:mod:`repro.experiments` (which registers every figure) happens
implicitly when the first task payload unpickles, so a cold daemon
needs no warm-up step.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket as socket_module
import threading
import time
from typing import Optional

from repro.runtime import faults as faults_module
from repro.runtime import wire
from repro.runtime.supervision import _failure_from_exception

logger = logging.getLogger("repro.worker")

#: Reconnect backoff: deterministic doubling, bounded.
RECONNECT_BASE = 0.2
RECONNECT_MAX = 5.0


class _Heartbeat:
    """Background heartbeat sender with a suppression switch (hb-loss)."""

    def __init__(self, sock, worker_id: str, interval: float) -> None:
        self._sock = sock
        self._worker_id = worker_id
        self._interval = max(float(interval), 0.05)
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._suppress_until = 0.0
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-worker-heartbeat"
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def suppress(self, seconds: float) -> None:
        self._suppress_until = time.monotonic() + seconds

    def send(self, header: dict, blob: bytes = b"") -> None:
        """Send any frame on the shared socket (serialised with beats)."""
        with self._send_lock:
            wire.send_frame(self._sock, header, blob)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if time.monotonic() < self._suppress_until:
                continue
            try:
                self.send(wire.heartbeat(self._worker_id))
            except wire.WireError:
                return  # the serve loop will notice the dead socket


def _run_lease(index: int, attempt: int, function, task):
    """One attempt, same envelope semantics as every local backend."""
    try:
        faults_module.fire(index, attempt)
        value = function(task)
    except Exception as error:
        return ("failure", _failure_from_exception(index, attempt, error))
    return ("ok", value)


def _fault_seconds(specs, kind: str) -> Optional[float]:
    for spec in specs:
        if spec.kind == kind:
            return spec.seconds
    return None


def _has_fault(specs, kind: str) -> bool:
    return any(spec.kind == kind for spec in specs)


class Worker:
    """The daemon's connect/serve/reconnect state machine."""

    def __init__(
        self,
        address: "tuple[str, int]",
        worker_id: Optional[str] = None,
        max_idle: Optional[float] = None,
    ) -> None:
        self.address = address
        self.worker_id = worker_id or f"{socket_module.gethostname()}-{os.getpid()}"
        self.max_idle = max_idle
        #: A result computed while partitioned, awaiting redelivery:
        #: ``(header, blob)`` or ``None``.
        self._undelivered = None
        #: Network faults this process already fired.  A forfeited lease
        #: is redelivered with the *same* ``(index, attempt)``, so a
        #: repeatable network fault would re-fire on every redelivery
        #: and cascade to the delivery cap; firing once per worker
        #: process keeps the scenario deterministic and bounded (with
        #: N workers a lease can bounce at most N times).
        self._fired_network: set = set()
        self._shutdown = False
        self.leases_served = 0

    def run(self) -> int:
        """Serve until the coordinator says shutdown (0) or gives up (1)."""
        # Surface a REPRO_FAULTS typo at daemon start, not mid-lease.
        faults_module.validate_active_faults()
        attempt = 0
        last_progress = time.monotonic()
        while not self._shutdown:
            try:
                sock = wire.connect(self.address, timeout=5.0)
            except OSError as error:
                attempt += 1
                delay = min(
                    RECONNECT_BASE * (2.0 ** (attempt - 1)), RECONNECT_MAX
                )
                if (
                    self.max_idle is not None
                    and time.monotonic() - last_progress > self.max_idle
                ):
                    logger.error(
                        "no coordinator at %s for %.1fs; giving up (%s)",
                        wire.format_address(self.address), self.max_idle,
                        error,
                    )
                    return 1
                logger.info(
                    "coordinator unreachable (%s); retrying in %.2fs",
                    error, delay,
                )
                time.sleep(delay)
                continue
            attempt = 0
            try:
                served = self._serve(sock)
            finally:
                sock.close()
            if served:
                last_progress = time.monotonic()
        return 0

    def _serve(self, sock) -> bool:
        """One connection's lifetime; returns whether progress was made."""
        sock.settimeout(10.0)
        try:
            wire.send_frame(
                sock, wire.hello(self.worker_id, os.getpid())
            )
            header, _ = wire.recv_frame(sock)
        except wire.WireError as error:
            logger.info("handshake failed: %s", error)
            return False
        if header.get("type") == "reject":
            raise SystemExit(
                f"coordinator rejected this worker: {header.get('reason')}"
            )
        if header.get("type") != "welcome":
            logger.info("unexpected handshake frame %r", header.get("type"))
            return False
        sock.settimeout(None)
        beats = _Heartbeat(
            sock, self.worker_id, header.get("heartbeat_interval", 1.0)
        )
        beats.start()
        logger.info(
            "connected to %s as %s", wire.format_address(self.address),
            self.worker_id,
        )
        progressed = False
        try:
            if self._undelivered is not None:
                # A result computed during a partition: deliver it now.
                # The coordinator drops it as stale if the lease moved on.
                header_out, blob_out = self._undelivered
                beats.send(header_out, blob_out)
                self._undelivered = None
                progressed = True
            while True:
                try:
                    frame, blob = wire.recv_frame(sock)
                except wire.WireError as error:
                    logger.info("connection lost: %s", error)
                    return progressed
                kind = frame.get("type")
                if kind == "shutdown":
                    logger.info(
                        "coordinator shutdown: %s", frame.get("reason")
                    )
                    self._shutdown = True
                    return progressed
                if kind != "lease":
                    continue
                if self._handle_lease(frame, blob, beats):
                    progressed = True
                else:
                    return progressed  # connection burned (fault/partition)
        finally:
            beats.stop()

    def _handle_lease(self, frame: dict, blob: bytes, beats) -> bool:
        """Run one lease; ``False`` if the connection was dropped."""
        lease_id = frame["lease_id"]
        index, attempt = frame["index"], frame["attempt"]
        try:
            payload_index, payload_attempt, function, task = (
                wire.load_payload(blob, frame.get("payload"))
            )
        except Exception as error:
            envelope = _failure_from_exception(index, attempt, error)
            try:
                beats.send(
                    wire.result_failure(
                        lease_id, index, attempt, envelope.to_json()
                    )
                )
            except wire.WireError:
                return False
            return True
        network = tuple(
            spec
            for spec in faults_module.network_faults(index, attempt)
            if (spec.kind, index, attempt) not in self._fired_network
        )
        for spec in network:
            self._fired_network.add((spec.kind, index, attempt))
        disconnected = False
        if _has_fault(network, "disconnect"):
            # Partition: drop the link first, compute anyway, deliver
            # after reconnecting.
            logger.info(
                "injected disconnect before task %d attempt %d",
                index, attempt,
            )
            disconnected = True
        hb_loss = _fault_seconds(network, "hb-loss")
        dark_since = None
        if hb_loss is not None:
            logger.info(
                "injected heartbeat loss (%.1fs) during task %d",
                hb_loss, index,
            )
            dark_since = time.monotonic()
            beats.suppress(hb_loss)
        status, value = _run_lease(
            payload_index, payload_attempt, function, task
        )
        self.leases_served += 1
        if status == "ok":
            blob_out, payload_meta = wire.dump_payload(value)
            header_out = wire.result_ok(
                lease_id, index, attempt, payload=payload_meta
            )
        else:
            header_out = wire.result_failure(
                lease_id, index, attempt, value.to_json()
            )
            blob_out = b""
        if disconnected:
            self._undelivered = (header_out, blob_out)
            return False
        delay = _fault_seconds(network, "delay")
        if delay is not None:
            logger.info(
                "injected %.1fs delivery delay for task %d", delay, index
            )
            time.sleep(delay)
        if dark_since is not None:
            # The point of hb-loss is an *expired* lease: hold delivery
            # until the suppression window has actually elapsed, so the
            # coordinator sees the deadline pass and reassigns first.
            time.sleep(max(hb_loss - (time.monotonic() - dark_since), 0.0))
        try:
            beats.send(header_out, blob_out)
            if _has_fault(network, "dup-result"):
                logger.info(
                    "injected duplicate result for task %d", index
                )
                beats.send(header_out, blob_out)
        except wire.WireError:
            self._undelivered = (header_out, blob_out)
            return False
        return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.worker",
        description=(
            "Worker daemon for the repro socket backend: connects to a "
            "coordinator, serves task leases, heartbeats, and reconnects "
            "with bounded backoff."
        ),
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (the sweep process's REPRO_SOCKET_BIND)",
    )
    parser.add_argument(
        "--worker-id", default=None,
        help="stable identity for reconnection (default: hostname-pid)",
    )
    parser.add_argument(
        "--max-idle", type=float, default=None, metavar="SECONDS",
        help="exit non-zero after this long without a reachable coordinator "
             "(default: retry forever)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log at DEBUG level"
    )
    arguments = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if arguments.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    try:
        address = wire.parse_address(arguments.connect)
    except ValueError as error:
        parser.error(str(error))
    try:
        faults_module.validate_active_faults()
    except faults_module.FaultSpecError as error:
        parser.error(f"invalid {faults_module.ENV_VAR}: {error}")
    worker = Worker(
        address, worker_id=arguments.worker_id, max_idle=arguments.max_idle
    )
    try:
        return worker.run()
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
