"""``python -m repro.worker`` — the socket-backend worker daemon.

Thin entry-point shim; the implementation lives in
:mod:`repro.runtime.worker` next to the rest of the runtime.
"""

from repro.runtime.worker import Worker, main

__all__ = ["Worker", "main"]

if __name__ == "__main__":
    raise SystemExit(main())
