"""Keep pytest out of the lint-rule fixtures.

Files under ``fixtures/`` are deliberately-wrong code (including a fake
``tests/test_parity.py`` inside the R1 project tree); they are linted by
the tests here, never collected as tests themselves.
"""

collect_ignore = ["fixtures"]
