"""Codec with fast and scalar paths (fixture)."""


class _ChannelCoder:
    def entropy_code(self, blocks):
        return b""

    def decode_to_zigzag_walk(self, data, count):
        return []

    def encode_scalar(self, channel):
        return b""

    def decode_scalar(self, encoded):
        return []
