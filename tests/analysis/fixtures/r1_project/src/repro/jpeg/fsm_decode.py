"""Vectorized FSM decoder (fixture)."""


def decode_streams(datas, counts):
    return [b"" for _ in datas], []
