"""Model base (fixture)."""


class Sequential:
    def predict_proba_dynamic(self, inputs):
        return inputs
