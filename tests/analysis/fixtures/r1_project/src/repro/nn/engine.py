"""Inference plans (fixture)."""


class PlanBuilder:
    pass


class InferencePlan:
    pass
