"""Patch gathers (fixture)."""


def im2col(images):
    return images


def col2im(rows):
    return rows


def im2col_scalar(images):
    return images


def col2im_scalar(rows):
    return rows
