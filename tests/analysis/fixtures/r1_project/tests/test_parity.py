"""Parity pins for every fast path (fixture)."""


def test_fsm_matches_walk(coder):
    from repro.jpeg.fsm_decode import decode_streams

    assert decode_streams([], []) is not None
    assert coder.decode_to_zigzag_walk(b"", 0) == []


def test_entropy_matches_scalar():
    from repro.jpeg.codec import _ChannelCoder

    coder = _ChannelCoder()
    assert coder.entropy_code([]) == coder.encode_scalar(None)
    assert coder.decode_scalar(b"") == []


def test_plan_matches_dynamic(model, InferencePlan):
    assert model.predict_proba_dynamic([1]) == [1]


def test_im2col_matches_scalar():
    from repro.nn.im2col import im2col, im2col_scalar, col2im_scalar

    assert im2col([1]) == im2col_scalar([1])
    assert col2im_scalar([1]) == [1]
