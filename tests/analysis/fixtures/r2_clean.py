"""R2 clean: every field classified."""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ExperimentConfig:

    images_per_class: int = 30
    image_size: int = 32
    noise_std: float = 1.5
    test_fraction: float = 0.25
    epochs: int = 20
    batch_size: int = 32
    learning_rate: float = 0.002
    model_name: str = "AlexNet"
    compute_dtype: str = "float32"
    dataset_seed: int = 7
    split_seed: int = 0
    model_seed: int = 0
    sampling_interval: int = 2
    workers: int = 1
    on_error: str = "fail-fast"
    retries: int = 2
    task_timeout: float = None
    backend: str = None
    inference_engine: str = "plan"
    storage_dtype: str = None
    blas_threads: int = None


    def task_key(self):
        return replace(
            self,
            workers=1,
            on_error="fail-fast",
            retries=2,
            task_timeout=None,
            backend=None,
            inference_engine="plan",
            blas_threads=None,
        )

