"""R3 bad: legacy globals and unseeded generators."""

import numpy as np
from numpy.random import default_rng


def unseeded():
    return np.random.default_rng()


def unseeded_direct():
    return default_rng()


def legacy_global(n):
    np.random.seed(0)
    return np.random.rand(n)


def legacy_shuffle(values):
    np.random.shuffle(values)
