"""R3 clean: seeded generators and SeedSequence flows only."""

import numpy as np


def spawn(seed, count):
    return np.random.SeedSequence(seed).spawn(count)


def make_rng(seed):
    return np.random.default_rng(seed)


def seeded_child(seed_sequence):
    return np.random.default_rng(seed_sequence.spawn(1)[0])
