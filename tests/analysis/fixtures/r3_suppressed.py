"""R3 suppressed: each violation carries a reasoned lint-ignore."""

import numpy as np


def unseeded():
    return np.random.default_rng()  # repro: lint-ignore[R3] interactive helper, never imported by workers


def legacy(n):
    return np.random.rand(n)  # repro: lint-ignore[R3] interactive helper, never imported by workers
