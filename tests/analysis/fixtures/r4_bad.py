"""R4 bad: the kernel allocates on every run."""

import numpy as np


class Layer:
    def plan_inference(self, builder, source):
        out = builder.activation(source.shape)

        def build(bind):
            x = bind(source)
            y = bind(out)

            def step():
                buffer = np.zeros(x.shape)
                half = x.astype(np.float16)
                np.add(half, buffer, out=y)
                np.copyto(y, np.maximum(y, 0.0))

            return step

        builder.emit(build, reads=(source,), writes=(out,))
        return out

    def plan_fused_relu(self, builder, source):
        out = builder.activation(source.shape)

        def build(bind):
            x = bind(source)
            y = bind(out)

            def step():
                result = np.matmul(x, x)
                np.copyto(y, result)

            return step

        builder.emit(build, reads=(source,), writes=(out,))
        return out
