"""R4 clean: the kernel writes through out= and views only."""

import numpy as np


class Layer:
    def plan_inference(self, builder, source):
        out = builder.activation(source.shape)
        scratch = builder.scratch(source.shape)

        def build(bind):
            x = bind(source)
            y = bind(out)
            buffer = bind(scratch)

            def step():
                np.multiply(x, 2.0, out=buffer)
                np.add(buffer, 1.0, out=y)
                np.maximum(y, 0.0, out=y)

            return step

        builder.emit(build, reads=(source,), writes=(out,))
        return out
