"""R4 suppressed: a sanctioned one-off allocation with a reason."""

import numpy as np


class Layer:
    def plan_inference(self, builder, source):
        out = builder.activation(source.shape)

        def build(bind):
            x = bind(source)
            y = bind(out)

            def step():
                buffer = np.zeros(x.shape)  # repro: lint-ignore[R4] measured: tiny header buffer, not on the hot path
                np.add(x, buffer, out=y)

            return step

        builder.emit(build, reads=(source,), writes=(out,))
        return out
