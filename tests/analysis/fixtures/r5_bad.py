"""R5 bad: the module creates segments but never unlinks."""

from multiprocessing import shared_memory


def create_segment(nbytes):
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    return segment


def ship(images, create_stack):
    stack = create_stack(images)
    return stack.handle
