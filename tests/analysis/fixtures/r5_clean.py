"""R5 clean: creation paired with a finally-guarded close and unlink."""

from multiprocessing import shared_memory


def create_segment(nbytes):
    return shared_memory.SharedMemory(create=True, size=nbytes)


def with_segment(nbytes):
    segment = create_segment(nbytes)
    try:
        return bytes(segment.buf)
    finally:
        segment.close()
        segment.unlink()
