"""R5 suppressed: creation site annotated with the owning sweeper."""

from multiprocessing import shared_memory


def create_segment(nbytes):
    return shared_memory.SharedMemory(create=True, size=nbytes)  # repro: lint-ignore[R5] unlinked by the consumer via shm.load()
