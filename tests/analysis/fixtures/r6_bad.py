"""R6 bad: bare exception in the envelope, computed header keys."""


def fail(index, attempt, TaskFailure):
    try:
        raise ValueError("boom")
    except ValueError as error:
        return TaskFailure(
            index=index,
            kind="exception",
            error_type=type(error).__name__,
            message=error,
            attempts=attempt,
        )


def positional(TaskFailure, index):
    return TaskFailure(index, "exception", "ValueError", "boom", 1)


def hello(sock, send_frame, worker_id, key):
    header = {"type": "hello", key: worker_id}
    send_frame(sock, header)


def stamp(sock, send_frame, field, value):
    header = {"type": "result"}
    header[field] = value
    send_frame(sock, header)
