"""R6 clean: stringified envelope fields, literal header keys."""


def fail(index, attempt, TaskFailure):
    try:
        raise ValueError("boom")
    except ValueError as error:
        return TaskFailure(
            index=index,
            kind="exception",
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempt,
            error=error,
        )


def hello(sock, send_frame, worker_id):
    header = {"type": "hello", "worker": worker_id}
    header["payload"] = {"version": 2}
    send_frame(sock, header)
