"""R6 suppressed: the bare exception field carries a reason."""


def fail(index, attempt, TaskFailure):
    try:
        raise ValueError("boom")
    except ValueError as error:
        return TaskFailure(
            index=index,
            kind="exception",
            message=error,  # repro: lint-ignore[R6] local-only envelope, never crosses a process boundary
            error_type="ValueError",
            attempts=attempt,
        )
