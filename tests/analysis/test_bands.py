"""Tests for LF/MF/HF band segmentation."""

import numpy as np
import pytest

from repro.analysis.bands import (
    BandSegmentation,
    LF_BAND_COUNT,
    MF_BAND_COUNT,
    magnitude_based_segmentation,
    position_based_segmentation,
    segmentation_agreement,
)
from repro.analysis.frequency import FrequencyStatistics, analyze_images
from repro.jpeg.zigzag import ZIGZAG_ORDER


def _statistics_from_std(std):
    return FrequencyStatistics(std, np.zeros((8, 8)), 1, 1)


class TestPositionBased:
    def test_group_sizes(self):
        segmentation = position_based_segmentation()
        counts = segmentation.counts()
        assert counts == {"LF": LF_BAND_COUNT, "MF": MF_BAND_COUNT,
                          "HF": 64 - LF_BAND_COUNT - MF_BAND_COUNT}

    def test_dc_is_lf_and_corner_is_hf(self):
        segmentation = position_based_segmentation()
        assert segmentation.group_of(0, 0) == "LF"
        assert segmentation.group_of(7, 7) == "HF"

    def test_groups_follow_zigzag(self):
        segmentation = position_based_segmentation()
        for rank, flat_index in enumerate(ZIGZAG_ORDER[:LF_BAND_COUNT]):
            row, col = divmod(int(flat_index), 8)
            assert segmentation.group_of(row, col) == "LF"

    def test_custom_group_sizes(self):
        segmentation = position_based_segmentation(lf_count=4, mf_count=10)
        assert segmentation.counts() == {"LF": 4, "MF": 10, "HF": 50}

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            position_based_segmentation(lf_count=0)
        with pytest.raises(ValueError):
            position_based_segmentation(lf_count=40, mf_count=30)


class TestMagnitudeBased:
    def test_follows_std_ranking_not_position(self):
        std = np.ones((8, 8))
        std[7, 7] = 1000.0  # a hugely energetic "high position" band
        std[0, 0] = 2000.0
        segmentation = magnitude_based_segmentation(_statistics_from_std(std))
        assert segmentation.group_of(7, 7) == "LF"
        assert segmentation.group_of(0, 0) == "LF"

    def test_group_sizes(self, small_freqnet):
        statistics = analyze_images(small_freqnet.images)
        segmentation = magnitude_based_segmentation(statistics)
        counts = segmentation.counts()
        assert counts["LF"] == LF_BAND_COUNT
        assert counts["MF"] == MF_BAND_COUNT

    def test_texture_band_promoted_on_freqnet(self, small_freqnet):
        """The (7, 7) band carries class-discriminative energy in FreqNet, so
        the magnitude-based grouping must rank it above the HF group while
        the position-based grouping keeps it in HF — the disagreement the
        paper's Fig. 5 exploits."""
        statistics = analyze_images(small_freqnet.images)
        magnitude = magnitude_based_segmentation(statistics)
        position = position_based_segmentation()
        assert position.group_of(7, 7) == "HF"
        assert magnitude.group_of(7, 7) in ("LF", "MF")

    def test_agreement_metric(self, small_freqnet):
        statistics = analyze_images(small_freqnet.images)
        magnitude = magnitude_based_segmentation(statistics)
        position = position_based_segmentation()
        agreement = segmentation_agreement(magnitude, position)
        assert 0.0 < agreement < 1.0
        assert segmentation_agreement(position, position) == 1.0


class TestBandSegmentation:
    def test_validation(self):
        with pytest.raises(ValueError):
            BandSegmentation(np.full((4, 4), "LF", dtype=object), "x")
        bad = np.full((8, 8), "LF", dtype=object)
        bad[0, 0] = "XX"
        with pytest.raises(ValueError):
            BandSegmentation(bad, "x")

    def test_mask_and_bands_in_group_consistent(self):
        segmentation = position_based_segmentation()
        for group in ("LF", "MF", "HF"):
            mask = segmentation.mask(group)
            bands = segmentation.bands_in_group(group)
            assert mask.sum() == len(bands)
            for row, col in bands:
                assert mask[row, col]

    def test_unknown_group_raises(self):
        segmentation = position_based_segmentation()
        with pytest.raises(ValueError):
            segmentation.mask("XX")
        with pytest.raises(ValueError):
            segmentation.bands_in_group("XX")
