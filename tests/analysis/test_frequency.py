"""Tests for the Algorithm-1 frequency component analysis."""

import numpy as np
import pytest

from repro.analysis.frequency import (
    FrequencyStatistics,
    analyze_dataset,
    analyze_images,
    coefficients_by_band,
)
from repro.data import Dataset


class TestCoefficientsByBand:
    def test_shape(self, rng):
        images = rng.uniform(0, 255, (3, 16, 24))
        coefficients = coefficients_by_band(images)
        assert coefficients.shape == (3 * 2 * 3, 8, 8)

    def test_rejects_color_stack(self, rng):
        with pytest.raises(ValueError):
            coefficients_by_band(rng.uniform(0, 255, (2, 16, 16, 3)))


class TestAnalyzeImages:
    def test_constant_images_have_zero_ac_std(self):
        images = np.full((4, 16, 16), 99.0)
        statistics = analyze_images(images)
        ac_std = statistics.std.copy()
        ac_std[0, 0] = 0.0
        np.testing.assert_allclose(ac_std, 0.0, atol=1e-9)

    def test_counts(self, rng):
        images = rng.uniform(0, 255, (5, 32, 32))
        statistics = analyze_images(images)
        assert statistics.image_count == 5
        assert statistics.block_count == 5 * 16

    def test_dc_band_has_largest_std_on_natural_like_images(self, small_freqnet):
        statistics = analyze_images(small_freqnet.images)
        assert statistics.ranked_bands()[0] == (0, 0)

    def test_high_frequency_noise_raises_high_band_std(self, rng):
        smooth = np.tile(np.linspace(0, 255, 32), (32, 1))
        noisy = smooth + rng.normal(0, 20, (32, 32))
        smooth_stats = analyze_images(smooth[None])
        noisy_stats = analyze_images(noisy[None])
        assert noisy_stats.std[7, 7] > smooth_stats.std[7, 7] + 5


class TestFrequencyStatistics:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyStatistics(np.zeros((4, 4)), np.zeros((8, 8)), 1, 1)
        with pytest.raises(ValueError):
            FrequencyStatistics(np.zeros((8, 8)), np.zeros((8, 8)), 0, 1)

    def test_std_zigzag_order(self):
        std = np.zeros((8, 8))
        std[0, 0] = 10.0
        std[0, 1] = 5.0
        std[7, 7] = 1.0
        statistics = FrequencyStatistics(std, np.zeros((8, 8)), 1, 1)
        zz = statistics.std_zigzag()
        assert zz[0] == 10.0
        assert zz[1] == 5.0
        assert zz[63] == 1.0

    def test_ranked_bands_descending(self, small_freqnet):
        statistics = analyze_images(small_freqnet.images)
        ranked = statistics.ranked_bands()
        values = [statistics.std[band] for band in ranked]
        assert values == sorted(values, reverse=True)
        assert len(set(ranked)) == 64

    def test_rank_of_band_consistent(self, small_freqnet):
        statistics = analyze_images(small_freqnet.images)
        for band in [(0, 0), (7, 7), (3, 4)]:
            rank = statistics.rank_of_band(*band)
            assert statistics.ranked_bands()[rank] == band

    def test_ac_energy_fraction_monotone(self, small_freqnet):
        statistics = analyze_images(small_freqnet.images)
        fractions = [
            statistics.ac_energy_fraction_above(position)
            for position in (1, 16, 32, 56)
        ]
        assert fractions[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))
        with pytest.raises(ValueError):
            statistics.ac_energy_fraction_above(0)


class TestAnalyzeDataset:
    def test_sampling_interval_reduces_blocks(self, small_freqnet):
        full = analyze_dataset(small_freqnet, interval=1)
        sampled = analyze_dataset(small_freqnet, interval=3)
        assert sampled.block_count < full.block_count

    def test_statistics_stable_under_sampling(self, small_freqnet):
        """Algorithm 1's premise: interval sampling preserves the statistics."""
        full = analyze_dataset(small_freqnet, interval=1)
        sampled = analyze_dataset(small_freqnet, interval=2)
        # Band ranking of the strongest bands is preserved.
        assert full.ranked_bands()[:4] == sampled.ranked_bands()[:4]
        correlation = np.corrcoef(
            full.std.reshape(-1), sampled.std.reshape(-1)
        )[0, 1]
        assert correlation > 0.98

    def test_color_dataset_uses_luma(self, rng):
        images = rng.uniform(0, 255, (6, 16, 16, 3))
        dataset = Dataset(images, np.zeros(6, dtype=int), ["only"])
        statistics = analyze_dataset(dataset)
        assert statistics.std.shape == (8, 8)
