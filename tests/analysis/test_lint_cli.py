"""The ``repro lint`` CLI surface: dispatch, exit codes, JSON output."""

from __future__ import annotations

import json
import os
import shutil

import pytest

import repro.cli
from repro.analysis.lint import EXIT_FINDINGS, Finding
from repro.analysis.lint import main as lint_main

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
R2_BAD = os.path.join(REPO_ROOT, "tests/analysis/fixtures/r2_bad.py")


@pytest.fixture()
def in_repo(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


class TestDispatch:
    def test_repro_cli_routes_lint_subcommand(self, in_repo, capsys):
        status = repro.cli.main(["lint", "--list-rules"])
        assert status == 0
        out = capsys.readouterr().out
        for rule_id in ["R1", "R2", "R3", "R4", "R5", "R6"]:
            assert rule_id in out

    def test_lint_listed_in_cli_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro.cli.main(["--help"])
        assert excinfo.value.code == 0
        assert "lint" in capsys.readouterr().out


class TestExitCodes:
    def test_repo_self_lint_is_clean_and_strict(self, in_repo, capsys):
        status = repro.cli.main(["lint", "--strict"])
        err = capsys.readouterr().err
        assert status == 0
        assert "0 finding(s)" in err
        assert "6 rule(s) active" in err

    def test_findings_exit_five(self, in_repo, capsys):
        status = repro.cli.main(["lint", "--select", "R2", R2_BAD])
        out = capsys.readouterr().out
        assert status == EXIT_FINDINGS
        assert "R2" in out
        assert "tests/analysis/fixtures/r2_bad.py:32" in out

    def test_unknown_rule_is_usage_error(self, in_repo, capsys):
        status = lint_main(["--select", "R99"])
        assert status == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, in_repo, capsys):
        status = lint_main(["src/does_not_exist.py"])
        assert status == 2
        assert "no such file" in capsys.readouterr().err

    def test_changed_conflicts_with_paths(self, in_repo, capsys):
        status = lint_main(["--changed", R2_BAD])
        assert status == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestJsonOutput:
    def test_schema_and_round_trip(self, in_repo, capsys):
        status = lint_main(["--json", "--select", "R2", R2_BAD])
        assert status == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"count", "findings", "rules"}
        assert payload["count"] == len(payload["findings"]) == 3
        findings = [Finding.from_json(item) for item in payload["findings"]]
        assert {item.rule for item in findings} == {"R2"}
        assert payload["rules"]["R2"]["name"]
        assert payload["rules"]["R2"]["description"]

    def test_clean_run_emits_empty_report(self, in_repo, capsys):
        status = lint_main(["--json", "--select", "R5"])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["findings"] == []
        assert list(payload["rules"]) == ["R5"]


class TestR2Acceptance:
    """Adding an unclassified ExperimentConfig field must fail the lint."""

    def test_new_field_trips_r2(self, tmp_path, capsys):
        source = os.path.join(REPO_ROOT, "src/repro/experiments/common.py")
        target = tmp_path / "src" / "repro" / "experiments" / "common.py"
        target.parent.mkdir(parents=True)
        shutil.copy(source, target)
        with open(target, "r", encoding="utf-8") as handle:
            text = handle.read()
        marker = "    images_per_class: int = 30"
        assert marker in text
        text = text.replace(
            marker, "    mystery_knob: float = 0.5\n" + marker, 1
        )
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)

        status = lint_main([
            "--root", str(tmp_path), "--select", "R2", "--json",
            str(target),
        ])
        payload = json.loads(capsys.readouterr().out)
        assert status == EXIT_FINDINGS
        assert payload["count"] == 1
        finding = payload["findings"][0]
        assert finding["rule"] == "R2"
        assert "mystery_knob" in finding["message"]

    def test_pristine_config_passes_r2(self, capsys):
        source = os.path.join(REPO_ROOT, "src/repro/experiments/common.py")
        status = lint_main(
            ["--root", REPO_ROOT, "--select", "R2", source]
        )
        capsys.readouterr()
        assert status == 0
