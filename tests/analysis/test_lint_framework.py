"""The lint framework: findings, suppression, discovery, git scoping."""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import textwrap

import pytest

from repro.analysis.lint import (
    EXIT_FINDINGS,
    IGNORE_RULE,
    SYNTAX_RULE,
    Checker,
    Finding,
    Project,
    SourceFile,
    changed_files,
    discover_files,
    find_root,
    json_payload,
    main,
    parse_suppressions,
    run_lint,
)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


class AlwaysFlag(Checker):
    """Test rule: flags every function definition."""

    rule_id = "T1"
    name = "always-flag"
    description = "flags every def"
    paths = ("src/",)

    def check(self, module):
        import ast

        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef):
                yield self.finding(module, node, f"def {node.name}")


def write(root, relpath, body):
    path = os.path.join(root, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(textwrap.dedent(body).lstrip("\n"))
    return relpath


class TestFinding:
    def test_format_is_clickable(self):
        item = Finding("R3", "src/a.py", 10, 4, "nope")
        assert item.format() == "src/a.py:10:4: R3 nope"

    def test_json_round_trip(self):
        item = Finding("R2", "src/b.py", 3, 0, "unclassified")
        assert Finding.from_json(item.to_json()) == item

    def test_payload_schema_round_trips(self):
        findings = [
            Finding("R2", "src/b.py", 3, 0, "one"),
            Finding("R3", "src/c.py", 9, 2, "two"),
        ]
        payload = json.loads(json.dumps(json_payload(findings, [AlwaysFlag()])))
        assert payload["count"] == 2
        assert [
            Finding.from_json(entry) for entry in payload["findings"]
        ] == findings
        assert payload["rules"]["T1"]["name"] == "always-flag"


class TestSuppressions:
    def test_parses_rule_ids_and_reason(self):
        table = parse_suppressions(
            "x = 1  # repro: lint-ignore[R3] worker-local helper\n"
        )
        assert table[1].rules == ("R3",)
        assert table[1].reason == "worker-local helper"

    def test_parses_multiple_rule_ids(self):
        table = parse_suppressions(
            "x = 1  # repro: lint-ignore[R3, R4] shared reason\n"
        )
        assert table[1].rules == ("R3", "R4")

    def test_missing_reason_is_empty(self):
        table = parse_suppressions("x = 1  # repro: lint-ignore[R3]\n")
        assert table[1].reason == ""

    def test_docstrings_do_not_register(self):
        source = '"""docs show # repro: lint-ignore[R3] syntax"""\nx = 1\n'
        assert parse_suppressions(source) == {}

    def test_unparsable_source_yields_empty_table(self):
        assert parse_suppressions("def broken(:\n") == {}


class TestDiscovery:
    def test_repo_discovery_excludes_fixtures(self):
        files = discover_files(REPO_ROOT)
        assert "src/repro/analysis/lint.py" in files
        assert all("tests/analysis/fixtures" not in name for name in files)
        assert files == sorted(files)

    def test_only_python_files(self, tmp_path):
        write(tmp_path, "src/a.py", "x = 1")
        write(tmp_path, "src/notes.txt", "hi")
        write(tmp_path, "tests/test_a.py", "y = 2")
        assert discover_files(str(tmp_path)) == [
            "src/a.py", "tests/test_a.py",
        ]

    def test_find_root_walks_up(self):
        nested = os.path.join(REPO_ROOT, "src", "repro", "nn")
        assert find_root(nested) == REPO_ROOT


class TestRunLint:
    def test_syntax_error_is_reported(self, tmp_path):
        rel = write(tmp_path, "src/broken.py", "def broken(:\n")
        findings = run_lint(str(tmp_path), files=[rel], rules=[AlwaysFlag()])
        assert [item.rule for item in findings] == [SYNTAX_RULE]

    def test_suppression_silences_matching_rule_only(self, tmp_path):
        rel = write(
            tmp_path, "src/a.py",
            """
            def first():  # repro: lint-ignore[T1] intended
                pass


            def second():
                pass
            """,
        )
        findings = run_lint(str(tmp_path), files=[rel], rules=[AlwaysFlag()])
        assert [item.line for item in findings] == [5]

    def test_suppression_for_other_rule_does_not_silence(self, tmp_path):
        rel = write(
            tmp_path, "src/a.py",
            "def first():  # repro: lint-ignore[R9] wrong rule\n    pass\n",
        )
        findings = run_lint(str(tmp_path), files=[rel], rules=[AlwaysFlag()])
        assert [item.rule for item in findings] == ["T1"]

    def test_paths_scoping_applies_to_discovery_only(self, tmp_path):
        write(tmp_path, "src/a.py", "def a():\n    pass\n")
        write(tmp_path, "tests/test_a.py", "def b():\n    pass\n")
        discovered = run_lint(str(tmp_path), rules=[AlwaysFlag()])
        assert [item.path for item in discovered] == ["src/a.py"]
        explicit = run_lint(
            str(tmp_path), files=["tests/test_a.py"], rules=[AlwaysFlag()]
        )
        assert [item.path for item in explicit] == ["tests/test_a.py"]

    def test_findings_sorted_deterministically(self, tmp_path):
        write(tmp_path, "src/b.py", "def z():\n    pass\n")
        write(tmp_path, "src/a.py", "def z():\n    pass\ndef y():\n    pass\n")
        findings = run_lint(str(tmp_path), rules=[AlwaysFlag()])
        assert [(item.path, item.line) for item in findings] == [
            ("src/a.py", 1), ("src/a.py", 3), ("src/b.py", 1),
        ]


class TestStrictHygiene:
    def test_unused_ignore_reported(self, tmp_path):
        rel = write(
            tmp_path, "src/a.py",
            "x = 1  # repro: lint-ignore[T1] nothing here to suppress\n",
        )
        findings = run_lint(
            str(tmp_path), files=[rel], rules=[AlwaysFlag()], strict=True
        )
        assert [item.rule for item in findings] == [IGNORE_RULE]
        assert "suppresses nothing" in findings[0].message

    def test_unknown_rule_id_reported(self, tmp_path):
        rel = write(
            tmp_path, "src/a.py",
            "x = 1  # repro: lint-ignore[R99] typo'd id\n",
        )
        findings = run_lint(
            str(tmp_path), files=[rel], rules=[AlwaysFlag()], strict=True
        )
        assert [item.rule for item in findings] == [IGNORE_RULE]
        assert "unknown rule" in findings[0].message

    def test_missing_reason_reported(self, tmp_path):
        rel = write(
            tmp_path, "src/a.py",
            "def a():  # repro: lint-ignore[T1]\n    pass\n",
        )
        findings = run_lint(
            str(tmp_path), files=[rel], rules=[AlwaysFlag()], strict=True
        )
        assert [item.rule for item in findings] == [IGNORE_RULE]
        assert "requires a reason" in findings[0].message

    def test_used_reasoned_ignore_is_clean(self, tmp_path):
        rel = write(
            tmp_path, "src/a.py",
            "def a():  # repro: lint-ignore[T1] deliberate\n    pass\n",
        )
        findings = run_lint(
            str(tmp_path), files=[rel], rules=[AlwaysFlag()], strict=True
        )
        assert findings == []


@pytest.mark.skipif(shutil.which("git") is None, reason="git unavailable")
class TestChangedFiles:
    @staticmethod
    def _git(root, *args):
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
            cwd=root, check=True, capture_output=True,
        )

    def _repo(self, tmp_path):
        root = str(tmp_path)
        self._git(root, "init", "-q", "-b", "main")
        write(tmp_path, "src/stable.py", "x = 1")
        write(tmp_path, "src/touched.py", "y = 1")
        write(tmp_path, "tests/test_stable.py", "z = 1")
        self._git(root, "add", ".")
        self._git(root, "commit", "-qm", "seed")
        return root

    def test_uncommitted_and_untracked_are_scoped(self, tmp_path):
        root = self._repo(tmp_path)
        write(tmp_path, "src/touched.py", "y = 2")          # modified
        write(tmp_path, "src/fresh.py", "n = 1")            # untracked
        write(tmp_path, "notes.md", "outside roots")        # not under roots
        write(tmp_path, "src/data.json", "{}")              # not .py
        assert changed_files(root) == ["src/fresh.py", "src/touched.py"]

    def test_committed_changes_since_base(self, tmp_path):
        root = self._repo(tmp_path)
        self._git(root, "checkout", "-qb", "feature")
        write(tmp_path, "tests/test_new.py", "a = 1")
        self._git(root, "add", ".")
        self._git(root, "commit", "-qm", "feature work")
        assert changed_files(root, base="main") == ["tests/test_new.py"]
        assert changed_files(root) == []  # clean worktree, no base

    def test_deleted_files_are_skipped(self, tmp_path):
        root = self._repo(tmp_path)
        os.remove(os.path.join(root, "src", "touched.py"))
        assert changed_files(root) == []

    def test_cli_changed_mode(self, tmp_path, capsys, monkeypatch):
        root = self._repo(tmp_path)
        write(tmp_path, "src/fresh.py", "import numpy as np\n\n\ndef bad():\n    return np.random.default_rng()\n")
        monkeypatch.chdir(root)
        status = main(["--changed", "--root", root, "--select", "R3"])
        output = capsys.readouterr()
        assert status == EXIT_FINDINGS
        assert "src/fresh.py:5" in output.out
        assert "R3" in output.out


class TestProjectCache:
    def test_source_files_cached_per_path(self, tmp_path):
        write(tmp_path, "src/a.py", "x = 1")
        project = Project(str(tmp_path))
        assert project.file("src/a.py") is project.file("src/a.py")

    def test_missing_module_is_none(self, tmp_path):
        assert Project(str(tmp_path)).module("src/nope.py") is None

    def test_sourcefile_normalises_separators(self, tmp_path):
        write(tmp_path, "src/a.py", "x = 1")
        module = SourceFile(str(tmp_path), os.path.join("src", "a.py"))
        assert module.relpath == "src/a.py"
        assert module.source == "x = 1"
